"""Ablation C — LAV vs GAV maintenance under K successive schema changes.

The paper's core argument quantified: a source ships K successive
breaking releases.  Under MDM (LAV), each release costs one wrapper
registration plus an auto-derived mapping (attribute reuse), and every
previously defined query keeps answering.  Under GAV, each release
requires hand-migrating every definition referencing the source, and
until that happens the query crashes.

Printed series: per K, (LAV queries surviving, LAV steward actions,
GAV crashes suffered, GAV definitions hand-migrated).
"""

import pytest

from benchmarks.conftest import emit
from repro.core.errors import GavUnfoldingError
from repro.scenarios.football import FootballScenario
from repro.sources.evolution import RenameField, release_version
from repro.sources.wrappers import RestWrapper


def run_release_series(k_releases: int):
    """Ship K successive renames of the players API; return the tallies."""
    scenario = FootballScenario.build(anchors_only=True)
    walk = scenario.walk_player_team_names()
    gav = scenario.build_gav()
    baseline_rows = set(scenario.mdm.execute(walk).relation.rows)
    assert len(gav.execute(walk)) == 6

    lav_surviving = 0
    lav_actions = 0
    gav_crashes = 0
    gav_migrations = 0
    version = scenario.players_v1
    name_field = "name"
    current_gav_wrapper = "w1"
    for k in range(1, k_releases + 1):
        new_field = f"name_v{k + 1}"
        version = version.successor([RenameField(name_field, new_field)])
        name_field = new_field
        release_version(scenario.server, version, retire_previous=True)
        # --- LAV side: register new wrapper, apply suggestion. ---
        wrapper_name = f"w1_v{k + 1}"
        wrapper = RestWrapper(
            wrapper_name,
            ["id", "pName", "height", "weight", "score", "foot", "teamId"],
            scenario.server,
            f"/v{version.version}/players",
            attribute_map={
                "pName": name_field,
                "score": "rating",
                "foot": "preferred_foot",
                "teamId": "team_id",
            },
        )
        scenario.mdm.register_wrapper("players", wrapper)
        suggestion = scenario.mdm.suggest_mapping(wrapper_name)
        scenario.mdm.apply_suggestion(suggestion)
        lav_actions += 1  # one registration per release; mapping was free
        outcome = scenario.mdm.execute(walk, on_wrapper_error="skip")
        if set(outcome.relation.rows) == baseline_rows:
            lav_surviving += 1
        # --- GAV side: crash, then manual migration. ---
        try:
            gav.execute(walk)
        except GavUnfoldingError:
            gav_crashes += 1
        translation = {
            a: a
            for a in ("id", "pName", "height", "weight", "score", "foot", "teamId")
        }
        gav_migrations += gav.migrate_wrapper(
            current_gav_wrapper, wrapper, translation
        )
        current_gav_wrapper = wrapper_name
        assert len(gav.execute(walk)) == 6  # repaired until the next release
    return lav_surviving, lav_actions, gav_crashes, gav_migrations


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_lav_vs_gav_maintenance_series(benchmark, k):
    lav_surviving, lav_actions, gav_crashes, gav_migrations = benchmark(
        run_release_series, k
    )
    emit(
        f"Ablation C — K={k} successive breaking releases",
        f"LAV: queries surviving every release: {lav_surviving}/{k}; "
        f"steward registrations: {lav_actions}\n"
        f"GAV: crashes suffered: {gav_crashes}/{k}; "
        f"definitions hand-migrated: {gav_migrations}",
    )
    # The paper's claim, quantified: LAV never loses the query; GAV
    # crashes on every release and pays 7 definition rewrites each time.
    assert lav_surviving == k
    assert gav_crashes == k
    assert gav_migrations == 7 * k
