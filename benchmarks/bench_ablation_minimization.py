"""Ablation H — the effect of CQ-containment minimization.

DESIGN.md decision 5 prunes UCQ branches that are contained in another
branch (classic conjunctive-query containment over per-concept covers).
This ablation rewrites the same walks with minimization on and off and
compares UCQ size, rewrite latency, and — crucially — that the *answers*
are identical (the pruning is semantics-preserving).
"""

import pytest

from benchmarks.conftest import emit
from repro.core.rewriting import Rewriter
from repro.scenarios.football import FootballScenario


def rewriters(scenario):
    on = Rewriter(scenario.mdm.global_graph, scenario.mdm.mappings, minimize=True)
    off = Rewriter(scenario.mdm.global_graph, scenario.mdm.mappings, minimize=False)
    return on, off


def execute_with(scenario, rewriter, walk):
    from repro.relational.executor import Executor

    result = rewriter.rewrite(walk)
    executor = Executor()
    for name in {n for q in result.queries for n in q.wrapper_names}:
        executor.register(
            name, scenario.mdm.wrappers[name].fetch_relation()
        )
    return result, executor.execute(result.plan)


def test_minimization_shrinks_ucq_preserving_answers(benchmark):
    scenario = FootballScenario.build(anchors_only=True)
    scenario.release_players_v2()
    walk = scenario.walk_league_nationality()
    on, off = rewriters(scenario)

    result_on = benchmark(lambda: on.rewrite(walk))
    result_off = off.rewrite(walk)

    _, relation_on = execute_with(scenario, on, walk)
    _, relation_off = execute_with(scenario, off, walk)
    emit(
        "Ablation H — CQ-containment minimization",
        f"UCQ with minimization:    {result_on.ucq_size} CQs\n"
        f"UCQ without minimization: {result_off.ucq_size} CQs\n"
        f"identical answers: {set(relation_on.rows) == set(relation_off.rows)}",
    )
    assert result_on.ucq_size <= result_off.ucq_size
    assert set(relation_on.rows) == set(relation_off.rows)


def test_minimization_cost_on_simple_walk(benchmark):
    scenario = FootballScenario.build(anchors_only=True)
    walk = scenario.walk_player_team_names()
    on, off = rewriters(scenario)
    result_off = off.rewrite(walk)

    result_on = benchmark(lambda: on.rewrite(walk))

    # On the Figure 8 walk the containment pruning is what collapses the
    # redundant {w1, w2}-style covers down to the paper's single CQ.
    assert result_on.ucq_size == 1
    assert result_off.ucq_size >= result_on.ucq_size


@pytest.mark.parametrize("minimize", [True, False])
def test_rewrite_latency_both_modes(benchmark, minimize):
    scenario = FootballScenario.build(anchors_only=True)
    rewriter = Rewriter(
        scenario.mdm.global_graph, scenario.mdm.mappings, minimize=minimize
    )
    walk = scenario.walk_league_nationality()

    result = benchmark(lambda: rewriter.rewrite(walk))
    assert result.ucq_size >= 1
