"""Concurrent-service benchmark: throughput scaling and admission control.

The concurrency work (socket server, readers-writer metadata lock,
bounded admission) only earns its keep if N clients actually go faster
than one: wrapper fetches are latency-bound, so concurrent queries must
overlap their waits instead of serialising on the metadata lock.  This
benchmark drives the real socket server with the reusable load
generator (``tests/stress/loadgen.py``) through three phases:

- **single / scaled** — 1 client vs ``SCALED_CLIENTS`` clients running
  the same latency-bound query; fails when the scaled run's throughput
  is below ``SCALING_FLOOR`` (3x) of the single-client run;
- **mixed** — the scaled query load with one client replaced by a
  mutator registering sources (write-locked, generation-bumping), to
  show writers do not starve readers;
- **saturated** — the scaled load against ``max_in_flight=1``, to show
  admission control sheds load with 429s instead of queueing unboundedly
  while the server keeps answering.

Runnable two ways:

- ``python benchmarks/bench_concurrent_service.py [--smoke]`` — the CI
  entry point: prints the comparison, writes ``BENCH_concurrent.json``
  next to this file and exits non-zero when the scaling gate fails;
- ``pytest benchmarks/bench_concurrent_service.py`` — the same check as
  a ``slow``-marked test (the CI stress job runs it; tier-1 skips it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.core.mdm import MDM  # noqa: E402
from repro.rdf.namespaces import EX  # noqa: E402
from repro.service import MdmHttpServer, MdmService  # noqa: E402
from repro.sources.wrappers import StaticWrapper  # noqa: E402
from tests.stress.loadgen import LoadReport, http_op, run_load  # noqa: E402

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_concurrent.json"

#: Scaled-client throughput must reach this multiple of single-client
#: throughput (the CI gate).  Queries are latency-bound, so anything
#: close to 1.0 would mean the metadata lock serialised the service.
SCALING_FLOOR = 3.0

SCALED_CLIENTS = 8
ROWS_PER_WRAPPER = 25


class SlowWrapper(StaticWrapper):
    """Fixed service latency, so each query's wall time is dominated by
    a sleep the server can overlap across clients."""

    def __init__(self, name, attributes, rows, delay_s):
        super().__init__(name, attributes, rows)
        self.delay_s = delay_s

    def fetch(self):
        time.sleep(self.delay_s)
        return super().fetch()


def build_service(delay_s: float) -> MdmService:
    # Enough fetch workers that SCALED_CLIENTS concurrent executes never
    # queue on the pool — the benchmark measures the service, not the pool.
    mdm = MDM(max_fetch_workers=2 * SCALED_CLIENTS)
    mdm.add_concept(EX.Thing, "Thing")
    mdm.add_identifier(EX.thingId, EX.Thing)
    mdm.add_feature(EX.thingName, EX.Thing)
    mdm.register_source("things")
    rows = [
        {"id": f"t{j}", "name": f"thing {j}"} for j in range(ROWS_PER_WRAPPER)
    ]
    mdm.register_wrapper(
        "things", SlowWrapper("w0", ["id", "name"], rows, delay_s)
    )
    mdm.define_mapping("w0", {"id": EX.thingId, "name": EX.thingName})
    return MdmService(mdm)


QUERY_BODY = {"nodes": [EX.Thing.value, EX.thingName.value]}


def _query_op(base_url: str):
    def op(client: int, iteration: int) -> int:
        return http_op(base_url, "POST", "/query", QUERY_BODY)

    return op


def _mixed_op(base_url: str):
    """Client 0 mutates (register a fresh source: write lock + generation
    bump), everyone else runs the latency-bound query."""

    def op(client: int, iteration: int) -> int:
        if client == 0:
            return http_op(
                base_url, "POST", "/sources", {"name": f"bench-{iteration}"}
            )
        return http_op(base_url, "POST", "/query", QUERY_BODY)

    return op


def _load_phase(
    service: MdmService,
    op_factory,
    clients: int,
    duration_s: float,
    max_in_flight: int,
    name: str,
) -> LoadReport:
    with MdmHttpServer(service, port=0, max_in_flight=max_in_flight) as server:
        return run_load(
            op_factory(server.url), clients, duration_s, name=name
        )


def measure(duration_s: float = 3.0, delay_ms: float = 20.0) -> Dict[str, Any]:
    delay_s = delay_ms / 1000.0
    service = build_service(delay_s)
    # Warm up rewrite cache + fetch pool outside the measured windows.
    service.request("POST", "/query", QUERY_BODY)

    single = _load_phase(
        service, _query_op, 1, duration_s, SCALED_CLIENTS * 2, "single"
    )
    scaled = _load_phase(
        service, _query_op, SCALED_CLIENTS, duration_s, SCALED_CLIENTS * 2,
        "scaled",
    )
    mixed = _load_phase(
        service, _mixed_op, SCALED_CLIENTS, duration_s, SCALED_CLIENTS * 2,
        "mixed",
    )
    saturated = _load_phase(
        service, _query_op, SCALED_CLIENTS, duration_s, 1, "saturated"
    )

    scaling_x = (
        scaled.throughput_rps / single.throughput_rps
        if single.throughput_rps
        else 0.0
    )
    ok = (
        scaling_x >= SCALING_FLOOR
        and not single.errors
        and not scaled.errors
        and not mixed.errors
        and mixed.statuses.get("200", 0) > 0
        and saturated.rejected > 0
        and saturated.statuses.get("200", 0) > 0
    )
    return {
        "wrapper_delay_ms": delay_ms,
        "duration_s": duration_s,
        "scaled_clients": SCALED_CLIENTS,
        "phases": {
            "single": single.to_json_dict(),
            "scaled": scaled.to_json_dict(),
            "mixed": mixed.to_json_dict(),
            "saturated": saturated.to_json_dict(),
        },
        "scaling_x": round(scaling_x, 3),
        "scaling_floor": SCALING_FLOOR,
        "pass": ok,
    }


@pytest.mark.slow
def test_concurrent_throughput_scales_and_sheds_load():
    report = measure(duration_s=1.0, delay_ms=15.0)
    phases = report["phases"]
    assert report["scaling_x"] >= SCALING_FLOOR, (
        f"{SCALED_CLIENTS}-client throughput only "
        f"{report['scaling_x']}x single-client "
        f"({phases['scaled']['throughput_rps']} vs "
        f"{phases['single']['throughput_rps']} rps)"
    )
    assert phases["saturated"]["rejected"] > 0, (
        "admission control never rejected under saturation"
    )
    assert report["pass"], json.dumps(report, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter windows / lower latency (the CI mode)",
    )
    parser.add_argument(
        "--out",
        default=str(ARTIFACT_PATH),
        help=f"artifact path (default {ARTIFACT_PATH.name})",
    )
    args = parser.parse_args(argv)

    duration_s, delay_ms = (1.0, 15.0) if args.smoke else (3.0, 20.0)
    report = measure(duration_s=duration_s, delay_ms=delay_ms)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    phases = report["phases"]
    for name in ("single", "scaled", "mixed", "saturated"):
        phase = phases[name]
        latency = phase["latency_ms"]
        print(
            f"{name:>9}: {phase['throughput_rps']:8.1f} rps  "
            f"p50={latency.get('p50')}ms p95={latency.get('p95')}ms "
            f"p99={latency.get('p99')}ms  "
            f"429s={phase['rejected']} ({phase['rejection_rate']:.1%})"
        )
    print(
        f"scaling:  {report['scaling_x']:.2f}x with {SCALED_CLIENTS} clients "
        f"(floor {SCALING_FLOOR}x)\n"
        f"artifact: {args.out}"
    )
    if not report["pass"]:
        print(
            f"FAIL: scaling below {SCALING_FLOOR}x, load-phase errors, or "
            "admission control never engaged",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
