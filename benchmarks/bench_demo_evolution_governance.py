"""Demo scenario 3 — governance of evolution (paper §3).

"We will release a new version of one of the APIs including breaking
changes that would cause the previously defined queries to crash ...
[then] execute again the queries that were supposed to crash showing how
MDM has adapted the generated relational algebra expressions, where the
two schema versions are now fetched and yield correct results."

The benchmark times the full governance round (release + accommodation +
re-query); assertions pin the before/after behaviour for both MDM (LAV)
and the GAV baseline.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.errors import GavUnfoldingError
from repro.scenarios.football import FootballScenario


def governance_round():
    scenario = FootballScenario.build(anchors_only=True)
    walk = scenario.walk_player_team_names()
    before = scenario.mdm.execute(walk)
    scenario.release_players_v2(retire_v1=False)
    after = scenario.mdm.execute(walk)
    return scenario, walk, before, after


def test_demo3_lav_queries_survive(benchmark):
    scenario, walk, before, after = benchmark(governance_round)
    emit(
        "Demo scenario 3 — algebra before and after the breaking release",
        "before:\n  "
        + before.rewrite.pretty()
        + "\n\nafter (two schema versions unioned):\n  "
        + after.rewrite.pretty(),
    )
    assert before.rewrite.ucq_size == 1
    assert after.rewrite.ucq_size == 2
    assert set(after.relation.rows) == set(before.relation.rows)
    groups = {q.wrapper_names for q in after.rewrite.queries}
    assert ("w1", "w2") in groups and ("w1v2", "w2") in groups


def test_demo3_gav_crashes(benchmark):
    def gav_round():
        scenario = FootballScenario.build(anchors_only=True)
        gav = scenario.build_gav()
        walk = scenario.walk_player_team_names()
        ok_before = len(gav.execute(walk)) == 6
        scenario.release_players_v2(retire_v1=True)
        crashed = False
        try:
            gav.execute(walk)
        except GavUnfoldingError:
            crashed = True
        return ok_before, crashed, gav.migration_cost("w1")

    ok_before, crashed, cost = benchmark(gav_round)
    emit(
        "Demo scenario 3 — GAV baseline on the same release",
        f"answers before release: {ok_before}\n"
        f"crashed after release:  {crashed}\n"
        f"definitions needing manual migration: {cost}",
    )
    assert ok_before and crashed
    assert cost == 7  # 6 feature defs + 1 edge def point at w1


def test_demo3_semi_automatic_accommodation(benchmark):
    """The accommodation itself (suggestion + apply) is the steward-facing
    cost in MDM — benchmark it in isolation."""
    scenario = FootballScenario.build(anchors_only=True)
    scenario.release_players_v2()

    def accommodate():
        suggestion = scenario.mdm.suggest_mapping("w1v2")
        return suggestion

    suggestion = benchmark(accommodate)
    assert suggestion.is_complete
    assert len(suggestion.same_as) == 7
    assert suggestion.unmapped_attributes == ()
