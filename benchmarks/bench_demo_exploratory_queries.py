"""Demo scenario 2 (extension) — participants' exploratory queries.

"We will encourage participants to propose their queries of interest" —
the on-site audience poses ad-hoc OMQs, graphically or as SPARQL, with
selection predicates.  This bench exercises the two analyst front-ends
(walk + filters, and raw SPARQL through :mod:`repro.core.sparql_frontend`)
over representative exploratory questions and checks them against ground
truth.
"""

from benchmarks.conftest import emit
from repro.core.walks import FilterCondition
from repro.rdf.namespaces import EX
from repro.scenarios.football import PLAYER, FootballScenario

SPARQL_TALL_LEFTIES = """
PREFIX ex: <http://www.essi.upc.edu/example/>
SELECT ?playerName WHERE {
    ?p rdf:type ex:Player .
    ?p ex:playerName ?playerName .
    ?p ex:height ?h .
    ?p ex:preferredFoot ?foot .
    FILTER(?h < 180)
    FILTER(?foot = "left")
}
"""


def test_exploratory_filtered_walk(benchmark, generated_scenario):
    mdm = generated_scenario.mdm
    walk = mdm.walk_from_nodes([PLAYER, EX.playerName]).with_filters(
        FilterCondition(EX.rating, ">=", 90)
    )

    outcome = benchmark(lambda: mdm.execute(walk))

    truth = {
        p.name for p in generated_scenario.data.players if p.rating >= 90
    }
    assert {r[0] for r in outcome.relation.rows} == truth
    emit(
        "Exploratory query — players rated >= 90",
        outcome.to_table(),
    )


def test_exploratory_sparql_front_end(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm

    outcome = benchmark(lambda: mdm.sparql_query(SPARQL_TALL_LEFTIES))

    emit(
        "Exploratory query — short left-footed players (posed as SPARQL)",
        outcome.to_table(),
    )
    assert {r[0] for r in outcome.relation.rows} == {"Lionel Messi"}
    # The filter was pushed into the relational plan as a selection.
    assert "σ" in outcome.rewrite.pretty()


def test_exploratory_cross_source_filter(benchmark, generated_scenario):
    mdm = generated_scenario.mdm
    walk = generated_scenario.walk_player_team_names().with_filters(
        FilterCondition(EX.teamName, "=", "Bayern Munich")
    )

    outcome = benchmark(lambda: mdm.execute(walk))

    truth = {
        p.name
        for p in generated_scenario.data.players
        if generated_scenario.data.team_by_id(p.team_id).name == "Bayern Munich"
    }
    assert {r[0] for r in outcome.relation.rows} == truth


def test_exploratory_service_sparql_endpoint(benchmark, anchors_scenario):
    from repro.service.api import MdmService

    service = MdmService(anchors_scenario.mdm)

    def post():
        return service.request(
            "POST", "/query/sparql", {"sparql": SPARQL_TALL_LEFTIES}
        )

    response = benchmark(post)
    assert response.ok
    assert response.body["rows"] == [["Lionel Messi"]]
