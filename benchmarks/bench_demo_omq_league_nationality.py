"""Demo scenario 2 — ontology-mediated queries (paper §3, intro query).

"An exemplary query would be, 'who are the players that play in a league
of their nationality?'" — a four-concept walk (Player, Team, League,
Country) whose rewriting must discover identifier joins across all four
sources and both wrappers of the players and teams sources.
"""

from benchmarks.conftest import emit


def test_demo2_league_nationality_query(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm
    walk = anchors_scenario.walk_league_nationality()

    outcome = benchmark(lambda: mdm.execute(walk))

    emit(
        "Demo scenario 2 — 'players that play in a league of their nationality'",
        outcome.rewrite.explain() + "\n\n" + outcome.to_table(),
    )
    names = {row[0] for row in outcome.relation.rows}
    assert names == {"Sergio Ramos", "Thomas Muller", "Marcus Rashford"}
    # A genuine UCQ: several wrapper combinations answer the walk.
    assert outcome.rewrite.ucq_size >= 1
    used = {n for q in outcome.rewrite.queries for n in q.wrapper_names}
    # The answer necessarily crosses JSON, XML and CSV sources.
    assert {"w1", "w1n", "w2m", "w3"} <= used


def test_demo2_generated_scale(benchmark, generated_scenario):
    mdm = generated_scenario.mdm
    walk = generated_scenario.walk_league_nationality()

    outcome = benchmark(lambda: mdm.execute(walk))

    truth = {
        p.name for p in generated_scenario.data.players_in_national_league()
    }
    assert {row[0] for row in outcome.relation.rows} == truth
