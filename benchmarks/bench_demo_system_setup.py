"""Demo scenario 1 — system setup (paper §3).

"We will take the role of a data steward that has been given a UML
diagram and assigned the task of setting up a global schema ... introduce
the four sources ... and a wrapper for each ... and [define] named
graphs, which are the basis for LAV mappings."

The benchmark times the complete steward workflow from a blank MDM to a
queryable system; assertions verify each intermediate artifact exists.
"""

from benchmarks.conftest import emit
from repro.scenarios.football import FootballScenario


def test_demo1_full_steward_workflow(benchmark):
    scenario = benchmark(lambda: FootballScenario.build(anchors_only=True))
    mdm = scenario.mdm
    summary = mdm.summary()
    emit(
        "Demo scenario 1 — system setup",
        "\n".join(f"{key:>9}: {value}" for key, value in summary.items()),
    )
    assert summary["concepts"] == 4        # Figure 5 built
    assert summary["sources"] == 4        # four REST APIs introduced
    assert summary["wrappers"] >= 4       # one wrapper per source (plus extras)
    assert summary["mappings"] == summary["wrappers"]  # all mapped
    assert mdm.validate() == []
    # The resulting system answers the demo query immediately.
    outcome = mdm.execute(scenario.walk_player_team_names())
    assert len(outcome.relation) == 6


def test_demo1_setup_through_rest_service(benchmark):
    """The same setup driven through the REST service layer (§2.5)."""
    from repro.rdf.namespaces import EX
    from repro.service.api import MdmService

    def build_via_service():
        service = MdmService()
        assert service.request(
            "POST", "/globalGraph/concepts", {"iri": EX.Thing.value}
        ).ok
        assert service.request(
            "POST",
            "/globalGraph/features",
            {"iri": EX.thingId.value, "concept": EX.Thing.value, "identifier": True},
        ).ok
        assert service.request(
            "POST",
            "/globalGraph/features",
            {"iri": EX.thingName.value, "concept": EX.Thing.value},
        ).ok
        assert service.request("POST", "/sources", {"name": "things"}).ok
        assert service.request(
            "POST",
            "/sources/things/wrappers",
            {
                "name": "wt",
                "attributes": ["id", "name"],
                "rows": [{"id": 1, "name": "A"}],
            },
        ).ok
        assert service.request(
            "POST",
            "/wrappers/wt/mapping",
            {"features": {"id": EX.thingId.value, "name": EX.thingName.value}},
        ).ok
        return service

    service = benchmark(build_via_service)
    response = service.request(
        "POST",
        "/query",
        {
            "nodes": [
                "http://www.essi.upc.edu/example/Thing",
                "http://www.essi.upc.edu/example/thingName",
            ]
        },
    )
    assert response.ok and response.body["rows"] == [["A"]]
