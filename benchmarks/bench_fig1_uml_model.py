"""Figure 1 — the UML class diagram of the motivational use case.

Paper artifact: a UML with four classes (Player, Team, League, Country),
their attributes, and the associations between them.  We regenerate it as
a :class:`UmlModel` and benchmark its compilation into the global graph
("we use [the UML] as a starting point ... to generate the ontological
knowledge captured in the global graph").
"""

from benchmarks.conftest import emit
from repro.scenarios.football import football_uml


def render_uml(model) -> str:
    lines = []
    for cls in model.classes:
        attrs = ", ".join(
            f"{name}{' [id]' if name == cls.identifier else ''}"
            for name, _ in cls.attributes
        )
        lines.append(f"class {cls.name} {{ {attrs} }}")
    for assoc in model.associations:
        lines.append(
            f"{assoc.source} --{assoc.property_iri.local_name()}--> {assoc.target}"
        )
    return "\n".join(lines)


def test_fig1_uml_compiles_to_global_graph(benchmark):
    model = football_uml()
    gg = benchmark(model.compile)
    emit("Figure 1 — UML of the motivational use case", render_uml(model))
    # Structural facts from the paper's Figure 1.
    assert {c.name for c in model.classes} == {"Player", "Team", "League", "Country"}
    assert len(model.associations) == 4
    assert len(gg.concepts()) == 4
    assert len(gg.features()) == 14
    assert gg.validate() == []
