"""Figure 2 — sample data for the Players API (JSON) and Teams API (XML).

Paper artifact: the Messi record served in JSON and the FC Barcelona
record served in XML — the sources "differ in terms of schema and
format".  We regenerate both payloads from the mock REST server and pin
every printed value; the benchmark times one request/decode round.
"""

import json

from benchmarks.conftest import emit
from repro.sources.formats import decode_json, decode_xml


def test_fig2_players_json_payload(benchmark, anchors_scenario):
    server = anchors_scenario.server

    def fetch():
        return decode_json(server.get("/v1/players").body)

    records = benchmark(fetch)
    messi = next(r for r in records if r["id"] == 6176)
    emit(
        "Figure 2 (left) — Players API JSON record",
        json.dumps(
            {
                "id": messi["id"],
                "name": messi["name"],
                "height": messi["height"],
                "weight": messi["weight"],
                "rating": messi["rating"],
                "preferred_foot": messi["preferred_foot"],
                "team_id": messi["team_id"],
            },
            indent=1,
        ),
    )
    # The exact Figure 2 values.
    assert messi["name"] == "Lionel Messi"
    assert messi["height"] == 170.18
    assert messi["weight"] == 159
    assert messi["rating"] == 94
    assert messi["preferred_foot"] == "left"
    assert messi["team_id"] == 25


def test_fig2_teams_xml_payload(benchmark, anchors_scenario):
    server = anchors_scenario.server

    def fetch():
        return server.get("/v1/teams").body

    body = benchmark(fetch)
    records = decode_xml(body)
    barca = next(r for r in records if r["id"] == "25")
    emit(
        "Figure 2 (right) — Teams API XML record",
        "<team>\n"
        f"  <id>{barca['id']}</id>\n"
        f"  <name>{barca['name']}</name>\n"
        f"  <shortName>{barca['shortName']}</shortName>\n"
        "</team>",
    )
    assert barca["name"] == "FC Barcelona"
    assert barca["shortName"] == "FCB"
    assert "<team>" in body and "<id>25</id>" in body
