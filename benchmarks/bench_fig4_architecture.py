"""Figure 4 — high-level overview of the approach (full-stack smoke).

Paper artifact: the architecture diagram — global graph on top, LAV
mappings in the middle, source graph and wrappers below, sources at the
bottom.  We regenerate it as a live system inventory (every layer
populated and consistent) and benchmark a complete cold build of the
stack.
"""

from benchmarks.conftest import emit
from repro.scenarios.football import FootballScenario


def test_fig4_full_stack_assembly(benchmark):
    scenario = benchmark(lambda: FootballScenario.build(anchors_only=True))
    mdm = scenario.mdm
    summary = mdm.summary()
    lines = [
        "global graph   : "
        f"{summary['concepts']} concepts, {summary['features']} features",
        "LAV mappings   : "
        f"{summary['mappings']} named graphs + sameAs links",
        "source graph   : "
        f"{summary['sources']} data sources, {summary['wrappers']} wrappers",
        "sources        : "
        f"{len(scenario.server.endpoints())} REST endpoints "
        f"({', '.join(sorted(set(e.payload_format for e in scenario.server.endpoints())))})",
        "metadata store : "
        f"{summary['releases']} releases logged",
    ]
    emit("Figure 4 — high-level overview (live inventory)", "\n".join(lines))
    assert summary["concepts"] == 4
    assert summary["sources"] == 4
    assert summary["wrappers"] == summary["mappings"] == 6
    assert mdm.validate() == []
    # Each layer reaches the next: every mapped wrapper has a runtime
    # object, every runtime wrapper can fetch.
    for name, wrapper in mdm.wrappers.items():
        assert wrapper.fetch_relation().schema.names == wrapper.attributes


def test_fig4_service_layer_round(benchmark, anchors_scenario):
    from repro.service.api import MdmService

    service = MdmService(anchors_scenario.mdm)

    def round_trip():
        return service.request("GET", "/summary")

    response = benchmark(round_trip)
    assert response.ok and response.body["concepts"] == 4
