"""Figure 5 — the global graph for the motivational use case.

Paper artifact: concepts (blue) and features (yellow), with Team reused
from ``sc:SportsTeam``.  We regenerate the graph, print the
concept→features adjacency, and benchmark its construction in RDF.
"""

from benchmarks.conftest import emit
from repro.rdf.namespaces import SC
from repro.scenarios.football import TEAM, football_uml


def render_global_graph(gg) -> str:
    ns = gg.graph.namespaces
    lines = []
    for concept in gg.concepts():
        features = ", ".join(
            ns.compact(f) or f.value for f in gg.features_of(concept)
        )
        lines.append(f"{ns.compact(concept) or concept.value}: {features}")
    for relation in gg.relations():
        lines.append(
            f"{ns.compact(relation.subject)} --{ns.compact(relation.predicate)}--> "
            f"{ns.compact(relation.object)}"
        )
    return "\n".join(lines)


def test_fig5_global_graph_construction(benchmark):
    gg = benchmark(lambda: football_uml().compile())
    emit("Figure 5 — global graph (concepts and their features)", render_global_graph(gg))
    # Vocabulary reuse, exactly as in the paper.
    assert TEAM == SC.SportsTeam
    assert gg.is_concept(SC.SportsTeam)
    # Blue/yellow node counts.
    assert len(gg.concepts()) == 4
    assert len(gg.features()) == 14
    # Every concept has an identifier marked via sc:identifier.
    for concept in gg.concepts():
        assert gg.identifiers_of(concept), concept
    # RDF triples were generated automatically from the steward gestures.
    assert len(gg.graph) > 30


def test_fig5_turtle_serialization(benchmark):
    from repro.rdf.turtle import serialize_turtle

    gg = football_uml().compile()
    text = benchmark(lambda: serialize_turtle(gg.graph))
    assert "sc:SportsTeam" in text
    assert "G:hasFeature" in text or "hasFeature" in text
