"""Figure 6 — the source graph for the players and teams sources.

Paper artifact: data sources (red), wrappers (orange) and attributes
(blue), with the exact signatures
``w1(id, pName, height, weight, score, foot, teamId)`` and
``w2(id, name, shortName)`` — noting that "some attribute names differ
from the data stored in the source ... the query contained in the wrapper
might rename (e.g. foot) or add new attributes (e.g. teamId)".
"""

from benchmarks.conftest import emit
from repro.core.source_graph import SourceGraph


def build_fig6_source_graph() -> SourceGraph:
    sg = SourceGraph()
    players = sg.add_data_source("players", "Players API")
    sg.register_wrapper(
        players, "w1", ["id", "pName", "height", "weight", "score", "foot", "teamId"]
    )
    teams = sg.add_data_source("teams", "Teams API")
    sg.register_wrapper(teams, "w2", ["id", "name", "shortName"])
    return sg


def render_source_graph(sg: SourceGraph) -> str:
    lines = []
    for source in sg.data_sources():
        lines.append(f"[source] {source.local_name()}")
        for wrapper in sg.wrappers_of(source):
            lines.append(f"  [wrapper] {sg.signature_of(wrapper)}")
    return "\n".join(lines)


def test_fig6_source_graph_extraction(benchmark):
    sg = benchmark(build_fig6_source_graph)
    emit("Figure 6 — source graph (sources, wrappers, attributes)", render_source_graph(sg))
    assert len(sg.data_sources()) == 2
    assert len(sg.wrappers()) == 2
    w1 = sg.wrapper_by_name("w1")
    w2 = sg.wrapper_by_name("w2")
    assert w1 is not None and w2 is not None
    w1_attrs = {sg.attribute_name(a) for a in sg.attributes_of(w1)}
    assert w1_attrs == {"id", "pName", "height", "weight", "score", "foot", "teamId"}
    w2_attrs = {sg.attribute_name(a) for a in sg.attributes_of(w2)}
    assert w2_attrs == {"id", "name", "shortName"}
    # Attributes are NOT shared across the two sources even when the
    # signature name coincides ("the semantics of attributes might differ").
    w1_id = next(a for a in sg.attributes_of(w1) if sg.attribute_name(a) == "id")
    w2_id = next(a for a in sg.attributes_of(w2) if sg.attribute_name(a) == "id")
    assert w1_id != w2_id
    assert sg.validate() == []


def test_fig6_attribute_reuse_within_source(benchmark):
    def build_with_reuse():
        sg = SourceGraph()
        players = sg.add_data_source("players")
        sg.register_wrapper(players, "w1", ["id", "pName"])
        return sg.register_wrapper(players, "w1b", ["id", "nationality"])

    registration = benchmark(build_with_reuse)
    # "MDM will try to reuse as many attributes as possible from the
    # previous wrappers for that data source."
    assert registration.reused_attributes == ("id",)
