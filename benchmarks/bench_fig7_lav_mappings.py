"""Figure 7 — the LAV mappings for wrappers w1 and w2.

Paper artifact: two contours over the global graph — w1 (red) covering
Player and its features plus the hasTeam edge into ``sc:SportsTeam`` with
its identifier; w2 (green) covering SportsTeam and its features.  "Note
the intersection in the concept sc:SportsTeam and its identifier, this
will be later used when querying in order to enable joining such
concepts."  We regenerate both named graphs, print them, verify the
intersection, and benchmark mapping definition + validation.
"""

from benchmarks.conftest import emit
from repro.rdf.namespaces import EX, SC
from repro.scenarios.football import PLAYER, TEAM, FootballScenario


def render_mapping(mdm, wrapper_name: str) -> str:
    wrapper = mdm.wrapper_iri(wrapper_name)
    view = mdm.mappings.view(wrapper)
    ns = mdm.global_graph.graph.namespaces
    lines = [f"named graph <{wrapper_name}> covers:"]
    for concept in sorted(view.concepts, key=lambda c: c.value):
        features = [
            ns.compact(f) or f.value
            for f in sorted(view.features, key=lambda f: f.value)
            if mdm.global_graph.concept_of(f) == concept
        ]
        lines.append(f"  {ns.compact(concept)}: {', '.join(features)}")
    for edge in sorted(view.edges, key=lambda e: str(e)):
        lines.append(
            f"  edge {ns.compact(edge.subject)} --{ns.compact(edge.predicate)}--> "
            f"{ns.compact(edge.object)}"
        )
    for feature, attribute in sorted(
        view.feature_attributes.items(), key=lambda kv: kv[0].value
    ):
        lines.append(f"  sameAs: {wrapper_name}.{attribute} ≡ {ns.compact(feature)}")
    return "\n".join(lines)


def test_fig7_lav_mappings(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm
    emit(
        "Figure 7 — LAV mappings for w1 (red) and w2 (green)",
        render_mapping(mdm, "w1") + "\n\n" + render_mapping(mdm, "w2"),
    )
    view_w1 = mdm.mappings.view(mdm.wrapper_iri("w1"))
    view_w2 = mdm.mappings.view(mdm.wrapper_iri("w2"))
    # The Figure 7 intersection: sc:SportsTeam and its identifier.
    shared_concepts = view_w1.concepts & view_w2.concepts
    assert shared_concepts == frozenset({TEAM})
    shared_features = view_w1.features & view_w2.features
    assert shared_features == frozenset({EX.teamId})
    assert mdm.global_graph.is_identifier(EX.teamId)
    # w1 covers Player fully and carries the hasTeam edge.
    assert PLAYER in view_w1.concepts
    assert any(e.predicate == EX.hasTeam for e in view_w1.edges)
    # Benchmark: redefine w1's mapping (validation included).
    def redefine():
        return anchors_scenario.mdm.define_mapping(
            "w1",
            {
                "id": EX.playerId,
                "pName": EX.playerName,
                "height": EX.height,
                "weight": EX.weight,
                "score": EX.rating,
                "foot": EX.preferredFoot,
                "teamId": EX.teamId,
            },
            edges=[(PLAYER, EX.hasTeam, TEAM)],
        )

    view = benchmark(redefine)
    assert view.concepts == frozenset({PLAYER, TEAM})


def test_fig7_named_graphs_are_subgraphs(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm

    def check_all():
        results = []
        for wrapper in mdm.mappings.mapped_wrappers():
            named = mdm.mappings.named_graph(wrapper)
            results.append(named.issubgraph(mdm.global_graph.graph))
        return results

    results = benchmark(check_all)
    assert all(results) and len(results) == 6
