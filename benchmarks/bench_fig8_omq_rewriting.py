"""Figure 8 — posing an OMQ in MDM.

Paper artifact: the walk (contour over Player/playerName/Team/teamName),
the equivalent SPARQL query, and the generated relational algebra
expression over the wrappers.  We regenerate all three and benchmark the
rewriting itself (the three-phase LAV algorithm).
"""

from benchmarks.conftest import emit
from repro.relational.sql import to_sql
from repro.sparql.parser import parse_query


def test_fig8_walk_to_sparql_to_algebra(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm
    walk = anchors_scenario.walk_player_team_names()

    result = benchmark(lambda: mdm.rewriter.rewrite(walk))

    emit(
        "Figure 8 — OMQ: walk → SPARQL → relational algebra",
        "walk: "
        + walk.describe(mdm.global_graph)
        + "\n\nSPARQL:\n"
        + result.sparql
        + "\n\nrelational algebra over the wrappers:\n"
        + result.pretty()
        + "\n\nfederated SQL equivalent:\n"
        + to_sql(result.plan),
    )

    # The SPARQL is syntactically valid and projects the two features.
    query = parse_query(result.sparql)
    assert {v.name for v in query.variables} == {"playerName", "teamName"}
    # One conjunctive query joining w1 and w2 on the teamId identifier.
    assert result.ucq_size == 1
    assert set(result.queries[0].wrapper_names) == {"w1", "w2"}
    pretty = result.pretty()
    assert "⋈" in pretty and "π" in pretty and "ρ" in pretty
    assert "teamId" in pretty  # the discovered join attribute
    # Phase (a) added exactly the two identifiers.
    added = set(result.expanded_walk.features) - set(result.walk.features)
    assert {f.local_name() for f in added} == {"playerId", "teamId"}


def test_fig8_sparql_translation_speed(benchmark, anchors_scenario):
    walk = anchors_scenario.walk_player_team_names()
    gg = anchors_scenario.mdm.global_graph
    text = benchmark(lambda: walk.to_sparql(gg))
    assert "SELECT ?playerName ?teamName" in text
