"""Cost of the static diagnostics: lint sweeps and per-query plan checks.

Lint is meant to run in CI on every merge and (as ``validate_plans``)
inside every ``MDM.execute`` call, so its cost matters twice: the
whole-system sweep must stay interactive on realistic metadata sizes,
and the per-plan schema check must be negligible next to rewriting and
fetching.  This bench times both on growing synthetic chains and on the
seeded-broken fixture (worst case: every rule fires and allocates
findings), and persists the numbers to ``benchmarks/BENCH_lint.json``.

Timings are *logged*, not asserted — wall-clock under CI load is not a
correctness property.  Finding counts are asserted.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import lint_mdm
from repro.analysis.lint import wrapper_catalog
from repro.analysis.plan_checker import check_plan
from repro.scenarios.broken import EXPECTED_CODES, broken_mdm
from repro.scenarios.synthetic import SYN, chain_mdm

BENCH_LINT_PATH = Path(__file__).resolve().parent / "BENCH_lint.json"


def _timed(fn, repeat=5):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_bench_lint_sweep_and_plan_check():
    results = {"sweep": [], "plan_check": []}

    for n_concepts in (2, 4, 8, 12):
        mdm, concepts, _, _ = chain_mdm(n_concepts, rows_per_concept=2)
        report, sweep_s = _timed(lambda m=mdm: lint_mdm(m))
        assert report.ok, report.render_text()

        nodes = list(concepts) + [SYN[f"val{i}"] for i in range(n_concepts)]
        rewrite = mdm.rewriter.rewrite(mdm.walk_from_nodes(nodes))
        catalog = wrapper_catalog(mdm)
        (findings, schema), check_s = _timed(
            lambda r=rewrite, c=catalog: check_plan(r.plan, c)
        )
        assert schema is not None and not findings

        results["sweep"].append({"concepts": n_concepts, "seconds": sweep_s})
        results["plan_check"].append(
            {
                "concepts": n_concepts,
                "plan_operators": rewrite.plan.size()
                if hasattr(rewrite.plan, "size")
                else None,
                "seconds": check_s,
            }
        )

    broken_report, broken_s = _timed(lambda: lint_mdm(broken_mdm()))
    fired = {f.code for f in broken_report.findings}
    assert EXPECTED_CODES <= fired
    results["broken"] = {
        "seconds": broken_s,
        "findings": len(broken_report.findings),
        "distinct_codes": len(fired),
    }

    BENCH_LINT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    emit(
        "Static diagnostics cost (best of 5)",
        "\n".join(
            [
                *(
                    f"lint sweep, {r['concepts']:>2} concepts: {r['seconds'] * 1e3:7.2f} ms"
                    for r in results["sweep"]
                ),
                *(
                    f"plan check, {r['concepts']:>2} concepts: {r['seconds'] * 1e3:7.2f} ms"
                    for r in results["plan_check"]
                ),
                f"broken fixture ({results['broken']['findings']} findings): "
                f"{results['broken']['seconds'] * 1e3:7.2f} ms",
            ]
        ),
    )
