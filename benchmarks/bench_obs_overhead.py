"""Tracing overhead budget: traced-parallel vs untraced-parallel execution.

The always-on observability contract only holds if tracing is cheap
*while the fetch pool is busy*: the contextvars tracer must not serialise
the pool (the old fallback did exactly that) nor add meaningful per-span
cost.  This benchmark executes the same federated UCQ over eight
latency-bound wrappers twice — tracing off, then tracing on at
``sample_rate=1.0`` — and fails when the traced run's throughput falls
below ``THROUGHPUT_FLOOR`` (80%) of the untraced run's.

Runnable two ways:

- ``python benchmarks/bench_obs_overhead.py [--smoke]`` — the CI entry
  point: prints the comparison, writes ``BENCH_obs_overhead.json`` next
  to this file and exits non-zero when the budget is blown;
- ``pytest benchmarks/bench_obs_overhead.py`` — the same check as a
  test (smoke-sized so it stays in the tier-1 wall-time budget).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.core.mdm import MDM
from repro.obs import capture
from repro.rdf.namespaces import EX
from repro.sources.wrappers import StaticWrapper

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_obs_overhead.json"

#: Traced-parallel throughput must stay at or above this fraction of
#: untraced-parallel throughput (the ISSUE's 20% overhead budget).
THROUGHPUT_FLOOR = 0.80

WRAPPERS = 8
ROWS_PER_WRAPPER = 50


class SlowWrapper(StaticWrapper):
    """A wrapper with a fixed service latency, so fetch wall time is
    deterministic and the pool's parallelism dominates the measurement."""

    def __init__(self, name, attributes, rows, delay_s):
        super().__init__(name, attributes, rows)
        self.delay_s = delay_s

    def fetch(self):
        time.sleep(self.delay_s)
        return super().fetch()


def build_mdm(delay_s: float) -> MDM:
    mdm = MDM(max_fetch_workers=WRAPPERS)
    mdm.add_concept(EX.Thing, "Thing")
    mdm.add_identifier(EX.thingId, EX.Thing)
    mdm.add_feature(EX.thingName, EX.Thing)
    mdm.register_source("things")
    for i in range(WRAPPERS):
        name = f"w{i}"
        rows = [
            {"id": f"{name}-{j}", "name": f"{name} thing {j}"}
            for j in range(ROWS_PER_WRAPPER)
        ]
        mdm.register_wrapper(
            "things", SlowWrapper(name, ["id", "name"], rows, delay_s)
        )
        mdm.define_mapping(name, {"id": EX.thingId, "name": EX.thingName})
    return mdm


def _time_runs(mdm, walk, runs: int) -> List[float]:
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        mdm.execute(walk, use_cache=False)
        times.append(time.perf_counter() - t0)
    return times


def measure(runs: int = 5, delay_ms: float = 25.0) -> Dict:
    """Median traced vs untraced wall time over ``runs`` executions."""
    mdm = build_mdm(delay_ms / 1000.0)
    walk = mdm.walk_from_nodes([EX.Thing, EX.thingName])
    mdm.execute(walk, use_cache=False)  # warm-up (imports, pool spin-up)

    untraced_s = _time_runs(mdm, walk, runs)
    with capture():
        traced_s = _time_runs(mdm, walk, runs)

    untraced_ms = statistics.median(untraced_s) * 1000.0
    traced_ms = statistics.median(traced_s) * 1000.0
    # Throughput ratio: 1.0 = free tracing, 0.5 = tracing halved it.
    ratio = untraced_ms / traced_ms if traced_ms else 0.0
    return {
        "wrappers": WRAPPERS,
        "rows_per_wrapper": ROWS_PER_WRAPPER,
        "wrapper_delay_ms": delay_ms,
        "runs": runs,
        "untraced_ms": {
            "median": round(untraced_ms, 3),
            "all": [round(t * 1000.0, 3) for t in untraced_s],
        },
        "traced_ms": {
            "median": round(traced_ms, 3),
            "all": [round(t * 1000.0, 3) for t in traced_s],
        },
        "throughput_ratio": round(ratio, 4),
        "threshold": THROUGHPUT_FLOOR,
        "pass": ratio >= THROUGHPUT_FLOOR,
    }


def test_traced_parallel_overhead_within_budget():
    """Traced-parallel throughput >= 80% of untraced-parallel."""
    report = measure(runs=3)
    assert report["pass"], (
        f"tracing overhead blew the budget: traced median "
        f"{report['traced_ms']['median']}ms vs untraced "
        f"{report['untraced_ms']['median']}ms "
        f"(ratio {report['throughput_ratio']} < {THROUGHPUT_FLOOR})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer runs / shorter wrapper latency (the CI mode)",
    )
    parser.add_argument(
        "--out",
        default=str(ARTIFACT_PATH),
        help=f"artifact path (default {ARTIFACT_PATH.name})",
    )
    args = parser.parse_args(argv)

    runs, delay_ms = (3, 25.0) if args.smoke else (9, 40.0)
    report = measure(runs=runs, delay_ms=delay_ms)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"untraced-parallel median: {report['untraced_ms']['median']:.3f}ms\n"
        f"traced-parallel median:   {report['traced_ms']['median']:.3f}ms\n"
        f"throughput ratio:         {report['throughput_ratio']:.4f} "
        f"(floor {THROUGHPUT_FLOOR})\n"
        f"artifact:                 {args.out}"
    )
    if not report["pass"]:
        print(
            "FAIL: traced-parallel throughput fell below "
            f"{THROUGHPUT_FLOOR:.0%} of untraced-parallel",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
