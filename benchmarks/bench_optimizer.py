"""Logical optimizer vs naive UCQ execution, plus the union-sort delta.

The optimizer's promise for the evolution story: as sources accumulate
wrapper versions, the UCQ over a concept grows one branch per version,
and the naive left-deep plan re-joins the shared dimension wrappers and
drags every source column through every join.  With selection pushdown,
projection pruning, join reordering and shared-subplan memoization the
same UCQ should answer at least 2× faster.  This bench measures both
modes at 2–8 alternative wrappers per concept on pre-fetched relations
(so wrapper latency does not pollute the plan-quality signal), records
rows-scanned from the EXPLAIN ANALYZE operator tree, times the
union-sort decorate-sort-undecorate rewrite against the old per-cell
key, and persists everything to ``benchmarks/BENCH_optimizer.json``.

The ≥2× speedup expectation is *logged*, not asserted — wall-clock under
CI load is not a correctness property.  Result equality is asserted.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.relational.algebra import (
    Distinct,
    NaturalJoin,
    Project,
    Scan,
    Select,
    union_all,
)
from repro.relational.executor import Executor, _union_sort_key
from repro.relational.expressions import Cmp, Col, Const
from repro.relational.optimizer import PlanOptimizer
from repro.relational.relation import Relation

BENCH_OPTIMIZER_PATH = Path(__file__).resolve().parent / "BENCH_optimizer.json"

#: Rows per alternative wrapper of the queried concept (the wide fact side).
ROWS_FACT = 4000
#: Rows in the big dimension wrapper ``b`` (every fact id matches, so the
#: naive left-deep join materializes a full-width ROWS_FACT intermediate).
ROWS_BIG_DIM = 4000
#: Rows in the small dimension wrapper ``c`` (the selective join).
ROWS_DIM = 50
#: Junk source attributes per wrapper that the query never asks for.
JUNK_COLUMNS = 10
#: UCQ widths exercised — alternative wrapper versions for one concept.
WRAPPER_COUNTS = (2, 4, 6, 8)
REPETITIONS = 3
SORT_ROWS = 20_000
SORT_WIDTH = 6


def build_relations(n_wrappers):
    """``n_wrappers`` wide fact wrappers + two shared dimension wrappers."""
    relations = {}
    fact_columns = ["id", "val"] + [f"fj{j}" for j in range(JUNK_COLUMNS)]
    for i in range(n_wrappers):
        rows = [
            dict(
                {"id": k, "val": (k * 7 + i) % 100},
                **{f"fj{j}": f"junk-{i}-{k}-{j}" for j in range(JUNK_COLUMNS)},
            )
            for k in range(ROWS_FACT)
        ]
        relations[f"a{i}"] = Relation.from_dicts(
            rows, attribute_order=fact_columns
        )
    for dim, feature, n_rows in (
        ("b", "y", ROWS_BIG_DIM),
        ("c", "z", ROWS_DIM),
    ):
        columns = ["id", feature] + [f"{dim}j{j}" for j in range(JUNK_COLUMNS)]
        rows = [
            dict(
                {"id": k, feature: k * 2},
                **{f"{dim}j{j}": f"{dim}-{k}-{j}" for j in range(JUNK_COLUMNS)},
            )
            for k in range(n_rows)
        ]
        relations[dim] = Relation.from_dicts(rows, attribute_order=columns)
    return relations


def build_ucq(n_wrappers):
    """Naive UCQ: one left-deep filtered branch per alternative wrapper."""
    branches = []
    for i in range(n_wrappers):
        joined = NaturalJoin(NaturalJoin(Scan(f"a{i}"), Scan("b")), Scan("c"))
        filtered = Select(joined, Cmp("<", Col("val"), Const(5)))
        branches.append(Project(filtered, ("id", "val", "y", "z")))
    return Distinct(union_all(branches))


def rows_scanned(stats):
    """Total rows produced across the operator tree (memo hits are free)."""
    return sum(
        node.rows_out for node in stats.iter_nodes() if not node.memoized
    )


def timed_run(relations, plan, memoize_shared):
    """Best-of-``REPETITIONS`` analyzed execution on a fresh executor."""
    best_s, kept = float("inf"), None
    for _ in range(REPETITIONS):
        executor = Executor(dict(relations), memoize_shared=memoize_shared)
        started = time.perf_counter()
        relation, stats = executor.execute_analyzed(plan)
        elapsed = time.perf_counter() - started
        if elapsed < best_s:
            best_s = elapsed
            kept = (relation, stats, executor.subplan_hits)
    relation, stats, memo_hits = kept
    return best_s, relation, stats, memo_hits


def bench_one_width(n_wrappers):
    relations = build_relations(n_wrappers)
    plan = build_ucq(n_wrappers)

    optimizer = PlanOptimizer(
        {name: rel.schema for name, rel in relations.items()},
        {name: len(rel) for name, rel in relations.items()},
    )
    started = time.perf_counter()
    optimized_plan, optimization = optimizer.optimize(plan)
    optimize_s = time.perf_counter() - started

    naive_s, naive_rel, naive_stats, _ = timed_run(
        relations, plan, memoize_shared=False
    )
    opt_s, opt_rel, opt_stats, memo_hits = timed_run(
        relations, optimized_plan, memoize_shared=True
    )

    # Same Distinct-rooted UCQ ⇒ identical bags; canonical sort ⇒ bytes.
    assert naive_rel.schema.names == opt_rel.schema.names
    assert naive_rel.sorted().rows == opt_rel.sorted().rows

    naive_scanned = rows_scanned(naive_stats)
    opt_scanned = rows_scanned(opt_stats)
    return {
        "wrappers": n_wrappers,
        "naive_s": round(naive_s, 6),
        "optimized_s": round(opt_s, 6),
        "optimize_s": round(optimize_s, 6),
        "speedup": round(naive_s / opt_s, 3) if opt_s else float("inf"),
        "rules_applied": optimization.total,
        "memo_hits": memo_hits,
        "naive_rows_scanned": naive_scanned,
        "optimized_rows_scanned": opt_scanned,
        "rows_scanned_ratio": (
            round(naive_scanned / opt_scanned, 3) if opt_scanned else None
        ),
        "result_rows": len(opt_rel),
    }


def _old_union_sort_key(row):
    """The pre-rewrite per-cell nested key (one tuple per cell)."""
    return tuple((v is not None, str(v)) for v in row)


def bench_union_sort():
    """Flat interleaved sort key vs the old nested per-cell pairs."""
    rows = [
        tuple(
            None
            if (k + j) % 7 == 0
            else (k * 31 + j if j % 2 else f"cell-{k}-{j}")
            for j in range(SORT_WIDTH)
        )
        for k in range(SORT_ROWS)
    ]
    def best(key):
        timings = []
        for _ in range(5):
            started = time.perf_counter()
            sorted(rows, key=key)
            timings.append(time.perf_counter() - started)
        return min(timings)

    old_s = best(_old_union_sort_key)
    new_s = best(_union_sort_key)
    assert sorted(rows, key=_old_union_sort_key) == sorted(
        rows, key=_union_sort_key
    )
    return {
        "rows": SORT_ROWS,
        "width": SORT_WIDTH,
        "old_nested_key_s": round(old_s, 6),
        "flat_key_s": round(new_s, 6),
        "speedup": round(old_s / new_s, 3) if new_s else float("inf"),
    }


@pytest.mark.slow
def test_optimizer_beats_naive_ucq():
    widths = [bench_one_width(n) for n in WRAPPER_COUNTS]
    union_sort = bench_union_sort()
    worst = min(w["speedup"] for w in widths)
    summary = {
        "rows_fact": ROWS_FACT,
        "rows_big_dim": ROWS_BIG_DIM,
        "rows_dim": ROWS_DIM,
        "junk_columns": JUNK_COLUMNS,
        "repetitions": REPETITIONS,
        "widths": widths,
        "worst_speedup": worst,
        "meets_2x_target": worst >= 2.0,
        "union_sort": union_sort,
    }
    BENCH_OPTIMIZER_PATH.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"{w['wrappers']} wrappers: naive {w['naive_s'] * 1000:.1f}ms vs "
        f"optimized {w['optimized_s'] * 1000:.1f}ms "
        f"(+{w['optimize_s'] * 1000:.1f}ms optimize) = {w['speedup']:.2f}x; "
        f"rows scanned {w['naive_rows_scanned']} → "
        f"{w['optimized_rows_scanned']}; {w['memo_hits']} memo hits; "
        f"{w['rules_applied']} rule applications"
        for w in widths
    ]
    lines.append(
        f"union sort ({SORT_ROWS} rows × {SORT_WIDTH} cols): nested "
        f"{union_sort['old_nested_key_s'] * 1000:.1f}ms vs flat "
        f"{union_sort['flat_key_s'] * 1000:.1f}ms "
        f"= {union_sort['speedup']:.2f}x"
    )
    lines.append(
        f"worst speedup {worst:.2f}x (target ≥2x: "
        f"{'MET' if worst >= 2.0 else 'MISSED — logged only'})"
    )
    emit("Logical optimizer — naive vs optimized UCQ execution", "\n".join(lines))
    # Correctness (equal results) is asserted inside bench_one_width;
    # wall-clock numbers are logged above, not asserted.
    assert BENCH_OPTIMIZER_PATH.exists()
