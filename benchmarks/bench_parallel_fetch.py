"""Parallel federated fetch vs serial, and the rewrite-cache hit ratio.

The executor's promise for the ROADMAP's "heavy traffic" target: with N
wrappers each costing ~50ms of simulated source latency, a bounded fetch
pool should answer in roughly one latency quantum instead of N.  This
bench measures both modes on the same synthetic union, plus the rewrite
cache's hit ratio over repeated OMQs, and persists the numbers to
``benchmarks/BENCH_parallel.json`` so the perf trajectory accumulates.

The ≥2× speedup expectation is *logged*, not asserted — wall-clock under
CI load is not a correctness property.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.core.mdm import MDM
from repro.rdf.namespaces import Namespace
from repro.sources.wrappers import StaticWrapper

BENCH_PARALLEL_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"

PAR = Namespace("http://parallel.bench/")

N_WRAPPERS = 6
SIMULATED_LATENCY_S = 0.05
REPETITIONS = 3
CACHE_QUERIES = 10


class SlowWrapper(StaticWrapper):
    """A wrapper with fixed simulated source latency."""

    def __init__(self, name, attributes, rows, delay_s):
        super().__init__(name, attributes, rows)
        self.delay_s = delay_s

    def fetch(self):
        time.sleep(self.delay_s)
        return super().fetch()


def build_union_mdm(max_fetch_workers):
    """One concept served by ``N_WRAPPERS`` interchangeable slow wrappers."""
    mdm = MDM(max_fetch_workers=max_fetch_workers)
    mdm.add_concept(PAR.Thing)
    mdm.add_identifier(PAR.thingId, PAR.Thing)
    mdm.add_feature(PAR.thingName, PAR.Thing)
    mdm.register_source("slow")
    for i in range(N_WRAPPERS):
        rows = [
            {"id": f"w{i}-{k}", "name": f"w{i} thing {k}"} for k in range(5)
        ]
        mdm.register_wrapper(
            "slow",
            SlowWrapper(f"w{i}", ["id", "name"], rows, SIMULATED_LATENCY_S),
        )
        mdm.define_mapping(
            f"w{i}", {"id": PAR.thingId, "name": PAR.thingName}
        )
    return mdm


def best_of(mdm, walk, repetitions):
    """Fastest of ``repetitions`` cold-plan executions, in seconds."""
    timings = []
    for _ in range(repetitions):
        mdm.rewrite_cache.clear()
        started = time.perf_counter()
        outcome = mdm.execute(walk)
        timings.append(time.perf_counter() - started)
        assert len(outcome.relation) == N_WRAPPERS * 5
    return min(timings)


@pytest.mark.slow
def test_parallel_fetch_beats_serial_and_cache_hits():
    serial_mdm = build_union_mdm(max_fetch_workers=1)
    parallel_mdm = build_union_mdm(max_fetch_workers=8)
    serial_walk = serial_mdm.walk_from_nodes([PAR.Thing, PAR.thingName])
    parallel_walk = parallel_mdm.walk_from_nodes([PAR.Thing, PAR.thingName])

    serial_s = best_of(serial_mdm, serial_walk, REPETITIONS)
    parallel_s = best_of(parallel_mdm, parallel_walk, REPETITIONS)
    speedup = serial_s / parallel_s if parallel_s else float("inf")

    # Rewrite-cache hit ratio over a burst of identical OMQs.  Counters
    # are cumulative across the timing runs above, so diff around the
    # burst to report the burst's own ratio.
    parallel_mdm.rewrite_cache.clear()
    before = parallel_mdm.rewrite_cache.stats()
    for _ in range(CACHE_QUERIES):
        parallel_mdm.execute(parallel_walk)
    after = parallel_mdm.rewrite_cache.stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    cache = {
        "capacity": after["capacity"],
        "size": after["size"],
        "hits": hits,
        "misses": misses,
        "evictions": after["evictions"] - before["evictions"],
        "hit_rate": round(hits / (hits + misses), 6) if hits + misses else 0.0,
    }

    summary = {
        "wrappers": N_WRAPPERS,
        "rows_per_wrapper": 5,
        "simulated_latency_s": SIMULATED_LATENCY_S,
        "repetitions": REPETITIONS,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "parallel_workers": 8,
        "speedup": round(speedup, 3),
        "meets_2x_target": speedup >= 2.0,
        "cache_queries": CACHE_QUERIES,
        "rewrite_cache": cache,
    }
    BENCH_PARALLEL_PATH.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    emit(
        f"Parallel fetch — {N_WRAPPERS} wrappers × "
        f"{SIMULATED_LATENCY_S * 1000:.0f}ms simulated latency",
        f"serial: {serial_s * 1000:.1f}ms; parallel(8): "
        f"{parallel_s * 1000:.1f}ms; speedup: {speedup:.2f}x "
        f"(target ≥2x: {'MET' if speedup >= 2.0 else 'MISSED — logged only'})\n"
        f"rewrite cache over {CACHE_QUERIES} identical OMQs: "
        f"{cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.0%})",
    )
    # Correctness is gated; wall-clock is logged above, not asserted.
    assert (BENCH_PARALLEL_PATH).exists()
    # The burst after the clear() misses once, then hits every time.
    assert cache["hits"] >= CACHE_QUERIES - 1
