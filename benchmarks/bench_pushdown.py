"""Federated pushdown benchmark: rows over the wire + wall clock + cache.

Models the cost the ISSUE targets — moving source rows across the
wrapper boundary — with a REST endpoint whose response latency grows
with the payload it serves (a fixed per-request floor plus a per-byte
transfer cost).  One selective walk (equality filter matching ~1/4 of
the rows) and one non-selective walk (no filter) run with pushdown off
and on, plus a warm-wrapper-cache pass.

Gates (exit non-zero when any fails):

- selective: pushdown must cut rows transferred by at least
  ``TRANSFER_CUT_FLOOR`` (2x) and not be slower than the full fetch;
- non-selective: pushdown may not regress wall clock by more than
  ``REGRESSION_CEILING`` (10%) — there is nothing to push, so the two
  paths should be the same fetch;
- warm cache: with the wrapper cache enabled, a repeated selective walk
  must touch the source **zero** times (asserted against the mock
  server's request log, not our own bookkeeping).

Runnable two ways:

- ``python benchmarks/bench_pushdown.py [--smoke]`` — the CI entry
  point: prints the comparison, writes ``BENCH_pushdown.json`` next to
  this file and exits non-zero when a gate fails;
- ``pytest benchmarks/bench_pushdown.py`` — the same check as a test
  (smoke-sized so it stays in the tier-1 wall-time budget).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.core.mdm import MDM
from repro.core.walks import FilterCondition
from repro.rdf.namespaces import Namespace
from repro.sources.restapi import Endpoint, MockRestServer
from repro.sources.wrappers import RestWrapper

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_pushdown.json"

#: Selective pushdown must transfer at most 1/2 of the full-fetch rows.
TRANSFER_CUT_FLOOR = 2.0
#: Non-selective pushdown may be at most 10% slower than full fetch.
REGRESSION_CEILING = 1.10

BM = Namespace("http://bench.pushdown/")
CATEGORIES = 4  # the selective filter keeps ~1/4 of the rows


class LatencyServer(MockRestServer):
    """A mock REST server whose responses cost time proportional to size.

    ``base_s`` is the per-request floor (connection + dispatch) and
    ``per_byte_s`` the simulated transfer rate, so a prefiltered
    response really is cheaper than a full dump — the effect the
    benchmark measures, made deterministic.
    """

    def __init__(self, base_s: float, per_byte_s: float):
        super().__init__()
        self.base_s = base_s
        self.per_byte_s = per_byte_s

    def get(self, path, params=None):
        response = super().get(path, params)
        time.sleep(self.base_s + len(response.body) * self.per_byte_s)
        return response


def build_mdm(n_rows: int, base_s: float, per_byte_s: float):
    server = LatencyServer(base_s, per_byte_s)
    rows = [
        {
            "id": f"item-{i:05d}",
            "category": f"cat{i % CATEGORIES}",
            "payload": f"payload-{i:05d}-" + "x" * 40,
        }
        for i in range(n_rows)
    ]
    server.register(
        Endpoint(name="items", version=1, payload_format="json", provider=lambda: rows)
    )
    mdm = MDM()
    mdm.add_concept(BM.Item, "Item")
    mdm.add_identifier(BM.itemId, BM.Item)
    mdm.add_feature(BM.category, BM.Item)
    mdm.add_feature(BM.payload, BM.Item)
    mdm.register_source("items")
    mdm.register_wrapper(
        "items",
        RestWrapper(
            "w_items",
            ["id", "category", "payload"],
            server,
            "/v1/items",
            supports_filters=True,
        ),
    )
    mdm.define_mapping(
        "w_items", {"id": BM.itemId, "category": BM.category, "payload": BM.payload}
    )
    return mdm, server


def _run(mdm, walk, runs: int) -> Dict:
    times: List[float] = []
    outcome = None
    for _ in range(runs):
        t0 = time.perf_counter()
        outcome = mdm.execute(walk, use_cache=False)
        times.append(time.perf_counter() - t0)
    return {
        "median_ms": round(statistics.median(times) * 1000.0, 3),
        "all_ms": [round(t * 1000.0, 3) for t in times],
        "rows_returned": len(outcome.relation),
        "rows_transferred": outcome.profile.rows_transferred,
    }


def measure(
    n_rows: int = 2000,
    runs: int = 5,
    base_ms: float = 2.0,
    kb_per_ms: float = 20.0,
) -> Dict:
    # kb_per_ms KB/ms of simulated bandwidth -> seconds per byte.
    per_byte_s = 1.0 / (kb_per_ms * 1024.0 * 1000.0)
    mdm, server = build_mdm(n_rows, base_ms / 1000.0, per_byte_s)
    selective = mdm.walk_from_nodes([BM.Item, BM.itemId, BM.payload]).with_filters(
        FilterCondition(BM.category, "=", "cat0")
    )
    full = mdm.walk_from_nodes([BM.Item, BM.itemId, BM.payload])

    mdm.configure_execution(pushdown=False)
    mdm.execute(full, use_cache=False)  # warm-up
    sel_off = _run(mdm, selective, runs)
    full_off = _run(mdm, full, runs)
    mdm.configure_execution(pushdown=True)
    sel_on = _run(mdm, selective, runs)
    full_on = _run(mdm, full, runs)

    # Equivalence spot check: identical answers either way.
    mdm.configure_execution(pushdown=False)
    reference = mdm.execute(selective, use_cache=False).relation
    mdm.configure_execution(pushdown=True)
    pushed = mdm.execute(selective, use_cache=False).relation
    assert reference.rows == pushed.rows and reference.schema.names == pushed.schema.names

    # Warm wrapper cache: the second identical run must not hit the source.
    mdm.configure_execution(wrapper_cache_size=32)
    mdm.execute(selective, use_cache=False)  # populates the cache
    before = len(server.request_log)
    warm = mdm.execute(selective, use_cache=False)
    warm_source_fetches = len(server.request_log) - before
    assert warm.pushdown["wrapper_cache"]["hits"] >= 1

    transfer_cut = (
        sel_off["rows_transferred"] / sel_on["rows_transferred"]
        if sel_on["rows_transferred"]
        else float("inf")
    )
    sel_speedup = (
        sel_off["median_ms"] / sel_on["median_ms"] if sel_on["median_ms"] else 0.0
    )
    full_slowdown = (
        full_on["median_ms"] / full_off["median_ms"] if full_off["median_ms"] else 0.0
    )
    gates = {
        "selective_transfer_cut": transfer_cut >= TRANSFER_CUT_FLOOR,
        "selective_not_slower": sel_speedup >= 1.0,
        "non_selective_regression": full_slowdown <= REGRESSION_CEILING,
        "warm_cache_zero_source_fetches": warm_source_fetches == 0,
    }
    return {
        "n_rows": n_rows,
        "runs": runs,
        "selectivity": f"1/{CATEGORIES}",
        "selective": {"pushdown_off": sel_off, "pushdown_on": sel_on},
        "non_selective": {"pushdown_off": full_off, "pushdown_on": full_on},
        "transfer_cut": round(transfer_cut, 4),
        "transfer_cut_floor": TRANSFER_CUT_FLOOR,
        "selective_speedup": round(sel_speedup, 4),
        "non_selective_slowdown": round(full_slowdown, 4),
        "regression_ceiling": REGRESSION_CEILING,
        "warm_cache_source_fetches": warm_source_fetches,
        "gates": gates,
        "pass": all(gates.values()),
    }


def test_pushdown_cuts_transfer_without_regression():
    """Smoke-sized gate run (same checks as the CI entry point)."""
    report = measure(n_rows=800, runs=3)
    assert report["pass"], json.dumps(
        {"gates": report["gates"], "transfer_cut": report["transfer_cut"],
         "non_selective_slowdown": report["non_selective_slowdown"]},
        indent=2,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer rows / fewer runs (the CI mode)",
    )
    parser.add_argument(
        "--out",
        default=str(ARTIFACT_PATH),
        help=f"artifact path (default {ARTIFACT_PATH.name})",
    )
    args = parser.parse_args(argv)

    n_rows, runs = (800, 3) if args.smoke else (2000, 7)
    report = measure(n_rows=n_rows, runs=runs)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    sel, full = report["selective"], report["non_selective"]
    print(
        f"selective walk   off: {sel['pushdown_off']['median_ms']:.1f}ms / "
        f"{sel['pushdown_off']['rows_transferred']} rows — "
        f"on: {sel['pushdown_on']['median_ms']:.1f}ms / "
        f"{sel['pushdown_on']['rows_transferred']} rows "
        f"(transfer cut {report['transfer_cut']:.2f}x, floor {TRANSFER_CUT_FLOOR}x)\n"
        f"non-selective    off: {full['pushdown_off']['median_ms']:.1f}ms — "
        f"on: {full['pushdown_on']['median_ms']:.1f}ms "
        f"(slowdown {report['non_selective_slowdown']:.3f}, "
        f"ceiling {REGRESSION_CEILING})\n"
        f"warm wrapper cache: {report['warm_cache_source_fetches']} source "
        f"fetch(es) on repeat (must be 0)\n"
        f"artifact: {args.out}"
    )
    if not report["pass"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
