"""Ablation G — governing hundreds of analytical processes.

"...scenarios integrating tenths of sources and exploiting them in
hundreds of analytical processes, thus its automation is badly needed"
(paper §1).  This bench saves a battery of analyst queries (all distinct
walks over the football ontology, with and without filters), ships a
breaking release, and measures the automated revalidation pass that
replaces the manual query-by-query triage a GAV stack would require.
"""

import itertools

import pytest

from benchmarks.conftest import emit
from repro.core.walks import FilterCondition
from repro.rdf.namespaces import EX
from repro.scenarios.football import (
    COUNTRY,
    LEAGUE,
    PLAYER,
    TEAM,
    FootballScenario,
)

PLAYER_FEATURES = [EX.playerName, EX.height, EX.weight, EX.rating, EX.preferredFoot]
TEAM_FEATURES = [EX.teamName, EX.shortName]


def build_query_battery(scenario, count: int):
    """``count`` distinct saved queries over the ontology."""
    mdm = scenario.mdm
    combos = []
    # Single-concept player queries with different feature subsets.
    for r in (1, 2, 3):
        for subset in itertools.combinations(PLAYER_FEATURES, r):
            combos.append(list(subset) + [PLAYER])
    # Player-team joins with different team features.
    for team_feature in TEAM_FEATURES:
        for player_feature in PLAYER_FEATURES:
            combos.append([PLAYER, player_feature, TEAM, team_feature])
    # Four-concept chains.
    combos.append([PLAYER, EX.playerName, TEAM, LEAGUE, COUNTRY])
    names = []
    for index in range(count):
        nodes = combos[index % len(combos)]
        walk = mdm.walk_from_nodes(nodes)
        if index % 3 == 0:
            walk = walk.with_filters(FilterCondition(EX.rating, ">=", 60 + index % 30))
        name = f"q{index:03d}"
        mdm.saved_queries.save(name, walk, f"battery query {index}")
        names.append(name)
    return names


@pytest.mark.parametrize("n_queries", [25, 100])
def test_revalidation_pass_after_breaking_release(benchmark, n_queries):
    scenario = FootballScenario.build(anchors_only=True)
    build_query_battery(scenario, n_queries)
    scenario.release_players_v2(retire_v1=False)

    report = benchmark(lambda: scenario.mdm.saved_queries.revalidate())

    ok = sum(1 for entry in report if entry.ok)
    emit(
        f"Ablation G — revalidating {n_queries} saved queries after a "
        "breaking release",
        f"healthy: {ok}/{n_queries}; every player query now unions two "
        "schema versions automatically",
    )
    assert ok == n_queries
    # Queries touching Player doubled their UCQ; team-only ones did not.
    player_queries = [e for e in report if e.ucq_size >= 2]
    assert player_queries  # the union is visible in the report


def test_execution_level_revalidation(benchmark):
    scenario = FootballScenario.build(anchors_only=True)
    build_query_battery(scenario, 20)
    scenario.release_players_v2(retire_v1=False)

    report = benchmark(
        lambda: scenario.mdm.saved_queries.revalidate(execute=True)
    )
    assert all(entry.ok for entry in report)
    assert all(entry.rows is not None for entry in report)


def test_incomplete_migration_detected_at_scale(benchmark):
    """Retiring v1 while w1n is still v1-bound must flag exactly the
    saved queries that reach the nationality wrapper."""
    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm
    mdm.saved_queries.save("rosters", scenario.walk_player_team_names())
    mdm.saved_queries.save("national", scenario.walk_league_nationality())
    scenario.release_players_v2(retire_v1=True)

    report = benchmark(lambda: mdm.saved_queries.revalidate(execute=True))

    by_name = {entry.name: entry for entry in report}
    assert by_name["rosters"].ok
    assert not by_name["national"].ok
    emit(
        "Ablation G — incomplete migration pinpointed",
        f"rosters: OK via {by_name['rosters'].ucq_size} CQs\n"
        f"national: BROKEN — {by_name['national'].error}",
    )
