"""Ablation B — rewriting cost vs walk size (number of concepts).

Chain-shaped walks over 1–12 concepts: the rewriting must expand
identifiers for every concept, find per-concept covers and join them
along the chain.  Execution is also timed, and the result is checked
against the relational ground truth at every size.
"""

import pytest

from benchmarks.conftest import emit
from repro.scenarios.synthetic import SYN, chain_ground_truth, chain_mdm


@pytest.mark.parametrize("n_concepts", [1, 2, 4, 8, 12])
def test_rewriting_scales_with_walk_size(benchmark, n_concepts):
    mdm, concepts, ground, links = chain_mdm(n_concepts, rows_per_concept=20)
    nodes = list(concepts) + [SYN[f"val{i}"] for i in range(n_concepts)]
    walk = mdm.walk_from_nodes(nodes)

    result = benchmark(lambda: mdm.rewriter.rewrite(walk))

    assert result.ucq_size == 1  # one wrapper per concept → single CQ
    assert len(result.projection) == n_concepts
    emit(
        f"Ablation B — walk over {n_concepts} concepts",
        f"plan depth: {result.plan.depth()}; scans: {len(result.plan.scans())}",
    )


@pytest.mark.parametrize("n_concepts", [2, 6, 10])
def test_execution_matches_ground_truth_at_scale(benchmark, n_concepts):
    mdm, concepts, ground, links = chain_mdm(n_concepts, rows_per_concept=30)
    nodes = list(concepts) + [SYN[f"val{i}"] for i in range(n_concepts)]
    walk = mdm.walk_from_nodes(nodes)

    outcome = benchmark(lambda: mdm.execute(walk))

    assert set(outcome.relation.rows) == chain_ground_truth(
        ground, links, n_concepts
    )
