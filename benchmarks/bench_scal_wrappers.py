"""Ablation A — rewriting cost vs number of wrapper versions per source.

The paper claims LAV resolution works "regardless of the number of
wrappers per source"; every accumulated schema version becomes one more
branch of the UCQ.  This bench measures rewriting latency and UCQ size as
a source accumulates 1–16 wrapper releases, and verifies the answer set
never changes (every version serves the same logical data).
"""

import pytest

from benchmarks.conftest import emit
from repro.scenarios.synthetic import SYN, versioned_concept_mdm


@pytest.mark.parametrize("n_versions", [1, 2, 4, 8, 16])
def test_rewriting_scales_with_wrapper_versions(benchmark, n_versions):
    mdm, concept = versioned_concept_mdm(n_versions, rows=50)
    walk = mdm.walk_from_nodes([concept, SYN.entityVal])

    result = benchmark(lambda: mdm.rewriter.rewrite(walk))

    # One CQ per version — linear growth, exactly one cover each.
    assert result.ucq_size == n_versions
    outcome = mdm.execute(walk)
    assert len(outcome.relation) == 50  # set semantics collapse versions
    emit(
        f"Ablation A — {n_versions} wrapper versions",
        f"UCQ size: {result.ucq_size}; result rows: {len(outcome.relation)}",
    )


def test_execution_scales_with_wrapper_versions(benchmark):
    mdm, concept = versioned_concept_mdm(8, rows=200)
    walk = mdm.walk_from_nodes([concept, SYN.entityVal])
    outcome = benchmark(lambda: mdm.execute(walk))
    assert len(outcome.relation) == 200
