"""Ablation E — accuracy and cost of semi-automatic integration.

The paper's value proposition for stewards is assistance: "data stewards
are provided with mechanisms to semi-automatically integrate new sources
and accommodate schema evolution".  This bench quantifies the two
assists this reproduction implements beyond attribute reuse:

- **signature inference** from a live endpoint (time per bootstrap);
- **name-based link suggestions** — measured as top-1 accuracy over a
  synthetic battery of attribute-naming conventions (snake_case,
  camelCase, abbreviations, prefixes) against the football ontology;
- **rename detection** in signature diffs under value-overlap evidence.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.diffing import diff_signatures
from repro.core.matching import suggest_links
from repro.scenarios.football import COUNTRY, LEAGUE, PLAYER, TEAM, FootballScenario
from repro.sources.evolution import EndpointVersion, release_version
from repro.sources.inference import infer_signature

#: (attribute name as a source would spell it, expected feature local name)
NAMING_BATTERY = [
    ("player_id", "playerId"),
    ("playerId", "playerId"),
    ("player_name", "playerName"),
    ("pName", "playerName"),
    ("height", "height"),
    ("weight", "weight"),
    ("rating", "rating"),
    ("preferred_foot", "preferredFoot"),
    ("team_id", "teamId"),
    ("team_name", "teamName"),
    ("short_name", "shortName"),
    ("league_id", "leagueId"),
    ("league_name", "leagueName"),
    ("country_id", "countryId"),
    ("country_name", "countryName"),
    ("country_code", "countryCode"),
]


def test_signature_inference_speed(benchmark, anchors_scenario):
    profile = benchmark(
        lambda: infer_signature(anchors_scenario.server, "/v1/players")
    )
    assert "name" in profile.attribute_names
    assert profile.record_count == 6


def test_link_suggestion_accuracy(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm
    release_version(
        anchors_scenario.server,
        EndpointVersion(
            "battery",
            1,
            "json",
            lambda: [{name: 1 for name, _ in NAMING_BATTERY}],
        ),
    )
    mdm.register_source("battery")
    registration, _ = mdm.bootstrap_wrapper(
        "battery", "wBattery", anchors_scenario.server, "/v1/battery"
    )

    def run_suggestions():
        return mdm.suggest_links_for("wBattery")

    suggestions = benchmark(run_suggestions)
    by_name = {s.attribute_name: s for s in suggestions}
    hits = 0
    lines = []
    for attribute, expected in NAMING_BATTERY:
        best = by_name[attribute].best
        got = best.local_name() if best is not None else "-"
        correct = got == expected
        hits += correct
        lines.append(f"  {attribute:>16} -> {got:<16} {'✓' if correct else '✗ want ' + expected}")
    accuracy = hits / len(NAMING_BATTERY)
    emit(
        f"Ablation E — link suggestion top-1 accuracy: {accuracy:.0%}",
        "\n".join(lines),
    )
    assert accuracy >= 0.8  # the assist is useful, not perfect — by design


def test_rename_detection_with_value_evidence(benchmark):
    old_rows = [{"id": i, "name": f"player {i}", "team": i % 5} for i in range(50)]
    new_rows = [{"id": i, "displayName": f"player {i}", "team": i % 5} for i in range(50)]

    def run_diff():
        return diff_signatures(
            ["id", "name", "team"],
            ["id", "displayName", "team"],
            old_rows=old_rows,
            new_rows=new_rows,
        )

    diff = benchmark(run_diff)
    assert diff.renames[0][:2] == ("name", "displayName")
    assert diff.renames[0][2] == 1.0  # value overlap is decisive
