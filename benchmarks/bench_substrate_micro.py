"""Ablation D — substrate micro-benchmarks backing the system numbers.

The interactive behaviour of MDM rests on the substrates: triple-store
insert/match throughput, SPARQL BGP evaluation, the document store's
filtered scans and the relational hash join.  These micro-benchmarks
characterize each at representative sizes.
"""

import pytest

from repro.docstore.store import DocumentStore
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX, RDF
from repro.rdf.terms import IRI, Literal
from repro.relational.algebra import EquiJoin, Scan
from repro.relational.executor import Executor
from repro.relational.relation import Relation
from repro.sparql.evaluator import evaluate_text


def build_player_graph(n: int) -> Graph:
    g = Graph()
    for i in range(n):
        player = EX[f"p{i}"]
        g.add((player, RDF.type, EX.Player))
        g.add((player, EX.name, Literal(f"player {i}")))
        g.add((player, EX.height, Literal(150.0 + i % 60)))
        g.add((player, EX.playsFor, EX[f"t{i % (n // 10 + 1)}"]))
    return g


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_triple_insert_throughput(benchmark, n):
    def build():
        return build_player_graph(n)

    g = benchmark(build)
    assert len(g) == 4 * n


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_indexed_pattern_match(benchmark, n):
    g = build_player_graph(n)

    def match():
        return sum(1 for _ in g.triples((None, RDF.type, EX.Player)))

    count = benchmark(match)
    assert count == n


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_sparql_bgp_join(benchmark, n):
    ds = Dataset()
    ds.namespaces.bind("ex", EX)
    graph = build_player_graph(n)
    ds.default_graph.add_all(iter(graph))
    query = (
        "PREFIX ex: <http://www.essi.upc.edu/example/>\n"
        "SELECT ?name WHERE { ?p a ex:Player ; ex:name ?name ; "
        "ex:height ?h FILTER(?h > 190) }"
    )

    result = benchmark(lambda: evaluate_text(query, ds))
    assert len(result) > 0


@pytest.mark.parametrize("n", [1_000, 20_000])
def test_relational_hash_join(benchmark, n):
    left = Relation.from_dicts(
        [{"id": i, "v": f"l{i}"} for i in range(n)], name="l"
    )
    right = Relation.from_dicts(
        [{"ref": i % (n // 2), "w": f"r{i}"} for i in range(n)], name="r"
    )
    executor = Executor({"l": left, "r": right})
    plan = EquiJoin(Scan("l"), Scan("r"), (("id", "ref"),))

    result = benchmark(lambda: executor.execute(plan))
    assert len(result) == n


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_docstore_filtered_scan(benchmark, n):
    store = DocumentStore()
    releases = store.collection("releases")
    releases.insert_many(
        {"source": f"s{i % 20}", "version": i % 7, "breaking": i % 3 == 0}
        for i in range(n)
    )

    def scan():
        return releases.count({"source": "s3", "version": {"$gte": 3}})

    count = benchmark(scan)
    assert count > 0


@pytest.mark.parametrize("n", [10_000])
def test_relational_aggregate(benchmark, n):
    from repro.relational.algebra import Aggregate

    rows = Relation.from_dicts(
        [{"team": f"t{i % 40}", "rating": i % 100} for i in range(n)],
        name="players",
    )
    executor = Executor({"players": rows})
    plan = Aggregate(
        Scan("players"),
        ("team",),
        (("count", "*", "n"), ("avg", "rating", "avgR")),
    )

    result = benchmark(lambda: executor.execute(plan))
    assert len(result) == 40


@pytest.mark.parametrize("n", [10_000])
def test_sparql_aggregation(benchmark, n):
    ds = Dataset()
    g = ds.default_graph
    for i in range(n):
        g.add((EX[f"p{i}"], EX.team, Literal(f"t{i % 40}")))
    query = (
        "PREFIX ex: <http://www.essi.upc.edu/example/>\n"
        "SELECT ?team (COUNT(*) AS ?n) WHERE { ?p ex:team ?team } "
        "GROUP BY ?team"
    )

    result = benchmark(lambda: evaluate_text(query, ds))
    assert len(result) == 40


def test_trig_snapshot_roundtrip(benchmark, ):
    from repro.rdf.trig import parse_trig, serialize_trig
    from repro.scenarios.football import FootballScenario

    dataset = FootballScenario.build(anchors_only=True).mdm.dataset

    def roundtrip():
        return parse_trig(serialize_trig(dataset))

    restored = benchmark(roundtrip)
    assert len(restored) == len(dataset)
