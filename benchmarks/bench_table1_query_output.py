"""Table 1 — sample output for the exemplary query.

Paper artifact::

    ex:teamName        ex:playerName
    FC Barcelona       Lionel Messi
    Bayern Munich      Robert Lewandowski
    Manchester United  Zlatan Ibrahimovic

We execute the Figure 8 OMQ end-to-end (wrapper fetch over the mock REST
APIs → temp relations → UCQ plan) and pin exactly those three pairs; the
benchmark times the complete execution path.
"""

from benchmarks.conftest import emit


def test_table1_exemplary_query_output(benchmark, anchors_scenario):
    mdm = anchors_scenario.mdm
    walk = anchors_scenario.walk_player_team_names()

    outcome = benchmark(lambda: mdm.execute(walk))

    emit("Table 1 — sample output for the exemplary query", outcome.to_table())

    rows = set(outcome.relation.rows)
    # The paper's three sample rows, exactly.
    assert ("Lionel Messi", "FC Barcelona") in rows
    assert ("Robert Lewandowski", "Bayern Munich") in rows
    assert ("Zlatan Ibrahimovic", "Manchester United") in rows
    # Set semantics: no duplicates.
    assert len(outcome.relation.rows) == len(rows)


def test_table1_at_generated_scale(benchmark, generated_scenario):
    mdm = generated_scenario.mdm
    walk = generated_scenario.walk_player_team_names()

    outcome = benchmark(lambda: mdm.execute(walk))

    truth = {
        (p.name, generated_scenario.data.team_by_id(p.team_id).name)
        for p in generated_scenario.data.players
    }
    assert set(outcome.relation.rows) == truth
