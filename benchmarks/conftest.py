"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one artifact of the paper (a figure,
the table, or a demo scenario) and times a representative operation with
pytest-benchmark.  Artifacts are printed with ``-s`` so the harness output
can be diffed against the paper; assertions pin the structural facts
(concept/feature counts, mapping intersections, result rows).
"""

import pytest

from repro.scenarios.football import FootballScenario


@pytest.fixture(scope="session")
def anchors_scenario():
    """The motivational use case restricted to the paper's exact entities."""
    return FootballScenario.build(anchors_only=True)


@pytest.fixture(scope="session")
def generated_scenario():
    """The motivational use case at generated scale (seeded)."""
    return FootballScenario.build(seed=2018)


def emit(title: str, body: str) -> None:
    """Print one artifact block (visible with ``pytest -s``)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
