"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one artifact of the paper (a figure,
the table, or a demo scenario) and times a representative operation with
pytest-benchmark.  Artifacts are printed with ``-s`` so the harness output
can be diffed against the paper; assertions pin the structural facts
(concept/feature counts, mapping intersections, result rows).

At session end the harness additionally runs the reference OMQ (league /
nationality) under the observability layer and writes
``benchmarks/BENCH_obs.json`` — per-phase rewrite latency, executor
operator histograms and wrapper fetch statistics — so successive PRs
leave a comparable perf trajectory.
"""

import json
from pathlib import Path

import pytest

from repro.obs import capture, timed
from repro.scenarios.football import FootballScenario

BENCH_OBS_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"

#: How many traced executions feed the histograms in BENCH_obs.json.
_OBS_RUNS = 5


@pytest.fixture(scope="session")
def anchors_scenario():
    """The motivational use case restricted to the paper's exact entities."""
    return FootballScenario.build(anchors_only=True)


@pytest.fixture(scope="session")
def generated_scenario():
    """The motivational use case at generated scale (seeded)."""
    return FootballScenario.build(seed=2018)


def emit(title: str, body: str) -> None:
    """Print one artifact block (visible with ``pytest -s``)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@timed("mdm_bench_obs_run_seconds", "One traced reference-OMQ execution.",
       query="league_nationality")
def _traced_reference_query(scenario):
    walk = scenario.walk_league_nationality()
    return scenario.mdm.execute(walk, analyze=True)


def _obs_summary() -> dict:
    """Run the reference OMQ under capture() and shape the registry dump."""
    scenario = FootballScenario.build(anchors_only=True)
    with capture() as (tracer, registry):
        for _ in range(_OBS_RUNS):
            outcome = _traced_reference_query(scenario)
        root = tracer.recent(1)[0]
    snapshot = registry.snapshot()

    def series(name: str) -> list:
        return snapshot.get(name, {}).get("series", [])

    rewrite_phases = {
        s["labels"]["phase"]: {
            "count": s["count"],
            "mean_s": s["mean"],
            "sum_s": s["sum"],
        }
        for s in series("mdm_rewrite_phase_seconds")
    }
    operators = {
        s["labels"]["op"]: {
            "count": s["count"],
            "mean_s": s["mean"],
            "sum_s": s["sum"],
        }
        for s in series("mdm_executor_operator_seconds")
    }
    wrappers = {
        s["labels"]["wrapper"]: {
            "count": s["count"],
            "mean_s": s["mean"],
            "sum_s": s["sum"],
        }
        for s in series("mdm_wrapper_fetch_seconds")
    }
    return {
        "query": "league_nationality",
        "runs": _OBS_RUNS,
        "ucq_size": outcome.rewrite.ucq_size,
        "rows": len(outcome.relation.rows),
        "execute_mean_s": next(
            (s["mean"] for s in series("mdm_execute_seconds")), None
        ),
        "rewrite_phases": rewrite_phases,
        "executor_operators": operators,
        "wrapper_fetches": wrappers,
        "last_span_tree": root.to_dict(),
    }


def pytest_sessionfinish(session, exitstatus):
    """Persist the observability summary for the perf trajectory."""
    if getattr(session.config, "workerinput", None) is not None:
        return  # only the controller writes the artifact under xdist
    try:
        summary = _obs_summary()
    except Exception as exc:  # noqa: BLE001 — best-effort artifact
        summary = {"error": f"{type(exc).__name__}: {exc}"}
    BENCH_OBS_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
