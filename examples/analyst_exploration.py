#!/usr/bin/env python3
"""Analyst exploration: filters, raw SPARQL and impact analysis.

The on-site demo "encourage[s] participants to propose their queries of
interest".  This example plays that audience: ad-hoc filtered walks, the
same questions posed as raw SPARQL (the expert path), and finally the
steward-side impact report that tells you what a source's next release
would touch.

Run:  python examples/analyst_exploration.py
"""

from repro.core.walks import FilterCondition
from repro.rdf.namespaces import EX
from repro.scenarios import FootballScenario
from repro.scenarios.football import PLAYER


def main() -> None:
    scenario = FootballScenario.build(seed=2018)  # generated scale
    mdm = scenario.mdm

    print("=" * 72)
    print("Analyst exploration over the football ecosystem "
          f"({len(scenario.data.players)} players, "
          f"{len(scenario.data.teams)} teams)")
    print("=" * 72)

    print("\n[1] graphical walk + filter: elite players (rating >= 90)\n")
    walk = mdm.walk_from_nodes([PLAYER, EX.playerName, EX.rating]).with_filters(
        FilterCondition(EX.rating, ">=", 90)
    )
    outcome = mdm.execute(walk)
    print(outcome.to_table())
    print("\n    pushed into the plan as:", outcome.rewrite.pretty()[:100], "…")

    print("\n[2] the same analyst, now writing SPARQL directly:\n")
    sparql = """
    PREFIX ex: <http://www.essi.upc.edu/example/>
    PREFIX sc: <http://schema.org/>
    SELECT ?playerName ?teamName WHERE {
        ?p rdf:type ex:Player .
        ?p ex:playerName ?playerName .
        ?p ex:height ?h .
        ?p ex:hasTeam ?t .
        ?t rdf:type sc:SportsTeam .
        ?t ex:teamName ?teamName .
        FILTER(?h >= 190)
    }
    """
    outcome2 = mdm.sparql_query(sparql)
    print(outcome2.to_table())

    print("\n[3] combining both: left-footed players in Spain's league\n")
    walk3 = scenario.walk_league_nationality().with_filters(
        FilterCondition(EX.preferredFoot, "=", "left")
    )
    outcome3 = mdm.execute(walk3)
    print(outcome3.to_table())

    print("\n[4] steward-side impact analysis before the next release:\n")
    for source in ("players", "teams"):
        report = mdm.impact_of_source(source)
        print(f"    {source}: wrappers={report['wrappers']}, "
              f"queries affected={report['affected_queries']}, "
              f"exclusive features={len(report['exclusively_covered_features'])}")

    print("\n[5] query log accumulated this session:")
    for entry in mdm.metadata.collection("queries").find():
        print(f"    - {entry['walk']} (UCQ size {entry['ucq_size']})")


if __name__ == "__main__":
    main()
