#!/usr/bin/env python3
"""A day in the life: the complete Big Data integration lifecycle.

One narrated session exercising every MDM capability in sequence:

1. system setup (UML → global graph, sources, wrappers, LAV mappings);
2. analysts save their queries (filters, optional features, raw SPARQL);
3. the steward checks the impact report before a release lands;
4. two breaking releases ship; accommodation is semi-automatic;
5. revalidation proves every saved query survived; provenance shows what
   each schema version contributes;
6. the whole state is snapshotted and restored.

Run:  python examples/full_lifecycle.py
"""

import tempfile

from repro.core.walks import FilterCondition
from repro.rdf.namespaces import EX
from repro.scenarios import FootballScenario
from repro.scenarios.football import PLAYER, TEAM
from repro.service import attach_wrappers, load_mdm, save_mdm


def main() -> None:
    print("=" * 72)
    print("MDM — a day in the life of a governed Big Data ecosystem")
    print("=" * 72)

    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm

    print("\n[1] morning: the ecosystem is up.")
    print("   ", mdm.summary())

    print("\n[2] analysts register their processes:")
    registry = mdm.saved_queries
    registry.save("rosters", scenario.walk_player_team_names(),
                  "player-team rosters")
    registry.save(
        "giants",
        mdm.walk_from_nodes([PLAYER, EX.playerName])
        .with_filters(FilterCondition(EX.height, ">", 190)),
        "players above 190cm",
    )
    registry.save(
        "profiles",
        mdm.walk_from_nodes([PLAYER, EX.playerName]).with_optional(EX.rating),
        "names with rating when known",
    )
    from repro.core.sparql_frontend import walk_from_sparql

    registry.save(
        "national",
        scenario.walk_league_nationality(),
        "players in their national league",
    )
    for name in registry.names():
        print(f"    - {name}: {registry.get(name).description}")

    print("\n[3] the Players API announces a breaking v2; impact check:")
    report = mdm.impact_of_source("players")
    print(f"    wrappers: {report['wrappers']}; "
          f"queries at risk: {report['affected_queries']}; "
          f"exclusive features: {len(report['exclusively_covered_features'])}")

    print("\n[4] v2 ships (rename + nesting + retyping); accommodation:")
    scenario.release_players_v2(retire_v1=False)
    suggestion_was_complete = True  # release_players_v2 applied it
    release = mdm.governance.latest("players")
    print(f"    release #{release.sequence} registered wrapper "
          f"{release.wrapper_name}; changes: {list(release.changes)}")
    print(f"    mapping carried over automatically: {suggestion_was_complete}")

    print("\n[5] revalidation — all analytical processes still healthy:")
    for entry in registry.revalidate(execute=True):
        print(f"    {'OK    ' if entry.ok else 'BROKEN'} {entry.name} "
              f"(UCQ {entry.ucq_size}, rows {entry.rows})")

    print("\n[6] provenance of the rosters query (who serves what now):")
    outcome = registry.run("rosters")
    for entry in outcome.provenance():
        print(f"    {entry['cq']}: {entry['rows']} rows "
              f"({entry['exclusive_rows']} exclusive)")

    print("\n[7] nightly snapshot and restore drill:")
    with tempfile.TemporaryDirectory() as directory:
        save_mdm(mdm, directory)
        restored = load_mdm(directory)
        attach_wrappers(restored, mdm.wrappers.values())
        health = restored.saved_queries.health_summary()
        print(f"    restored registry health: {health}")
        again = restored.saved_queries.run("giants")
        print("    'giants' on the restored system:")
        for line in again.to_table().splitlines():
            print("      " + line)


if __name__ == "__main__":
    main()
