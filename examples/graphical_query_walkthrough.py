#!/usr/bin/env python3
"""Walkthrough of one OMQ, inspecting every intermediate artifact.

Shows what the MDM frontend renders at each step of paper §2.4: the walk
(as GraphViz DOT, standing in for the D3 canvas), its SPARQL translation,
the three rewriting phases, the relational algebra, the SQL that would be
shipped to the federated SQLite step, and the service-layer JSON the
frontend would actually receive.

Run:  python examples/graphical_query_walkthrough.py
"""

from repro.relational.sql import to_sql
from repro.scenarios import FootballScenario
from repro.scenarios.football import EX, PLAYER, TEAM
from repro.service import MdmService


def main() -> None:
    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm

    print("=" * 72)
    print("Posing an OMQ in MDM — every intermediate artifact")
    print("=" * 72)

    print("\n[1] the analyst circles nodes on the global graph canvas:")
    nodes = [PLAYER, EX.playerName, EX.height, TEAM, EX.teamName]
    for node in nodes:
        print(f"    - {mdm.global_graph.graph.qname(node)}")
    walk = mdm.walk_from_nodes(nodes)

    print("\n[2] the walk as GraphViz DOT (the D3 canvas substitute):\n")
    print(walk.to_dot(mdm.global_graph))

    print("\n[3] automatic SPARQL translation:\n")
    print(walk.to_sparql(mdm.global_graph))

    result = mdm.rewrite(walk)
    print("\n[4] the three-phase LAV rewriting:")
    print(result.explain())

    print("\n[5] relational algebra over the wrappers:\n")
    print("    " + result.pretty())

    print("\n[6] equivalent SQL for the federated execution step:\n")
    print("    " + to_sql(result.plan))

    print("\n[7] execution:\n")
    outcome = mdm.execute(walk)
    print(outcome.to_table())

    print("\n[8] the same query through the REST service layer:")
    service = MdmService(mdm)
    response = service.request(
        "POST", "/query", {"nodes": [n.value for n in nodes]}
    )
    print(f"    HTTP {response.status}; body keys: {sorted(response.body)}")
    print(f"    ucq_size={response.body['ucq_size']}, "
          f"columns={response.body['columns']}, "
          f"rows={len(response.body['rows'])}")


if __name__ == "__main__":
    main()
