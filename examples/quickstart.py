#!/usr/bin/env python3
"""Quickstart: the paper's motivational use case end-to-end.

Builds the four football REST APIs (players JSON, teams XML, leagues
JSON, countries CSV), the global graph from the Figure 1 UML, the
wrappers and LAV mappings of Figures 6-7, then poses the Figure 8 OMQ
("player names and their team names") and prints the generated SPARQL,
the relational algebra over the wrappers, and the Table 1 result.

Run:  python examples/quickstart.py
"""

from repro.scenarios import FootballScenario


def main() -> None:
    print("=" * 72)
    print("MDM quickstart — motivational use case (EDBT 2018 demo)")
    print("=" * 72)

    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm

    print("\n[1] system state after setup (global graph, sources, mappings):")
    for key, value in mdm.summary().items():
        print(f"    {key:>9}: {value}")

    print("\n[2] registered wrapper signatures (Figure 6):")
    for wrapper in mdm.source_graph.wrappers():
        print(f"    {mdm.source_graph.signature_of(wrapper)}")

    walk = scenario.walk_player_team_names()
    print(f"\n[3] the analyst draws a walk: {walk.describe(mdm.global_graph)}")

    outcome = mdm.execute(walk)
    print("\n[4] automatically generated SPARQL (Figure 8, top right):\n")
    print("    " + outcome.rewrite.sparql.replace("\n", "\n    "))

    print("\n[5] LAV rewriting to relational algebra (Figure 8, bottom right):\n")
    print("    " + outcome.rewrite.pretty())

    print("\n[6] three-phase derivation:")
    print("    " + outcome.rewrite.explain().replace("\n", "\n    "))

    print("\n[7] tabular result (Table 1):\n")
    print(outcome.to_table())

    print("\n[8] the intro query: players that play in a league of their")
    print("    nationality (four concepts joined through identifiers):\n")
    outcome2 = mdm.execute(scenario.walk_league_nationality())
    print(outcome2.to_table())


if __name__ == "__main__":
    main()
