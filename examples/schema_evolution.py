#!/usr/bin/env python3
"""Governance of evolution: the demo's third scenario, with a GAV foil.

The Players API ships a breaking v2 (``name`` renamed, physique fields
nested, ids stringified).  Under MDM's LAV mappings the previously
defined OMQ keeps working — the rewriting unions both schema versions.
Under a GAV system the same release crashes the query, and fixing it
requires hand-migrating every definition that touches the source.

Run:  python examples/schema_evolution.py
"""

from repro.core.errors import GavUnfoldingError
from repro.scenarios import FootballScenario


def main() -> None:
    print("=" * 72)
    print("Governance of evolution — LAV (MDM) vs GAV (baseline)")
    print("=" * 72)

    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm
    walk = scenario.walk_player_team_names()
    gav = scenario.build_gav()

    print("\n[1] before the release, both systems answer the query:")
    lav_before = mdm.execute(walk)
    gav_before = gav.execute(walk)
    print(f"    LAV: {len(lav_before.relation)} rows "
          f"({lav_before.rewrite.ucq_size} CQ)")
    print(f"    GAV: {len(gav_before)} rows (single unfolding)")

    print("\n[2] the provider ships Players API v2 with breaking changes:")
    for change in scenario.V2_CHANGES:
        print(f"    - {change.describe()}")
    scenario.release_players_v2(retire_v1=True)
    release = mdm.governance.latest("players")
    assert release is not None
    print(f"    governance log: release #{release.sequence} "
          f"({release.kind}, wrapper {release.wrapper_name})")

    print("\n[3] the steward accommodates the release in MDM:")
    print("    attribute reuse meant the mapping suggestion was complete —")
    print("    no manual sameAs links were needed.")

    print("\n[4] re-running the SAME query:")
    lav_after = mdm.execute(walk, on_wrapper_error="skip")
    print(f"    LAV: {len(lav_after.relation)} rows via "
          f"{lav_after.rewrite.ucq_size} CQs "
          f"(skipped retired wrappers: {list(lav_after.skipped_wrappers)})")
    print("    rewritten algebra now unions the schema versions:")
    print("      " + lav_after.rewrite.pretty())
    try:
        gav.execute(walk)
        print("    GAV: unexpectedly survived?!")
    except GavUnfoldingError as exc:
        print(f"    GAV: CRASHED — {exc}")

    print("\n[5] repairing GAV by hand:")
    cost = gav.migration_cost("w1")
    print(f"    definitions referencing the broken wrapper: {cost}")
    translation = {a: a for a in ("id", "pName", "height", "weight",
                                  "score", "foot", "teamId")}
    rewritten = gav.migrate_wrapper(
        "w1", scenario.mdm.wrappers["w1v2"], translation
    )
    print(f"    hand-migrated definitions: {rewritten}")
    repaired = gav.execute(walk)
    print(f"    GAV after manual repair: {len(repaired)} rows")

    print("\n[6] results stay identical across the evolution:")
    assert set(lav_after.relation.rows) == set(lav_before.relation.rows)
    print(lav_after.to_table())


if __name__ == "__main__":
    main()
