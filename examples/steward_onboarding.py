#!/usr/bin/env python3
"""Steward onboarding: integrating a brand-new source semi-automatically.

A new Stadiums API appears. The steward: (1) points MDM at the endpoint —
the wrapper signature is inferred from a sample; (2) reviews the ranked
sameAs suggestions MDM derives from name similarity; (3) confirms them
into a LAV mapping; (4) immediately queries across the new source. Then
the API ships a v2 with a renamed field, and the signature diff
pinpoints the rename before anything breaks.

Run:  python examples/steward_onboarding.py
"""

from repro.rdf.namespaces import EX
from repro.scenarios import FootballScenario
from repro.scenarios.football import RELATIONS, TEAM
from repro.sources.evolution import EndpointVersion, RenameField, release_version


def main() -> None:
    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm

    print("=" * 72)
    print("Steward onboarding — a new Stadiums API joins the ecosystem")
    print("=" * 72)

    stadium_rows = [
        {"id": 101, "stadium_name": "Camp Nou", "capacity": 99354, "team_id": 25},
        {"id": 102, "stadium_name": "Allianz Arena", "capacity": 75000, "team_id": 26},
        {"id": 103, "stadium_name": "Old Trafford", "capacity": 74310, "team_id": 27},
    ]
    stadiums_v1 = EndpointVersion("stadiums", 1, "json", lambda: stadium_rows)
    release_version(scenario.server, stadiums_v1)

    print("\n[1] extend the global graph with the Stadium concept:")
    STADIUM = EX.Stadium
    mdm.add_concept(STADIUM, "Stadium")
    mdm.add_identifier(EX.stadiumId, STADIUM)
    mdm.add_feature(EX.stadiumName, STADIUM)
    mdm.add_feature(EX.capacity, STADIUM)
    mdm.relate(TEAM, EX.playsAt, STADIUM)
    print("    Stadium(stadiumId, stadiumName, capacity); Team --playsAt--> Stadium")

    print("\n[2] bootstrap the wrapper — signature inferred from a sample:\n")
    mdm.register_source("stadiums", "Stadiums API")
    registration, profile = mdm.bootstrap_wrapper(
        "stadiums", "wStad", scenario.server, "/v1/stadiums"
    )
    print("    " + profile.describe().replace("\n", "\n    "))
    print(f"\n    registered: {registration.signature}")

    print("\n[3] MDM suggests sameAs links by name similarity:\n")
    suggestions = mdm.suggest_links_for("wStad", concepts=[STADIUM, TEAM])
    confirmed = {}
    for suggestion in suggestions:
        ranked = ", ".join(
            f"{feature.local_name()} ({score:.2f})"
            for feature, score in suggestion.candidates
        )
        print(f"    {suggestion.attribute_name:>13}: {ranked or '(no candidate)'}")
        if suggestion.best is not None:
            confirmed[suggestion.attribute_name] = suggestion.best
    # The steward reviews: "id" means the stadium's own id here.
    confirmed["id"] = EX.stadiumId

    print("\n[4] the steward confirms, and the LAV mapping is defined:")
    view = mdm.define_mapping(
        "wStad",
        confirmed,
        edges=[(TEAM, EX.playsAt, STADIUM)],
    )
    print(f"    named graph covers {sorted(c.local_name() for c in view.concepts)}")

    print("\n[5] cross-source query: players with their stadium capacity\n")
    walk = mdm.walk_from_nodes(
        [EX.Player, EX.playerName, TEAM, STADIUM, EX.stadiumName, EX.capacity]
    )
    outcome = mdm.execute(walk)
    print(outcome.to_table())

    print("\n[6] v2 renames stadium_name -> arena; the diff catches it:\n")
    stadiums_v2 = stadiums_v1.successor([RenameField("stadium_name", "arena")])
    release_version(scenario.server, stadiums_v2)
    registration2, _ = mdm.bootstrap_wrapper(
        "stadiums", "wStad2", scenario.server, "/v2/stadiums"
    )
    diff = mdm.diff_wrapper_versions("wStad", "wStad2")
    for line in diff.describe():
        print(f"    {line}")
    print(f"    breaking: {diff.is_breaking}")
    print(f"    attributes reused from v1: {list(registration2.reused_attributes)}")


if __name__ == "__main__":
    main()
