#!/usr/bin/env python3
"""The SUPERSEDE-style use case: feedback + monitoring integration.

A synthetic stand-in for the paper's second on-site demo: four sources
(Twitter feedback, app reviews, QoS monitoring, product catalog), two
scripted evolution rounds, analytics walks joining feedback and metrics
to products, and a persistence round-trip (the TDB/Mongo snapshot).

Run:  python examples/supersede.py
"""

import tempfile

from repro.scenarios import SupersedeScenario
from repro.service import attach_wrappers, load_mdm, save_mdm


def main() -> None:
    print("=" * 72)
    print("SUPERSEDE-style scenario — feedback & monitoring under evolution")
    print("=" * 72)

    scenario = SupersedeScenario.build()
    mdm = scenario.mdm

    print("\n[1] ecosystem:", mdm.summary())

    print("\n[2] feedback sentiment per product:")
    outcome = mdm.execute(scenario.walk_feedback_by_product())
    print(f"    {len(outcome.relation)} rows via {outcome.rewrite.ucq_size} CQ")
    print("\n".join("    " + line
                    for line in outcome.to_table().splitlines()[:8]))
    print("    ...")

    print("\n[3] Twitter ships v2 (body rename + nested sentiment);")
    print("    monitoring ships v2 (metric field renames, v1 retired):")
    scenario.release_twitter_v2()
    scenario.release_monitoring_v2(retire_v1=True)
    for release in mdm.governance.history():
        flag = "BREAKING" if release.is_breaking else "ok"
        print(f"    #{release.sequence} {release.source_name:>10} "
              f"{release.wrapper_name:>11} {release.kind:<10} [{flag}]")

    print("\n[4] the same analytics keep running:")
    feedback = mdm.execute(scenario.walk_feedback_by_product())
    print(f"    feedback: {len(feedback.relation)} rows via "
          f"{feedback.rewrite.ucq_size} CQs (both Twitter versions unioned)")
    metrics = mdm.execute(scenario.walk_metrics_by_product(),
                          on_wrapper_error="skip")
    print(f"    metrics:  {len(metrics.relation)} rows "
          f"(skipped retired: {list(metrics.skipped_wrappers)})")

    print("\n[5] snapshot & restore (TDB/Mongo substitute):")
    with tempfile.TemporaryDirectory() as directory:
        save_mdm(mdm, directory)
        restored = load_mdm(directory)
        attach_wrappers(restored, mdm.wrappers.values())
        again = restored.execute(scenario.walk_reviews())
        print(f"    restored MDM answers the reviews walk: "
              f"{len(again.relation)} rows")
        print(f"    restored summary: {restored.summary()}")


if __name__ == "__main__":
    main()
