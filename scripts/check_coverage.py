#!/usr/bin/env python3
"""Coverage gate for the chaos subsystem (CI ``coverage`` job).

The failpoint registry and the readers-writer lock are the two pieces
whose untested branches bite hardest — a silent hole in either shows up
as a flaky production incident, not a failing assertion.  This gate
reads a ``coverage.json`` report (``pytest --cov=repro
--cov-report=json:coverage.json``) and fails unless every measured file
under ``src/repro/chaos/`` and ``src/repro/core/locking.py`` has line
coverage of at least 90%.

Usage:
    python scripts/check_coverage.py coverage.json

Exits 0 when every gated file clears the threshold, 1 with a per-file
listing otherwise (including gated files missing from the report —
"never imported" must not pass the gate).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

THRESHOLD = 90.0

#: Path fragments (as they appear in coverage.json keys) under the gate.
#: Kept prefix-free of ``src/`` — the keys vary with how pytest was
#: invoked (``src/repro/…`` vs ``repro/…``).
GATED_PREFIXES = ("repro/chaos/",)
GATED_FILES = ("repro/core/locking.py",)


def normalize(path: str) -> str:
    return path.replace("\\", "/")


def is_gated(path: str) -> bool:
    path = normalize(path)
    return path.endswith(GATED_FILES) or any(
        prefix in path for prefix in GATED_PREFIXES
    )


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    report_path = Path(argv[1])
    if not report_path.exists():
        print(f"coverage report not found: {report_path}")
        return 1
    report = json.loads(report_path.read_text())
    files = report.get("files", {})

    rows = []
    seen_chaos = False
    seen_lock = False
    for path, data in sorted(files.items()):
        if not is_gated(path):
            continue
        norm = normalize(path)
        seen_chaos = seen_chaos or any(p in norm for p in GATED_PREFIXES)
        seen_lock = seen_lock or norm.endswith(GATED_FILES)
        percent = float(data["summary"]["percent_covered"])
        rows.append((path, percent))

    failed = False
    for path, percent in rows:
        verdict = "ok" if percent >= THRESHOLD else "FAIL"
        if percent < THRESHOLD:
            failed = True
        print(f"{verdict:4s}  {percent:6.2f}%  {path}")

    if not seen_chaos:
        print("FAIL  src/repro/chaos/ is absent from the coverage report")
        failed = True
    if not seen_lock:
        print("FAIL  src/repro/core/locking.py is absent from the coverage report")
        failed = True

    if failed:
        print(f"\ncoverage gate: at least one gated file below {THRESHOLD:.0f}%")
        return 1
    print(f"\ncoverage gate: all {len(rows)} gated files >= {THRESHOLD:.0f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
