#!/usr/bin/env python3
"""Fail if compiled-Python artifacts are tracked by git.

``__pycache__`` directories and ``.pyc`` files snuck into one commit
already; this check keeps them from coming back.  Run directly::

    python scripts/check_repo_hygiene.py

or through the pytest collection gate in ``tests/test_repo_hygiene.py``.
Exits 0 when clean, 1 with an offending-path listing otherwise.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Tracked-path fragments that must never appear in the index.
FORBIDDEN_FRAGMENTS = ("__pycache__/",)
FORBIDDEN_SUFFIXES = (".pyc", ".pyo")


def tracked_files(repo_root: Path = REPO_ROOT) -> list:
    """All paths in the git index (empty list when git is unavailable)."""
    try:
        completed = subprocess.run(
            ["git", "ls-files", "-z"],
            cwd=repo_root,
            capture_output=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return []
    raw = completed.stdout.decode("utf-8", errors="replace")
    return [p for p in raw.split("\0") if p]


def hygiene_violations(paths) -> list:
    """The subset of ``paths`` that violates the hygiene rules."""
    violations = []
    for path in paths:
        if any(fragment in path for fragment in FORBIDDEN_FRAGMENTS) or path.endswith(
            FORBIDDEN_SUFFIXES
        ):
            violations.append(path)
    return sorted(violations)


def main() -> int:
    offenders = hygiene_violations(tracked_files())
    if offenders:
        print("tracked compiled-Python artifacts (git rm --cached them):")
        for path in offenders:
            print(f"  {path}")
        return 1
    print("repo hygiene: clean (no tracked __pycache__/.pyc)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
