#!/usr/bin/env python3
"""Fail if compiled-Python artifacts or oversized files are tracked.

``__pycache__`` directories and ``.pyc`` files snuck into one commit
already; this check keeps them from coming back.  It also rejects
tracked files larger than 1 MB outside ``benchmarks/`` — generated
result dumps belong there or nowhere.  Run directly::

    python scripts/check_repo_hygiene.py

or through the pytest collection gate in ``tests/test_repo_hygiene.py``.
Exits 0 when clean, 1 with an offending-path listing otherwise.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Tracked-path fragments that must never appear in the index.
FORBIDDEN_FRAGMENTS = ("__pycache__/",)
FORBIDDEN_SUFFIXES = (".pyc", ".pyo")

#: Largest tracked file allowed outside the size-exempt directories.
MAX_FILE_BYTES = 1_000_000
SIZE_EXEMPT_PREFIXES = ("benchmarks/",)


def tracked_files(repo_root: Path = REPO_ROOT) -> list:
    """All paths in the git index (empty list when git is unavailable)."""
    try:
        completed = subprocess.run(
            ["git", "ls-files", "-z"],
            cwd=repo_root,
            capture_output=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return []
    raw = completed.stdout.decode("utf-8", errors="replace")
    return [p for p in raw.split("\0") if p]


def hygiene_violations(paths) -> list:
    """The subset of ``paths`` that violates the path-pattern rules.

    A path violates when it sits inside a ``__pycache__`` directory or
    carries a compiled-Python suffix.  Pure path matching — no
    filesystem access — so it also works on synthetic path lists.
    """
    violations = []
    for path in paths:
        if any(fragment in path for fragment in FORBIDDEN_FRAGMENTS) or path.endswith(
            FORBIDDEN_SUFFIXES
        ):
            violations.append(path)
    return sorted(violations)


def size_violations(
    paths,
    repo_root: Path = REPO_ROOT,
    limit: int = MAX_FILE_BYTES,
) -> list:
    """Tracked files over ``limit`` bytes outside the exempt prefixes.

    Returns ``(path, size)`` pairs sorted by path.  Paths missing from
    the working tree (e.g. staged deletions) are skipped.
    """
    violations = []
    for path in paths:
        if path.startswith(SIZE_EXEMPT_PREFIXES):
            continue
        file = repo_root / path
        try:
            size = file.stat().st_size
        except OSError:
            continue
        if size > limit:
            violations.append((path, size))
    return sorted(violations)


def main() -> int:
    paths = tracked_files()
    offenders = hygiene_violations(paths)
    oversized = size_violations(paths)
    if offenders:
        print("tracked compiled-Python artifacts (git rm --cached them):")
        for path in offenders:
            print(f"  {path}")
    if oversized:
        print(
            f"tracked files over {MAX_FILE_BYTES} bytes outside "
            f"{', '.join(SIZE_EXEMPT_PREFIXES)}:"
        )
        for path, size in oversized:
            print(f"  {path} ({size} bytes)")
    if offenders or oversized:
        return 1
    print("repo hygiene: clean (no tracked __pycache__/.pyc, no oversized files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
