#!/usr/bin/env python
"""Golden-file gate for the evolution-impact analyzer (CI ``impact`` job).

Runs the static analyzer over two fixed scenarios — retiring the
``wPeople`` wrapper from the seeded-broken fixture, and the scripted v2
football release (rename/nest/retype over ``w1``'s signature) — and
diffs the normalized JSON reports against the golden files under
``tests/analysis/golden/``.  A behaviour change in the analyzer shows up
as a readable diff; run with ``--update`` to re-bless the goldens.

Usage:
    PYTHONPATH=src python scripts/impact_golden.py            # check
    PYTHONPATH=src python scripts/impact_golden.py --update   # re-bless
"""

import argparse
import difflib
import json
import pathlib
import sys

GOLDEN_DIR = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "analysis"
    / "golden"
)

#: The scripted v2 football release, expressed over ``w1``'s registered
#: signature through the JSON change protocol the CLI/service accept.
FOOTBALL_V2 = {
    "release": {
        "source": "players",
        "wrapper": "w1v2",
        "base_wrapper": "w1",
        "changes": [
            {"op": "rename", "old": "pName", "new": "fullName"},
            {"op": "nest", "names": ["height", "weight"], "under": "physique"},
            {"op": "retype", "name": "teamId"},
        ],
    }
}

BROKEN_RETIRE = {"retire": "wPeople"}


def normalize(payload):
    """Strip fields that may vary across runs without a behaviour change."""
    payload = dict(payload)
    payload.pop("generation", None)
    return payload


def compute_reports():
    from repro.analysis.impact import change_from_json
    from repro.scenarios.broken import broken_mdm
    from repro.scenarios.football import FootballScenario

    scenario = FootballScenario.build(anchors_only=True)
    scenario.mdm.saved_queries.save(
        "player-team", scenario.walk_player_team_names()
    )
    return {
        "impact_broken_retire.json": normalize(
            broken_mdm()
            .analyze_impact(change_from_json(BROKEN_RETIRE))
            .to_json_dict()
        ),
        "impact_football_v2.json": normalize(
            scenario.mdm.analyze_impact(change_from_json(FOOTBALL_V2))
            .to_json_dict()
        ),
    }


def render(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the golden files instead of diffing against them",
    )
    args = parser.parse_args(argv)

    reports = compute_reports()
    if args.update:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        for name, payload in reports.items():
            (GOLDEN_DIR / name).write_text(render(payload))
            print(f"blessed {GOLDEN_DIR / name}")
        return 0

    failed = False
    for name, payload in reports.items():
        golden_path = GOLDEN_DIR / name
        if not golden_path.exists():
            print(f"MISSING golden file {golden_path}; run with --update")
            failed = True
            continue
        expected = golden_path.read_text()
        actual = render(payload)
        if actual != expected:
            failed = True
            print(f"DIFF against {golden_path}:")
            sys.stdout.writelines(
                difflib.unified_diff(
                    expected.splitlines(keepends=True),
                    actual.splitlines(keepends=True),
                    fromfile=f"golden/{name}",
                    tofile="analyzer output",
                )
            )
        else:
            print(f"ok {name} (verdict {payload['verdict']})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
