"""repro — a reproduction of "MDM: Governing Evolution in Big Data
Ecosystems" (Nadal et al., EDBT 2018).

The package implements the complete MDM stack in pure Python:

- :mod:`repro.rdf` — RDF substrate (terms, indexed graphs, named-graph
  datasets, Turtle/TriG/N-Triples codecs, RDFS closure);
- :mod:`repro.sparql` — a SPARQL subset engine;
- :mod:`repro.relational` — relational algebra + federated executor;
- :mod:`repro.docstore` — an embedded document store for system metadata;
- :mod:`repro.sources` — simulated REST APIs, payload formats, schema
  evolution and the wrapper framework;
- :mod:`repro.core` — the paper's contribution: the BDI ontology (global
  and source graphs), LAV mappings as named graphs, the three-phase LAV
  query rewriting, release governance, and a GAV baseline;
- :mod:`repro.scenarios` — the motivational football use case and the
  SUPERSEDE-style scenario, fully wired;
- :mod:`repro.service` — a REST-style service layer over the facade.

Quickstart::

    from repro.scenarios import FootballScenario

    scenario = FootballScenario.build()
    walk = scenario.walk_player_team_names()
    outcome = scenario.mdm.execute(walk)
    print(outcome.rewrite.sparql)         # the generated SPARQL
    print(outcome.rewrite.pretty())       # the relational algebra (Fig. 8)
    print(outcome.to_table())             # the result table (Table 1)
"""

from .core.mdm import MDM

__version__ = "1.0.0"

__all__ = ["MDM", "__version__"]
