"""Static diagnostics for MDM: metadata lint and plan schema checking.

The governance promise of the paper — evolution must not silently break
saved analytical processes — only holds if misconfiguration is caught
*before* queries run.  This package is the compiler-front-end analogue
for MDM's metadata and plans:

- :mod:`repro.analysis.diagnostics` — the engine: stable error codes
  (``MDM001``…), severities, source locations, findings, a rule catalog
  and text/JSON renderers;
- :mod:`repro.analysis.metadata_rules` — the lint rule pack over the BDI
  ontology (global graph, source graph, LAV mappings, saved OMQs);
- :mod:`repro.analysis.plan_checker` — bottom-up schema/type inference
  over :mod:`repro.relational.algebra` plans, used standalone by
  ``repro-mdm lint`` and as the post-optimizer assertion in
  ``MDM.execute`` (``validate_plans`` / ``MDM_VALIDATE_PLANS``);
- :mod:`repro.analysis.lint` — the orchestrator producing a
  :class:`~repro.analysis.lint.LintReport` for the CLI (``lint``
  subcommand) and the service (``GET /lint``).
"""

from __future__ import annotations

from .diagnostics import (
    RULE_CATALOG,
    Finding,
    RuleInfo,
    Severity,
    SourceLocation,
    render_json,
    render_text,
)
from .lint import LintReport, lint_mdm
from .plan_checker import check_plan

__all__ = [
    "Severity",
    "SourceLocation",
    "Finding",
    "RuleInfo",
    "RULE_CATALOG",
    "render_text",
    "render_json",
    "check_plan",
    "lint_mdm",
    "LintReport",
]
