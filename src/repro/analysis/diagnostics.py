"""The diagnostics engine: codes, severities, locations, findings, renderers.

Every statically checkable MDM invariant gets a *stable* error code
(``MDM0xx`` for metadata rules, ``MDM1xx`` for plan-schema rules) so that
CI gates, dashboards and docs can reference a rule without depending on
message wording.  A :class:`Finding` is one violation: code, severity,
human message and a :class:`SourceLocation` pointing at the graph node,
wrapper or plan operator at fault.

The module is deliberately free of imports from :mod:`repro.core` so the
relational layer (and :mod:`repro.core` itself) can depend on it without
cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "Severity",
    "SourceLocation",
    "Finding",
    "RuleInfo",
    "RULE_CATALOG",
    "register_rule_info",
    "rule_info",
    "render_text",
    "render_json",
    "severity_counts",
    "sort_findings",
]


class Severity(enum.Enum):
    """How bad a finding is; orders ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        """Numeric rank for sorting (higher is more severe)."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]


#: The location kinds a finding may point at.
LOCATION_KINDS = (
    "graph-node",
    "wrapper",
    "attribute",
    "mapping",
    "saved-query",
    "plan-operator",
    "release",
)


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding anchors: a graph node, a wrapper, a plan operator.

    ``kind`` is one of :data:`LOCATION_KINDS`; ``name`` identifies the
    element (an IRI, a wrapper name, a plan path like
    ``Distinct/Union/Project``); ``detail`` optionally narrows it (an
    attribute inside a wrapper, a column inside an operator).
    """

    kind: str
    name: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in LOCATION_KINDS:
            raise ValueError(
                f"unknown location kind {self.kind!r}; use one of {LOCATION_KINDS}"
            )

    def __str__(self) -> str:
        rendered = f"{self.kind}:{self.name}"
        if self.detail:
            rendered += f"#{self.detail}"
        return rendered

    def to_dict(self) -> Dict[str, str]:
        out = {"kind": self.kind, "name": self.name}
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a violated rule at a location."""

    code: str
    severity: Severity
    message: str
    location: Optional[SourceLocation] = None
    #: The short rule name (filled from the catalog when omitted).
    rule: str = ""

    def render(self) -> str:
        """One-line text rendering, e.g. ``MDM004 error graph-node:… message``."""
        parts = [self.code, str(self.severity)]
        if self.location is not None:
            parts.append(str(self.location))
        parts.append(self.message)
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.rule:
            out["rule"] = self.rule
        if self.location is not None:
            out["location"] = self.location.to_dict()
        return out


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one rule: its code, name, default severity, docs."""

    code: str
    name: str
    severity: Severity
    description: str

    def finding(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """A :class:`Finding` for this rule (severity defaults to the rule's)."""
        return Finding(
            code=self.code,
            severity=severity or self.severity,
            message=message,
            location=location,
            rule=self.name,
        )


#: The process-wide rule catalog, ``code -> RuleInfo`` (sorted renders use it).
RULE_CATALOG: Dict[str, RuleInfo] = {}


def register_rule_info(
    code: str, name: str, severity: Severity, description: str
) -> RuleInfo:
    """Register (or fetch the identical) catalog entry for ``code``."""
    existing = RULE_CATALOG.get(code)
    if existing is not None:
        if existing.name != name:
            raise ValueError(
                f"rule code {code} already registered as {existing.name!r}"
            )
        return existing
    info = RuleInfo(code=code, name=name, severity=severity, description=description)
    RULE_CATALOG[code] = info
    return info


def rule_info(code: str) -> RuleInfo:
    """The catalog entry for ``code`` (raises KeyError if unknown)."""
    return RULE_CATALOG[code]


def severity_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    """``{"error": n, "warning": n, "info": n}`` over ``findings``."""
    counts = {str(s): 0 for s in Severity}
    for finding in findings:
        counts[str(finding.severity)] += 1
    return counts


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic order: severity desc, then code, then location."""
    return sorted(
        findings,
        key=lambda f: (
            -f.severity.rank,
            f.code,
            str(f.location) if f.location else "",
            f.message,
        ),
    )


def render_text(findings: Sequence[Finding]) -> str:
    """The human listing: one line per finding plus a summary line."""
    ordered = sort_findings(findings)
    lines = [f.render() for f in ordered]
    counts = severity_counts(ordered)
    lines.append(
        f"{len(ordered)} finding(s): {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], extra: Optional[Mapping[str, Any]] = None
) -> str:
    """The machine rendering: ``{"findings": [...], "summary": {...}}``."""
    payload: Dict[str, Any] = {
        "findings": [f.to_dict() for f in sort_findings(findings)],
        "summary": severity_counts(findings),
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
