"""The evolution-impact rule catalog: the ``MDM2xx`` range + verdict lattice.

The impact analyzer (:mod:`repro.analysis.impact`) classifies a *proposed*
change — a wrapper release, a wrapper retirement, or any of the nine MDM
metadata mutations — before it lands, by applying it to a shadow copy of
the metadata graph and diffing what the rewriting/plan machinery would do.
Every observable consequence gets a stable ``MDM2xx`` code here, in the
same catalog the lint pack (``MDM0xx``) and the plan checker (``MDM1xx``)
use, so CI gates and dashboards can reference the blast radius without
depending on message wording.

The verdict lattice orders ``SAFE < DEGRADED < BROKEN``; a report's
verdict is the join over its findings' severities (error → ``BROKEN``,
warning → ``DEGRADED``, info only → ``SAFE``).
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping

from .diagnostics import Finding, RuleInfo, Severity, register_rule_info

__all__ = ["Verdict", "IMPACT_RULES", "verdict_of_findings", "verdict_of_severity"]


class Verdict(enum.Enum):
    """Impact classification for a proposed change (a join-semilattice)."""

    SAFE = "safe"
    DEGRADED = "degraded"
    BROKEN = "broken"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        """Numeric rank for joins (higher is worse)."""
        return {"safe": 0, "degraded": 1, "broken": 2}[self.value]

    def join(self, other: "Verdict") -> "Verdict":
        """The least upper bound of two verdicts."""
        return self if self.rank >= other.rank else other


def verdict_of_severity(severity: Severity) -> Verdict:
    """Map one finding severity onto the verdict lattice."""
    if severity is Severity.ERROR:
        return Verdict.BROKEN
    if severity is Severity.WARNING:
        return Verdict.DEGRADED
    return Verdict.SAFE


def verdict_of_findings(findings: Iterable[Finding]) -> Verdict:
    """The join over all findings' severities (``SAFE`` when empty)."""
    verdict = Verdict.SAFE
    for finding in findings:
        verdict = verdict.join(verdict_of_severity(finding.severity))
    return verdict


#: The impact rule catalog, ``code -> RuleInfo``.
IMPACT_RULES: Mapping[str, RuleInfo] = {
    "MDM201": register_rule_info(
        "MDM201",
        "saved-query-broken",
        Severity.ERROR,
        "A saved query that rewrites today would stop rewriting (the UCQ "
        "becomes empty or the rewriting raises) after the proposed change.",
    ),
    "MDM202": register_rule_info(
        "MDM202",
        "saved-query-rewrite-changed",
        Severity.WARNING,
        "A saved query's UCQ changes shape after the proposed change — it "
        "loses or gains conjunctive queries, so its results may differ.",
    ),
    "MDM203": register_rule_info(
        "MDM203",
        "proposed-mapping-invalid",
        Severity.ERROR,
        "The proposed release's LAV mapping violates the mapping "
        "well-formedness rules (MDM012–MDM018) and would be rejected.",
    ),
    "MDM204": register_rule_info(
        "MDM204",
        "concept-coverage-lost",
        Severity.ERROR,
        "A concept covered by at least one mapped wrapper today would be "
        "covered by none after the proposed change — every query touching "
        "it stops rewriting.",
    ),
    "MDM205": register_rule_info(
        "MDM205",
        "feature-coverage-lost",
        Severity.WARNING,
        "A feature populated by at least one mapped wrapper today would "
        "lose all providers after the proposed change.",
    ),
    "MDM206": register_rule_info(
        "MDM206",
        "pushdown-capability-lost",
        Severity.WARNING,
        "A saved query's wrapper set loses a pushdown capability "
        "(filters/projection/limit) after the proposed change — the "
        "mediator falls back to full fetches for it.",
    ),
    "MDM207": register_rule_info(
        "MDM207",
        "caches-invalidated",
        Severity.INFO,
        "Applying the change bumps the metadata generation, making every "
        "generation-keyed cache entry (rewrite/result/wrapper data) cold.",
    ),
    "MDM208": register_rule_info(
        "MDM208",
        "plan-check-regression",
        Severity.WARNING,
        "The static plan schema check (MDM1xx) reports findings on a "
        "saved query's rewritten plan after the change that it does not "
        "report today.",
    ),
    "MDM209": register_rule_info(
        "MDM209",
        "proposed-change-invalid",
        Severity.ERROR,
        "The proposed change cannot be applied at all (unknown source or "
        "wrapper, malformed mutation, signature conflict).",
    ),
}
