"""Static evolution-impact analysis: a what-if gate over the metadata graph.

Given a *proposed* change — a wrapper release (optionally expressed as
:class:`~repro.sources.evolution.SchemaChange` operators over the
predecessor's signature), a wrapper retirement, or one of the nine MDM
metadata mutations — :func:`analyze_impact` applies it to a **shadow
copy** of the metadata graph and statically classifies the blast radius
per concept, feature and saved query *without fetching a single source
row*:

``BROKEN``
    a saved query stops rewriting, a concept loses its last mapped
    wrapper, or the proposed mapping violates MDM012–MDM018;
``DEGRADED``
    a saved query's UCQ changes shape, pushdown capability is lost, the
    plan checker would report new MDM1xx findings, a feature loses all
    providers;
``SAFE``
    nothing above — only the unavoidable cache invalidation (MDM207,
    info) of the generation bump.

The shadow is a deep copy of the RDF dataset plus the metadata document
store; its runtime wrappers are no-fetch proxies, so any code path that
tried to touch a source during analysis raises instead of fetching.  The
real MDM is only ever *read* — zero generation bumps, zero mutations.

:func:`apply_change` is the shared "make it real" primitive: the
analyzer runs it against the shadow, the governance workflow (and the
differential oracle test) run the very same function against the live
MDM, which is what makes the static verdict falsifiable.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..rdf.terms import IRI
from ..sources.evolution import (
    AddField,
    ChangeType,
    FlattenField,
    NestFields,
    RemoveField,
    RenameField,
    SchemaChange,
    evolve_signature,
)
from ..sources.fetch import FetchRequest, FetchResult
from ..sources.wrappers import RetryPolicy, StaticWrapper, Wrapper
from .diagnostics import (
    Finding,
    Severity,
    SourceLocation,
    render_json,
    render_text,
    severity_counts,
    sort_findings,
)
from .evolution_rules import (
    IMPACT_RULES,
    Verdict,
    verdict_of_findings,
    verdict_of_severity,
)
from .lint import wrapper_catalog
from .plan_checker import check_plan

if TYPE_CHECKING:
    from ..core.mdm import MDM

__all__ = [
    "WrapperRelease",
    "WrapperRetirement",
    "MetadataMutation",
    "ProposedChange",
    "QueryImpact",
    "ImpactReport",
    "analyze_impact",
    "apply_change",
    "shadow_mdm",
    "change_from_json",
    "MUTATORS",
]

#: The nine generation-bumping MDM mutators a :class:`MetadataMutation`
#: may name (paper §2's interaction kinds a–c).
MUTATORS = (
    "add_concept",
    "add_feature",
    "add_identifier",
    "relate",
    "load_uml",
    "register_source",
    "register_wrapper",
    "define_mapping",
    "apply_suggestion",
)


# ---------------------------------------------------------------------- #
# proposed changes
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class WrapperRelease:
    """A proposed wrapper release under an existing source.

    The new signature is either given verbatim (``attributes``) or
    derived statically from ``base_wrapper``'s registered signature
    pushed through ``changes`` (:func:`evolve_signature`).  The mapping
    is either explicit (``map_attributes`` + ``edges``) or, with
    ``auto_map``, produced by the semi-automatic suggestion machinery —
    exactly the steward workflow the scenarios script.  ``rows`` seeds
    the release's :class:`StaticWrapper` when the change is applied for
    real (the analyzer itself never reads them).
    """

    source: str
    wrapper: str
    attributes: Optional[Tuple[str, ...]] = None
    base_wrapper: Optional[str] = None
    changes: Tuple[SchemaChange, ...] = ()
    map_attributes: Optional[Mapping[str, IRI]] = None
    edges: Tuple[Tuple[IRI, IRI, IRI], ...] = ()
    auto_map: bool = True
    rows: Tuple[Mapping[str, Any], ...] = ()
    kind: Optional[str] = None

    def describe(self) -> str:
        suffix = f" ({len(self.changes)} change(s))" if self.changes else ""
        return f"release {self.wrapper} @ {self.source}{suffix}"

    def resolved_attributes(self, mdm: "MDM") -> List[str]:
        """The proposed signature, derived without touching any source."""
        if self.attributes is not None:
            return list(self.attributes)
        if self.base_wrapper is None:
            raise ValueError(
                "a WrapperRelease needs either attributes or base_wrapper"
            )
        from ..core.errors import SourceGraphError

        base = mdm.source_graph.wrapper_by_name(self.base_wrapper)
        if base is None:
            raise SourceGraphError(
                f"unknown base wrapper {self.base_wrapper!r}"
            )
        base_names = [
            mdm.source_graph.attribute_name(attr) or attr.local_name()
            for attr in mdm.source_graph.attributes_of(base)
        ]
        return evolve_signature(sorted(base_names), self.changes)


@dataclass(frozen=True)
class WrapperRetirement:
    """A proposed wrapper retirement (registration + mapping removed)."""

    wrapper: str

    def describe(self) -> str:
        return f"retire {self.wrapper}"


@dataclass(frozen=True)
class MetadataMutation:
    """One of the nine MDM metadata mutations, by method name."""

    method: str
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        return f"mutation {self.method}"


ProposedChange = Union[WrapperRelease, WrapperRetirement, MetadataMutation]


# ---------------------------------------------------------------------- #
# applying a change (shadow and real share these semantics)
# ---------------------------------------------------------------------- #


def apply_change(mdm: "MDM", change: ProposedChange) -> None:
    """Apply a proposed change to ``mdm`` — shadow or live, same semantics.

    The analyzer calls this against the shadow; the governance workflow
    (and the differential oracle test) call it against the real MDM, so
    the static verdict is about exactly the mutation that would happen.
    """
    if isinstance(change, WrapperRelease):
        _apply_release(mdm, change)
    elif isinstance(change, WrapperRetirement):
        _retire_wrapper(mdm, change.wrapper)
    elif isinstance(change, MetadataMutation):
        if change.method not in MUTATORS:
            raise ValueError(
                f"unknown metadata mutation {change.method!r}; "
                f"use one of {MUTATORS}"
            )
        getattr(mdm, change.method)(*change.args, **dict(change.kwargs))
    else:
        raise TypeError(f"not a proposed change: {change!r}")


def _apply_release(mdm: "MDM", change: WrapperRelease) -> None:
    attributes = change.resolved_attributes(mdm)
    wrapper = StaticWrapper(
        change.wrapper, attributes, [dict(r) for r in change.rows]
    )
    mdm.register_wrapper(
        change.source,
        wrapper,
        kind=change.kind,
        changes=tuple(c.describe() for c in change.changes),
    )
    if change.map_attributes is not None:
        mdm.define_mapping(
            change.wrapper, dict(change.map_attributes), change.edges
        )
    elif change.auto_map:
        suggestion = mdm.suggest_mapping(change.wrapper)
        mdm.apply_suggestion(suggestion, extra_edges=change.edges)


def _retire_wrapper(mdm: "MDM", wrapper_name: str) -> None:
    """Remove a wrapper's registration, mapping and runtime object.

    Attribute IRIs (and their ``owl:sameAs`` links) are kept: they are
    shared across the source's releases, so a sibling wrapper reusing
    them keeps working.
    """
    from ..core.errors import SourceGraphError

    with mdm.metadata_lock.write_locked():
        wrapper = mdm.source_graph.wrapper_by_name(wrapper_name)
        if wrapper is None:
            raise SourceGraphError(f"unknown wrapper {wrapper_name!r}")
        graph = mdm.source_graph.graph
        graph.remove_pattern((wrapper, None, None))
        graph.remove_pattern((None, None, wrapper))
        if mdm.dataset.has_graph(wrapper):
            mdm.dataset.remove_graph(wrapper)
        mdm.wrappers.pop(wrapper_name, None)
        mdm.bump_generation()


# ---------------------------------------------------------------------- #
# the shadow MDM
# ---------------------------------------------------------------------- #


class _NoFetchWrapper(Wrapper):
    """A wrapper proxy that answers metadata questions but never fetches.

    The shadow MDM's runtime wrappers are all wrapped in this, which is
    what makes "impact analysis performs zero wrapper fetches" a hard
    guarantee rather than a convention: any analysis code path reaching
    for rows raises immediately.
    """

    def __init__(self, inner: Wrapper) -> None:
        super().__init__(inner.name, list(inner.attributes))
        self._inner = inner

    def capabilities(self) -> frozenset:
        return self._inner.capabilities()

    def _refuse(self) -> Exception:
        from ..core.errors import MdmError

        return MdmError(
            f"impact analysis is static: refusing to fetch from wrapper "
            f"{self.name!r}"
        )

    def fetch(self) -> List[Dict[str, Any]]:
        raise self._refuse()

    def _fetch_push(self, request: FetchRequest) -> FetchResult:
        raise self._refuse()

    def fetch_request(
        self,
        request: Optional[FetchRequest] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Tuple[FetchResult, int]:
        raise self._refuse()


def shadow_mdm(mdm: "MDM") -> "MDM":
    """A deep-copied MDM the analyzer can mutate without consequence.

    The RDF dataset and the metadata document store are copied; the
    graph stack (global graph, source graph, LAV store, rewriter) is
    rebuilt over the copy; runtime wrappers become no-fetch proxies; the
    impact gate is off (the shadow must accept the proposal so its
    consequences can be measured).  The caller is expected to hold the
    real MDM's read lock so the copy is a consistent snapshot.
    """
    from ..core.global_graph import GlobalGraph
    from ..core.lav import LavMappingStore
    from ..core.mdm import MDM
    from ..core.releases import GovernanceLog
    from ..core.rewriting import Rewriter
    from ..core.source_graph import SourceGraph
    from ..core.vocabulary import M

    shadow = MDM(
        max_fetch_workers=1,
        result_cache_size=0,
        wrapper_cache_size=0,
        impact_gate="off",
    )
    shadow.dataset = mdm.dataset.copy()
    shadow.global_graph = GlobalGraph(shadow.dataset.graph(M.globalGraph))
    shadow.source_graph = SourceGraph(shadow.dataset.graph(M.sourceGraph))
    shadow.mappings = LavMappingStore(
        shadow.dataset, shadow.global_graph, shadow.source_graph
    )
    shadow.rewriter = Rewriter(shadow.global_graph, shadow.mappings)
    shadow.metadata = mdm.metadata.copy()
    shadow.governance = GovernanceLog(shadow.metadata)
    shadow._sources_by_name = dict(mdm._sources_by_name)
    shadow._generation = mdm._generation
    shadow.wrappers = {
        name: _NoFetchWrapper(w) for name, w in mdm.wrappers.items()
    }
    return shadow


# ---------------------------------------------------------------------- #
# static state capture & diffing
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _QueryState:
    """What the metadata alone says about one saved query."""

    name: str
    ok: bool
    error: str
    ucq_size: int
    wrappers: Tuple[str, ...]
    plan_codes: Mapping[str, int]
    plan_findings: Tuple[Finding, ...]
    capabilities: FrozenSet[str]


def _query_states(mdm: "MDM") -> Dict[str, _QueryState]:
    from ..core.errors import MdmError

    catalog = wrapper_catalog(mdm)
    states: Dict[str, _QueryState] = {}
    registry = mdm.saved_queries
    for name in registry.names():
        saved = registry.get(name)
        try:
            # The rewriter is used directly (not mdm.rewrite) so analysis
            # neither pollutes the query log nor warms any cache.
            result = mdm.rewriter.rewrite(saved.walk)
        except MdmError as exc:
            states[name] = _QueryState(
                name=name,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                ucq_size=0,
                wrappers=(),
                plan_codes={},
                plan_findings=(),
                capabilities=frozenset(),
            )
            continue
        wrappers = tuple(
            sorted({w for q in result.queries for w in q.wrapper_names})
        )
        plan_findings, _schema = check_plan(result.plan, catalog)
        caps: Optional[FrozenSet[str]] = None
        for wrapper_name in wrappers:
            runtime = mdm.wrappers.get(wrapper_name)
            wrapper_caps = (
                frozenset(runtime.capabilities())
                if runtime is not None
                else frozenset()
            )
            caps = wrapper_caps if caps is None else (caps & wrapper_caps)
        states[name] = _QueryState(
            name=name,
            ok=result.ucq_size > 0,
            error="" if result.ucq_size > 0 else "empty UCQ",
            ucq_size=result.ucq_size,
            wrappers=wrappers,
            plan_codes=dict(Counter(f.code for f in plan_findings)),
            plan_findings=tuple(plan_findings),
            capabilities=caps if caps is not None else frozenset(),
        )
    return states


def _coverage(mdm: "MDM") -> Tuple[FrozenSet[IRI], FrozenSet[IRI]]:
    """(covered concepts, populated features) across all mapped wrappers."""
    concepts: set = set()
    features: set = set()
    for wrapper in mdm.mappings.mapped_wrappers():
        view = mdm.mappings.view(wrapper)
        concepts |= set(view.concepts)
        features |= set(view.features)
    return frozenset(concepts), frozenset(features)


# ---------------------------------------------------------------------- #
# the report
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class QueryImpact:
    """The per-saved-query row of the blast-radius report."""

    name: str
    verdict: Verdict
    before_ucq: int
    after_ucq: int
    before_wrappers: Tuple[str, ...]
    after_wrappers: Tuple[str, ...]
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "verdict": str(self.verdict),
            "before_ucq": self.before_ucq,
            "after_ucq": self.after_ucq,
            "before_wrappers": list(self.before_wrappers),
            "after_wrappers": list(self.after_wrappers),
            "note": self.note,
        }


@dataclass(frozen=True)
class ImpactReport:
    """One impact analysis: the change, its verdict, the blast radius."""

    change: str
    verdict: Verdict
    findings: Tuple[Finding, ...]
    queries: Tuple[QueryImpact, ...]
    concepts_lost: Tuple[str, ...]
    features_lost: Tuple[str, ...]
    checked_queries: int
    generation: int
    applied: bool

    @property
    def summary(self) -> Dict[str, int]:
        return severity_counts(self.findings)

    @property
    def ok(self) -> bool:
        """True when the change would not break anything."""
        return self.verdict is not Verdict.BROKEN

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit code, matching lint: 1 on BROKEN, 1 on DEGRADED when
        ``strict``, else 0."""
        if self.verdict is Verdict.BROKEN:
            return 1
        if strict and self.verdict is Verdict.DEGRADED:
            return 1
        return 0

    def render_text(self) -> str:
        """The blast-radius report the steward reads."""
        lines = [
            f"Impact analysis: {self.change}",
            f"Verdict: {str(self.verdict).upper()} "
            f"({self.checked_queries} saved quer"
            f"{'y' if self.checked_queries == 1 else 'ies'} checked, "
            f"generation {self.generation})",
        ]
        lines.append(render_text(self.findings))
        if self.queries:
            lines.append("Saved queries:")
            for query in self.queries:
                delta = f"UCQ {query.before_ucq} -> {query.after_ucq}"
                note = f"  [{query.note}]" if query.note else ""
                lines.append(
                    f"  {query.name}: {str(query.verdict)} ({delta}){note}"
                )
        if self.concepts_lost:
            lines.append(
                "Concepts losing all coverage: "
                + ", ".join(self.concepts_lost)
            )
        if self.features_lost:
            lines.append(
                "Features losing all providers: "
                + ", ".join(self.features_lost)
            )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "change": self.change,
            "verdict": str(self.verdict),
            "ok": self.ok,
            "applied": self.applied,
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
            "summary": self.summary,
            "queries": [q.to_dict() for q in self.queries],
            "concepts_lost": list(self.concepts_lost),
            "features_lost": list(self.features_lost),
            "checked_queries": self.checked_queries,
            "generation": self.generation,
        }

    def render_json(self) -> str:
        return render_json(
            self.findings,
            extra={
                "change": self.change,
                "verdict": str(self.verdict),
                "ok": self.ok,
                "queries": [q.to_dict() for q in self.queries],
                "concepts_lost": list(self.concepts_lost),
                "features_lost": list(self.features_lost),
                "checked_queries": self.checked_queries,
            },
        )


# ---------------------------------------------------------------------- #
# the analyzer
# ---------------------------------------------------------------------- #


def analyze_impact(mdm: "MDM", change: ProposedChange) -> ImpactReport:
    """Statically classify ``change``'s blast radius against ``mdm``.

    Pure read on ``mdm`` (the caller is expected to hold its read lock;
    :meth:`repro.core.mdm.MDM.analyze_impact` does); all mutation happens
    on a :func:`shadow_mdm` copy whose wrappers refuse to fetch.
    """
    from ..core.errors import MappingError, MdmError

    description = change.describe()
    release_location = SourceLocation("release", description)
    before_states = _query_states(mdm)
    before_concepts, before_features = _coverage(mdm)
    generation = mdm.generation
    findings: List[Finding] = []
    shadow = shadow_mdm(mdm)
    applied = True
    try:
        apply_change(shadow, change)
    except MappingError as exc:
        applied = False
        nested = getattr(exc, "findings", ())
        detail = (
            f" ({len(nested)} mapping finding(s): "
            + ", ".join(sorted({f.code for f in nested}))
            + ")"
            if nested
            else ""
        )
        findings.append(
            IMPACT_RULES["MDM203"].finding(
                f"{description}: mapping would be rejected: {exc}{detail}",
                release_location,
            )
        )
    except (MdmError, ValueError, TypeError, KeyError) as exc:
        applied = False
        findings.append(
            IMPACT_RULES["MDM209"].finding(
                f"{description}: cannot be applied: "
                f"{type(exc).__name__}: {exc}",
                release_location,
            )
        )

    queries: List[QueryImpact] = []
    concepts_lost: Tuple[str, ...] = ()
    features_lost: Tuple[str, ...] = ()
    if applied:
        after_states = _query_states(shadow)
        after_concepts, after_features = _coverage(shadow)
        concepts_lost = tuple(
            sorted(c.value for c in before_concepts - after_concepts)
        )
        features_lost = tuple(
            sorted(f.value for f in before_features - after_features)
        )
        for concept in concepts_lost:
            findings.append(
                IMPACT_RULES["MDM204"].finding(
                    f"{description}: concept {concept} loses its last "
                    "mapped wrapper",
                    SourceLocation("graph-node", concept),
                )
            )
        for feature in features_lost:
            findings.append(
                IMPACT_RULES["MDM205"].finding(
                    f"{description}: feature {feature} loses all providers",
                    SourceLocation("graph-node", feature),
                )
            )
        for name in sorted(before_states):
            before = before_states[name]
            after = after_states.get(name)
            if after is None:
                continue
            query_findings: List[Finding] = []
            note = ""
            if not before.ok:
                note = "already broken before the change"
            elif not after.ok:
                query_findings.append(
                    IMPACT_RULES["MDM201"].finding(
                        f"saved query {name!r} stops rewriting: "
                        f"{after.error}",
                        SourceLocation("saved-query", name),
                    )
                )
            else:
                if (
                    after.ucq_size != before.ucq_size
                    or after.wrappers != before.wrappers
                ):
                    lost = sorted(set(before.wrappers) - set(after.wrappers))
                    gained = sorted(set(after.wrappers) - set(before.wrappers))
                    bits = [f"UCQ {before.ucq_size} -> {after.ucq_size}"]
                    if lost:
                        bits.append("loses wrapper(s) " + ", ".join(lost))
                    if gained:
                        bits.append("gains wrapper(s) " + ", ".join(gained))
                    query_findings.append(
                        IMPACT_RULES["MDM202"].finding(
                            f"saved query {name!r} rewrite changes: "
                            + "; ".join(bits),
                            SourceLocation("saved-query", name),
                        )
                    )
                lost_caps = sorted(before.capabilities - after.capabilities)
                if lost_caps:
                    query_findings.append(
                        IMPACT_RULES["MDM206"].finding(
                            f"saved query {name!r} loses pushdown "
                            "capability(ies): " + ", ".join(lost_caps),
                            SourceLocation("saved-query", name),
                        )
                    )
                for code in sorted(after.plan_codes):
                    if after.plan_codes[code] <= before.plan_codes.get(code, 0):
                        continue
                    sample = next(
                        f for f in after.plan_findings if f.code == code
                    )
                    query_findings.append(
                        IMPACT_RULES["MDM208"].finding(
                            f"saved query {name!r}: plan check would newly "
                            f"report {code}: {sample.message}",
                            SourceLocation("saved-query", name, code),
                            severity=(
                                Severity.ERROR
                                if sample.severity is Severity.ERROR
                                else None
                            ),
                        )
                    )
            findings.extend(query_findings)
            query_verdict = Verdict.SAFE
            for finding in query_findings:
                query_verdict = query_verdict.join(
                    verdict_of_severity(finding.severity)
                )
            queries.append(
                QueryImpact(
                    name=name,
                    verdict=query_verdict,
                    before_ucq=before.ucq_size,
                    after_ucq=after.ucq_size,
                    before_wrappers=before.wrappers,
                    after_wrappers=after.wrappers,
                    note=note,
                )
            )
        findings.append(
            IMPACT_RULES["MDM207"].finding(
                f"{description}: all generation-keyed caches (rewrite "
                "plans, query results, wrapper data) go cold on apply",
                release_location,
            )
        )
    return ImpactReport(
        change=description,
        verdict=verdict_of_findings(findings),
        findings=tuple(sort_findings(findings)),
        queries=tuple(queries),
        concepts_lost=concepts_lost,
        features_lost=features_lost,
        checked_queries=len(before_states),
        generation=generation,
        applied=applied,
    )


# ---------------------------------------------------------------------- #
# JSON parsing (shared by the CLI and POST /impact)
# ---------------------------------------------------------------------- #


def _change_op(spec: Mapping[str, Any]) -> SchemaChange:
    op = str(spec.get("op", ""))
    if op == "rename":
        return RenameField(str(spec["old"]), str(spec["new"]))
    if op == "remove":
        return RemoveField(str(spec["name"]))
    if op == "add":
        value = spec.get("value")
        return AddField(str(spec["name"]), compute=lambda record: value)
    if op == "retype":
        return ChangeType(str(spec["name"]), converter=str)
    if op == "nest":
        return NestFields(tuple(spec["names"]), str(spec["under"]))
    if op == "flatten":
        return FlattenField(str(spec["name"]), str(spec.get("prefix", "")))
    raise ValueError(
        f"unknown schema-change op {op!r}; use one of "
        "rename/remove/add/retype/nest/flatten"
    )


def _json_term(value: Any) -> Any:
    if isinstance(value, Mapping):
        if set(value) == {"iri"}:
            return IRI(str(value["iri"]))
        return {str(k): _json_term(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_json_term(v) for v in value]
    return value


def change_from_json(payload: Mapping[str, Any]) -> ProposedChange:
    """Parse a proposed change from its JSON shape.

    ``{"release": {...}}``, ``{"retire": "wrapperName"}`` or
    ``{"mutation": {"method": ..., "args": [...], "kwargs": {...}}}``;
    IRIs inside mutation arguments are written ``{"iri": "http://..."}``.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("proposed change must be a JSON object")
    if "release" in payload:
        spec = payload["release"]
        mapping = spec.get("mapping")
        return WrapperRelease(
            source=str(spec["source"]),
            wrapper=str(spec["wrapper"]),
            attributes=(
                tuple(str(a) for a in spec["attributes"])
                if spec.get("attributes") is not None
                else None
            ),
            base_wrapper=spec.get("base_wrapper"),
            changes=tuple(_change_op(op) for op in spec.get("changes", ())),
            map_attributes=(
                {str(k): IRI(str(v)) for k, v in mapping.items()}
                if mapping is not None
                else None
            ),
            edges=tuple(
                (IRI(str(s)), IRI(str(p)), IRI(str(o)))
                for s, p, o in spec.get("edges", ())
            ),
            auto_map=bool(spec.get("auto_map", True)),
            rows=tuple(dict(r) for r in spec.get("rows", ())),
            kind=spec.get("kind"),
        )
    if "retire" in payload:
        return WrapperRetirement(str(payload["retire"]))
    if "mutation" in payload:
        spec = payload["mutation"]
        return MetadataMutation(
            method=str(spec.get("method", "")),
            args=tuple(_json_term(a) for a in spec.get("args", ())),
            kwargs={
                str(k): _json_term(v)
                for k, v in spec.get("kwargs", {}).items()
            },
        )
    raise ValueError(
        "proposed change needs one of 'release', 'retire' or 'mutation'; "
        f"got keys {sorted(payload)}"
    )


def change_from_json_text(text: str) -> ProposedChange:
    """:func:`change_from_json` over raw JSON text."""
    return change_from_json(json.loads(text))
