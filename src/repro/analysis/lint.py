"""``mdm lint``: the whole-system static-analysis pass.

:func:`lint_mdm` runs the metadata rule pack (MDM001–MDM011,
MDM019–MDM020) and, for
every saved query that still rewrites, the plan schema checker
(MDM101–MDM105) against a catalog derived from the registered wrapper
signatures — no wrapper is fetched, so the pass is safe to run in CI or
against a production snapshot.  The result is a :class:`LintReport` that
renders as text or JSON and maps to a process exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..obs import get_metrics
from ..relational.schema import RelationSchema
from .diagnostics import (
    Finding,
    Severity,
    SourceLocation,
    render_json,
    render_text,
    severity_counts,
    sort_findings,
)
from .metadata_rules import run_metadata_rules
from .plan_checker import check_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mdm import MDM

__all__ = ["LintReport", "lint_mdm", "wrapper_catalog"]


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint pass."""

    findings: Tuple[Finding, ...]
    #: How many saved queries had their plans schema-checked.
    checked_plans: int = 0
    summary: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return self.summary.get("error", 0)

    @property
    def warnings(self) -> int:
        return self.summary.get("warning", 0)

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found."""
        return self.errors == 0

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit code: 1 on errors, 1 on warnings too when ``strict``."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def render_text(self) -> str:
        lines = [render_text(self.findings)]
        lines.append(f"plans checked: {self.checked_plans}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return render_json(
            self.findings, extra={"checked_plans": self.checked_plans}
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
            "summary": dict(self.summary),
            "checked_plans": self.checked_plans,
            "ok": self.ok,
        }


def wrapper_catalog(mdm: "MDM") -> Dict[str, RelationSchema]:
    """Scan-name → schema catalog from registered wrapper signatures.

    Mirrors what the executor's catalog looks like after fetching: one
    relation per wrapper, columns named after the signature attributes,
    all ANY-typed (static lint has no sample rows to infer from).
    """
    catalog: Dict[str, RelationSchema] = {}
    for wrapper in mdm.source_graph.wrappers():
        name = mdm.source_graph.wrapper_name(wrapper) or wrapper.local_name()
        names = [
            mdm.source_graph.attribute_name(a) or a.local_name()
            for a in mdm.source_graph.attributes_of(wrapper)
        ]
        if names:
            catalog[name] = RelationSchema.of(*names)
    return catalog


def _check_saved_plans(mdm: "MDM") -> Tuple[List[Finding], int]:
    """MDM1xx findings over the rewrite plans of all saved queries."""
    from ..core.errors import MdmError

    registry = getattr(mdm, "saved_queries", None)
    if registry is None:
        return [], 0
    catalog = wrapper_catalog(mdm)
    findings: List[Finding] = []
    checked = 0
    for name in registry.names():
        saved = registry.get(name)
        try:
            result = mdm.rewriter.rewrite(saved.walk)
        except MdmError:
            continue  # already reported as MDM010 by the governance rule
        plan_findings, _ = check_plan(result.plan, catalog)
        for finding in plan_findings:
            location = finding.location
            findings.append(
                Finding(
                    code=finding.code,
                    severity=finding.severity,
                    message=f"saved query {name!r}: {finding.message}",
                    location=SourceLocation(
                        "saved-query",
                        name,
                        location.name if location is not None else "",
                    ),
                    rule=finding.rule,
                )
            )
        checked += 1
    return findings, checked


def lint_mdm(mdm: "MDM", replay_saved: bool = True, check_plans: bool = True
) -> LintReport:
    """Run every static rule against ``mdm`` and return the report.

    ``replay_saved`` controls the MDM010 governance replay;
    ``check_plans`` the MDM1xx schema check of saved-query plans.  The
    per-severity totals are observed into the
    ``mdm_lint_findings_total{severity}`` counter.
    """
    findings = run_metadata_rules(mdm, replay_saved=replay_saved)
    checked = 0
    if check_plans:
        plan_findings, checked = _check_saved_plans(mdm)
        findings.extend(plan_findings)
    counts = severity_counts(findings)
    counter = get_metrics().counter(
        "mdm_lint_findings_total",
        "Static-analysis findings reported by mdm lint.",
        labelnames=("severity",),
    )
    for severity in Severity:
        if counts[str(severity)]:
            counter.inc(counts[str(severity)], severity=str(severity))
    return LintReport(
        findings=tuple(sort_findings(findings)),
        checked_plans=checked,
        summary=counts,
    )
