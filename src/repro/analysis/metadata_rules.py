"""The metadata lint rule pack over the BDI ontology.

Each rule is a generator ``rule(mdm) -> Iterator[Finding]`` over a live
:class:`~repro.core.mdm.MDM` (duck-typed: anything exposing
``global_graph`` / ``source_graph`` / ``mappings`` / ``saved_queries`` /
``wrappers`` works).  :func:`run_metadata_rules` runs them all.

Two code ranges live here:

- ``MDM001``–``MDM011``, ``MDM019``–``MDM020`` — whole-system lint rules
  (:data:`METADATA_RULES`), run by ``repro-mdm lint`` / ``GET /lint``;
- ``MDM012``–``MDM018`` — per-mapping well-formedness rules
  (:data:`MAPPING_RULES`), the constraint set
  :meth:`~repro.core.lav.LavMappingStore.define` enforces; registering
  them here keeps one catalog for docs and renderers while
  ``core/lav.py`` stays free of rule bookkeeping.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Set,
    Tuple,
)

from ..rdf.paths import connected_components
from ..rdf.reasoner import superclass_closure
from ..rdf.terms import IRI
from .diagnostics import Finding, Severity, SourceLocation, register_rule_info

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mdm import MDM

__all__ = ["METADATA_RULES", "MAPPING_RULES", "run_metadata_rules"]


METADATA_RULES = {
    "MDM001": register_rule_info(
        "MDM001",
        "named-graph-not-subgraph",
        Severity.ERROR,
        "A wrapper's LAV named graph contains a triple that is not part "
        "of the global graph.",
    ),
    "MDM002": register_rule_info(
        "MDM002",
        "sameas-target-invalid",
        Severity.ERROR,
        "An owl:sameAs link lands outside the wrapper's named graph or "
        "on a term that is not a global-graph feature.",
    ),
    "MDM003": register_rule_info(
        "MDM003",
        "unmapped-attribute",
        Severity.WARNING,
        "A registered wrapper attribute populates no feature (no "
        "owl:sameAs link); its data is unreachable by any OMQ.",
    ),
    "MDM004": register_rule_info(
        "MDM004",
        "concept-missing-identifier",
        Severity.ERROR,
        "A concept has no identifier feature (own or inherited); joins "
        "are restricted to sc:identifier descendants, so queries "
        "touching it cannot be combined.",
    ),
    "MDM005": register_rule_info(
        "MDM005",
        "unreachable-concept",
        Severity.WARNING,
        "No LAV mapping covers the concept; queries over it rewrite to "
        "an empty union.",
    ),
    "MDM006": register_rule_info(
        "MDM006",
        "dangling-feature",
        Severity.ERROR,
        "A feature belongs to no concept (or to several), violating the "
        "one-concept-per-feature construction rule.",
    ),
    "MDM007": register_rule_info(
        "MDM007",
        "taxonomy-cycle",
        Severity.ERROR,
        "The concept taxonomy (rdfs:subClassOf) contains a cycle.",
    ),
    "MDM008": register_rule_info(
        "MDM008",
        "conflicting-mapping",
        Severity.ERROR,
        "An attribute is sameAs-linked to several features, or one "
        "feature is populated by several attributes of the same wrapper.",
    ),
    "MDM009": register_rule_info(
        "MDM009",
        "wrapper-unmapped",
        Severity.WARNING,
        "A registered wrapper has no LAV mapping; it contributes to no "
        "rewriting.",
    ),
    "MDM010": register_rule_info(
        "MDM010",
        "saved-query-broken",
        Severity.ERROR,
        "Replaying a saved OMQ against the current release set fails: "
        "its rewriting is empty or invalid (the paper's evolution-"
        "breakage case, caught statically).",
    ),
    "MDM011": register_rule_info(
        "MDM011",
        "wrapper-no-runtime",
        Severity.WARNING,
        "A mapped wrapper has no runtime object; executing a query that "
        "selects it will fail.",
    ),
    "MDM019": register_rule_info(
        "MDM019",
        "wrapper-orphaned",
        Severity.WARNING,
        "A mapped wrapper's named graph touches no concept; unreachable "
        "from every concept contour, no OMQ can ever select it.",
    ),
    "MDM020": register_rule_info(
        "MDM020",
        "saved-query-pinned",
        Severity.WARNING,
        "A saved query's rewriting selects a wrapper superseded by a "
        "later release of the same source (superset signature) while no "
        "superseding wrapper contributes; the query is pinned to the old "
        "release.",
    ),
}

MAPPING_RULES = {
    "MDM012": register_rule_info(
        "MDM012",
        "mapping-empty",
        Severity.ERROR,
        "A submitted LAV mapping has an empty named graph.",
    ),
    "MDM013": register_rule_info(
        "MDM013",
        "mapping-unregistered-wrapper",
        Severity.ERROR,
        "A LAV mapping was submitted for a wrapper that is not "
        "registered on the source graph.",
    ),
    "MDM014": register_rule_info(
        "MDM014",
        "mapping-disconnected",
        Severity.ERROR,
        "The named graph of a mapping is not connected (the steward must "
        "draw one contour).",
    ),
    "MDM015": register_rule_info(
        "MDM015",
        "mapping-foreign-attribute",
        Severity.ERROR,
        "A sameAs link uses an attribute that does not belong to the "
        "mapped wrapper.",
    ),
    "MDM016": register_rule_info(
        "MDM016",
        "mapping-unmapped-feature",
        Severity.ERROR,
        "A feature included in the named graph is populated by no "
        "attribute of the wrapper.",
    ),
    "MDM017": register_rule_info(
        "MDM017",
        "mapping-shared-attribute-conflict",
        Severity.ERROR,
        "An attribute shared across wrappers of one source is being "
        "linked to a different feature than before.",
    ),
    "MDM018": register_rule_info(
        "MDM018",
        "mapping-identifier-unpopulated",
        Severity.ERROR,
        "A concept covered by the mapping does not include and populate "
        "an identifier feature.",
    ),
}


def _local(iri: IRI) -> str:
    return iri.value


def _wrapper_display(mdm: "MDM", wrapper: IRI) -> str:
    return mdm.source_graph.wrapper_name(wrapper) or wrapper.local_name()


# --------------------------------------------------------------------- #
# MDM001 / MDM002 / MDM014 — mapping containment and connectivity
# --------------------------------------------------------------------- #


def rule_named_graph_subgraph(mdm: "MDM") -> Iterator[Finding]:
    """MDM001 + MDM014: each named graph ⊆ global graph and connected."""
    for wrapper in mdm.mappings.mapped_wrappers():
        name = _wrapper_display(mdm, wrapper)
        named = mdm.mappings.named_graph(wrapper)
        for triple in named:
            if triple not in mdm.global_graph.graph:
                yield METADATA_RULES["MDM001"].finding(
                    f"named graph of wrapper {name!r} contains "
                    f"{triple.n3()}, which is not in the global graph",
                    SourceLocation("mapping", name, triple.n3()),
                )
        components = connected_components(named)
        if len(components) > 1:
            yield MAPPING_RULES["MDM014"].finding(
                f"named graph of wrapper {name!r} is disconnected "
                f"({len(components)} components)",
                SourceLocation("mapping", name),
            )


def rule_sameas_targets(mdm: "MDM") -> Iterator[Finding]:
    """MDM002: every sameAs target is a feature inside the named graph."""
    from ..core.vocabulary import G

    for wrapper in mdm.mappings.mapped_wrappers():
        name = _wrapper_display(mdm, wrapper)
        named = mdm.mappings.named_graph(wrapper)
        included = {
            t.object
            for t in named.triples((None, G.hasFeature, None))
            if isinstance(t.object, IRI)
        }
        for attribute in mdm.source_graph.attributes_of(wrapper):
            attr_name = mdm.source_graph.attribute_name(attribute) or _local(
                attribute
            )
            # Every link of the attribute, not one-per-dict-slot: a
            # doubly-linked attribute must not hide a bad target.
            for feature in mdm.mappings.same_as_of_attribute(attribute):
                if not mdm.global_graph.is_feature(feature):
                    yield METADATA_RULES["MDM002"].finding(
                        f"attribute {attr_name!r} of wrapper {name!r} is "
                        f"sameAs-linked to {_local(feature)}, which is not a "
                        "feature of the global graph",
                        SourceLocation("mapping", name, attr_name),
                    )
                elif feature not in included:
                    yield METADATA_RULES["MDM002"].finding(
                        f"attribute {attr_name!r} of wrapper {name!r} is "
                        f"sameAs-linked to {_local(feature)}, which is "
                        "outside the wrapper's named graph",
                        SourceLocation("mapping", name, attr_name),
                    )


# --------------------------------------------------------------------- #
# MDM003 / MDM008 / MDM009 / MDM011 — wrapper and attribute hygiene
# --------------------------------------------------------------------- #


def rule_unmapped_attributes(mdm: "MDM") -> Iterator[Finding]:
    """MDM003: wrapper attributes that populate no feature."""
    for wrapper in mdm.mappings.mapped_wrappers():
        name = _wrapper_display(mdm, wrapper)
        for attribute in mdm.source_graph.attributes_of(wrapper):
            if not mdm.mappings.same_as_of_attribute(attribute):
                attr_name = mdm.source_graph.attribute_name(attribute) or (
                    _local(attribute)
                )
                yield METADATA_RULES["MDM003"].finding(
                    f"attribute {attr_name!r} of wrapper {name!r} populates "
                    "no feature; its data is unreachable",
                    SourceLocation("attribute", name, attr_name),
                )


def rule_conflicting_mappings(mdm: "MDM") -> Iterator[Finding]:
    """MDM008: attribute→several-features or feature←several-attributes."""
    seen_attributes: Set[IRI] = set()
    for wrapper in mdm.mappings.mapped_wrappers():
        name = _wrapper_display(mdm, wrapper)
        populated: Dict[IRI, List[str]] = {}
        for attribute in mdm.source_graph.attributes_of(wrapper):
            attr_name = mdm.source_graph.attribute_name(attribute) or _local(
                attribute
            )
            features = mdm.mappings.same_as_of_attribute(attribute)
            for feature in features:
                populated.setdefault(feature, []).append(attr_name)
            if len(features) > 1 and attribute not in seen_attributes:
                seen_attributes.add(attribute)
                yield METADATA_RULES["MDM008"].finding(
                    f"attribute {attr_name!r} is sameAs-linked to "
                    f"{len(features)} features: "
                    f"{sorted(_local(f) for f in features)}",
                    SourceLocation("attribute", name, attr_name),
                )
        for feature, attr_names in sorted(
            populated.items(), key=lambda kv: kv[0].value
        ):
            if len(attr_names) > 1:
                yield METADATA_RULES["MDM008"].finding(
                    f"feature {_local(feature)} is populated by several "
                    f"attributes of wrapper {name!r}: {sorted(attr_names)}",
                    SourceLocation("mapping", name, feature.local_name()),
                )


def rule_unmapped_wrappers(mdm: "MDM") -> Iterator[Finding]:
    """MDM009: registered wrappers with no LAV mapping."""
    mapped = set(mdm.mappings.mapped_wrappers())
    for wrapper in mdm.source_graph.wrappers():
        if wrapper not in mapped:
            name = _wrapper_display(mdm, wrapper)
            yield METADATA_RULES["MDM009"].finding(
                f"wrapper {name!r} is registered but has no LAV mapping",
                SourceLocation("wrapper", name),
            )


def rule_missing_runtimes(mdm: "MDM") -> Iterator[Finding]:
    """MDM011: mapped wrappers with no runtime object."""
    for wrapper in mdm.mappings.mapped_wrappers():
        name = _wrapper_display(mdm, wrapper)
        if name not in mdm.wrappers:
            yield METADATA_RULES["MDM011"].finding(
                f"mapped wrapper {name!r} has no runtime object; queries "
                "selecting it will fail to fetch",
                SourceLocation("wrapper", name),
            )


def rule_orphan_wrappers(mdm: "MDM") -> Iterator[Finding]:
    """MDM019: mapped wrappers whose named graph covers no concept."""
    for wrapper in mdm.mappings.mapped_wrappers():
        if not mdm.mappings.view(wrapper).concepts:
            name = _wrapper_display(mdm, wrapper)
            yield METADATA_RULES["MDM019"].finding(
                f"wrapper {name!r} is mapped but its named graph touches "
                "no concept; it is unreachable from any OMQ",
                SourceLocation("wrapper", name),
            )


# --------------------------------------------------------------------- #
# MDM004 / MDM005 / MDM006 / MDM007 — global-graph well-formedness
# --------------------------------------------------------------------- #


def rule_concept_identifiers(mdm: "MDM") -> Iterator[Finding]:
    """MDM004: every concept has an identifier, own or inherited."""
    gg = mdm.global_graph
    for concept in gg.concepts():
        identifiers: Set[IRI] = set()
        for ancestor in superclass_closure(gg.graph, concept):
            if isinstance(ancestor, IRI) and gg.is_concept(ancestor):
                identifiers.update(gg.identifiers_of(ancestor))
        if not identifiers:
            yield METADATA_RULES["MDM004"].finding(
                f"concept {_local(concept)} has no identifier feature; "
                "queries touching it cannot be joined",
                SourceLocation("graph-node", _local(concept)),
            )


def rule_unreachable_concepts(mdm: "MDM") -> Iterator[Finding]:
    """MDM005: concepts covered by no mapping."""
    covered: Set[IRI] = set()
    for wrapper in mdm.mappings.mapped_wrappers():
        covered.update(mdm.mappings.view(wrapper).concepts)
    for concept in mdm.global_graph.concepts():
        if concept not in covered:
            yield METADATA_RULES["MDM005"].finding(
                f"concept {_local(concept)} is covered by no LAV mapping; "
                "queries over it rewrite to an empty union",
                SourceLocation("graph-node", _local(concept)),
            )


def rule_dangling_features(mdm: "MDM") -> Iterator[Finding]:
    """MDM006: features owned by zero (or several) concepts."""
    from ..core.errors import GlobalGraphError
    from ..core.vocabulary import G

    gg = mdm.global_graph
    for feature in gg.features():
        try:
            owner = gg.concept_of(feature)
        except GlobalGraphError as exc:
            yield METADATA_RULES["MDM006"].finding(
                str(exc), SourceLocation("graph-node", _local(feature))
            )
            continue
        if owner is None:
            yield METADATA_RULES["MDM006"].finding(
                f"feature {_local(feature)} belongs to no concept",
                SourceLocation("graph-node", _local(feature)),
            )
    for subject, _, obj in gg.graph.triples((None, G.hasFeature, None)):
        if isinstance(obj, IRI) and not gg.is_feature(obj):
            yield METADATA_RULES["MDM006"].finding(
                f"hasFeature points at {_local(obj)}, which is not a "
                "declared feature",
                SourceLocation("graph-node", _local(obj)),
            )


def rule_taxonomy_cycles(mdm: "MDM") -> Iterator[Finding]:
    """MDM007: rdfs:subClassOf cycles among concepts."""
    gg = mdm.global_graph
    reported: Set[frozenset] = set()
    for concept in gg.concepts():
        cycle = frozenset(
            n
            for n in superclass_closure(gg.graph, concept)
            if n != concept
            and isinstance(n, IRI)
            and gg.is_concept(n)
            and concept in superclass_closure(gg.graph, n)
        )
        if cycle and (members := cycle | {concept}) not in reported:
            reported.add(members)
            rendered = " -> ".join(
                sorted(_local(m) for m in members if isinstance(m, IRI))
            )
            yield METADATA_RULES["MDM007"].finding(
                f"concept taxonomy cycle: {rendered}",
                SourceLocation("graph-node", _local(concept)),
            )


# --------------------------------------------------------------------- #
# MDM010 — governance: replay the saved analytical processes
# --------------------------------------------------------------------- #


def rule_saved_queries(mdm: "MDM") -> Iterator[Finding]:
    """MDM010: saved OMQs whose rewriting would now fail or be empty."""
    from ..core.errors import MdmError

    registry = getattr(mdm, "saved_queries", None)
    if registry is None:
        return
    for name in registry.names():
        saved = registry.get(name)
        try:
            result = mdm.rewriter.rewrite(saved.walk)
        except MdmError as exc:
            yield METADATA_RULES["MDM010"].finding(
                f"saved query {name!r} no longer rewrites: {exc}",
                SourceLocation("saved-query", name),
            )
            continue
        if result.ucq_size == 0:
            yield METADATA_RULES["MDM010"].finding(
                f"saved query {name!r} rewrites to an empty union",
                SourceLocation("saved-query", name),
            )


def rule_pinned_saved_queries(mdm: "MDM") -> Iterator[Finding]:
    """MDM020: saved queries pinned to superseded releases.

    Release B *supersedes* release A when both wrap the same source,
    B came later, and B's signature contains A's — the evolution case
    where the new wrapper fully replaces the old one.  A query whose
    rewriting selects A but none of its superseders has not been
    re-validated since the release and silently ignores the newer cover.
    """
    from ..core.errors import MdmError

    registry = getattr(mdm, "saved_queries", None)
    governance = getattr(mdm, "governance", None)
    if registry is None or governance is None:
        return
    releases: Dict[str, Tuple[int, str, FrozenSet[str]]] = {}
    for release in governance.history():
        releases[release.wrapper_name] = (
            release.sequence,
            release.source_name,
            frozenset(release.attributes),
        )
    superseders: Dict[str, List[str]] = {}
    for old, (old_seq, old_src, old_attrs) in releases.items():
        for new, (new_seq, new_src, new_attrs) in releases.items():
            if (
                new != old
                and new_src == old_src
                and new_seq > old_seq
                and old_attrs <= new_attrs
            ):
                superseders.setdefault(old, []).append(new)
    if not superseders:
        return
    for name in registry.names():
        saved = registry.get(name)
        try:
            result = mdm.rewriter.rewrite(saved.walk)
        except MdmError:
            continue  # MDM010's territory
        used: Set[str] = set()
        for cq in result.queries:
            used.update(cq.wrapper_names)
        for old in sorted(used):
            successors = superseders.get(old, [])
            if successors and not any(s in used for s in successors):
                yield METADATA_RULES["MDM020"].finding(
                    f"saved query {name!r} selects wrapper {old!r}, "
                    f"superseded by {sorted(successors)} which contribute "
                    "nothing to its rewriting; the query is pinned to the "
                    "old release",
                    SourceLocation("saved-query", name, old),
                )


#: All whole-system rules in execution order.
ALL_RULES: Tuple[Callable[..., Iterable[Finding]], ...] = (
    rule_named_graph_subgraph,
    rule_sameas_targets,
    rule_unmapped_attributes,
    rule_conflicting_mappings,
    rule_unmapped_wrappers,
    rule_missing_runtimes,
    rule_orphan_wrappers,
    rule_concept_identifiers,
    rule_unreachable_concepts,
    rule_dangling_features,
    rule_taxonomy_cycles,
)


def run_metadata_rules(mdm: "MDM", replay_saved: bool = True) -> List[Finding]:
    """All metadata findings for ``mdm`` (MDM001–MDM011, MDM019–MDM020)."""
    findings: List[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule(mdm))
    if replay_saved:
        findings.extend(rule_saved_queries(mdm))
        findings.extend(rule_pinned_saved_queries(mdm))
    return findings
