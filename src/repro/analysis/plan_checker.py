"""Bottom-up schema/type inference over relational-algebra plans.

The LAV rewriting and the logical optimizer both emit
:mod:`repro.relational.algebra` trees; a bug in either (a projection of a
column a rename just destroyed, a union of incompatible branches, a join
pair referencing a missing attribute) used to surface only at execution
time, deep inside the executor — or worse, as a silently wrong answer.

:func:`check_plan` walks a plan bottom-up, re-deriving each operator's
output schema the way :meth:`PlanNode.output_schema` does but *collecting
diagnostics instead of raising*, so one pass reports every violation.
Each finding's location is the operator path from the root, e.g.
``Distinct/Union[0]/Project``.

Rule codes (``MDM1xx``, registered in the shared catalog):

========  ========================================================
MDM101    scan of a relation the catalog does not know
MDM102    reference to an attribute absent from the child's schema
MDM103    union of non-union-compatible branches
MDM104    duplicate output column (e.g. ε of an existing name)
MDM105    comparison between incompatible attribute types
========  ========================================================

The checker is deliberately *at least as permissive* as the executor: a
plan with zero ``error`` findings must execute without schema errors.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..relational.algebra import (
    Aggregate,
    Catalog,
    Distinct,
    EquiJoin,
    Extend,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from ..relational.expressions import (
    And,
    Cmp,
    Col,
    Const,
    Expr,
    IsNull,
    NotExpr,
    Or,
)
from ..relational.schema import Attribute, RelationSchema, SchemaError
from ..relational.types import AttrType, common_type, infer_type
from .diagnostics import Finding, Severity, SourceLocation, register_rule_info

__all__ = ["check_plan", "PLAN_RULES"]

#: Ordering comparisons that make no sense over booleans.
_ORDERING_OPS = ("<", "<=", ">", ">=")

PLAN_RULES = {
    "MDM101": register_rule_info(
        "MDM101",
        "unknown-relation",
        Severity.ERROR,
        "A Scan references a relation name absent from the catalog.",
    ),
    "MDM102": register_rule_info(
        "MDM102",
        "unknown-attribute",
        Severity.ERROR,
        "An operator references an attribute its child does not produce.",
    ),
    "MDM103": register_rule_info(
        "MDM103",
        "union-incompatible",
        Severity.ERROR,
        "A Union combines branches whose schemas are not union-compatible.",
    ),
    "MDM104": register_rule_info(
        "MDM104",
        "duplicate-column",
        Severity.ERROR,
        "An operator would produce two columns with the same name.",
    ),
    "MDM105": register_rule_info(
        "MDM105",
        "type-mismatch",
        Severity.WARNING,
        "A predicate compares attributes of incompatible types.",
    ),
}


class _Checker:
    """One traversal: accumulates findings, returns schemas (None on error)."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.findings: List[Finding] = []

    # -- helpers -------------------------------------------------------- #

    def _report(
        self,
        code: str,
        message: str,
        path: str,
        detail: str = "",
        severity: Optional[Severity] = None,
    ) -> None:
        self.findings.append(
            PLAN_RULES[code].finding(
                message,
                SourceLocation("plan-operator", path, detail),
                severity=severity,
            )
        )

    def _require(
        self, schema: RelationSchema, name: str, path: str, what: str
    ) -> Optional[Attribute]:
        """The attribute ``name`` of ``schema``, reporting MDM102 if absent."""
        if name in schema:
            return schema.attribute(name)
        self._report(
            "MDM102",
            f"{what} references {name!r}, but the input schema only has "
            f"{list(schema.names)}",
            path,
            detail=name,
        )
        return None

    # -- expression typing --------------------------------------------- #

    def _expr_type(
        self, expr: Expr, schema: RelationSchema, path: str
    ) -> AttrType:
        """The inferred type of ``expr``; reports missing columns (MDM102)
        and incompatible comparisons (MDM105) along the way."""
        if isinstance(expr, Col):
            attribute = self._require(schema, expr.name, path, "predicate")
            return attribute.type if attribute is not None else AttrType.ANY
        if isinstance(expr, Const):
            try:
                return infer_type(expr.value)
            except TypeError:
                return AttrType.ANY
        if isinstance(expr, Cmp):
            left = self._expr_type(expr.left, schema, path)
            right = self._expr_type(expr.right, schema, path)
            self._check_comparison(expr, left, right, path)
            return AttrType.BOOLEAN
        if isinstance(expr, (And, Or)):
            self._expr_type(expr.left, schema, path)
            self._expr_type(expr.right, schema, path)
            return AttrType.BOOLEAN
        if isinstance(expr, NotExpr):
            self._expr_type(expr.operand, schema, path)
            return AttrType.BOOLEAN
        if isinstance(expr, IsNull):
            self._expr_type(expr.operand, schema, path)
            return AttrType.BOOLEAN
        return AttrType.ANY

    def _check_comparison(
        self, expr: Cmp, left: AttrType, right: AttrType, path: str
    ) -> None:
        if AttrType.ANY in (left, right) or left == right:
            compatible = True
        else:
            # The widening lattice tops out at STRING: two concrete types
            # only compare meaningfully when one widens into the other.
            compatible = common_type(left, right) != AttrType.STRING or (
                AttrType.STRING in (left, right)
            )
        if not compatible:
            self._report(
                "MDM105",
                f"comparison {expr} mixes {left} and {right}; the executor "
                "will fall back to textual comparison",
                path,
            )
        elif expr.op in _ORDERING_OPS and AttrType.BOOLEAN in (left, right):
            self._report(
                "MDM105",
                f"ordering comparison {expr} over boolean values",
                path,
            )

    # -- plan traversal ------------------------------------------------- #

    def check(self, plan: PlanNode, path: str = "") -> Optional[RelationSchema]:
        label = type(plan).__name__
        path = f"{path}/{label}" if path else label
        if isinstance(plan, Scan):
            if plan.is_pushed():
                bound = self.catalog.get(plan.binding_name())
                if bound is not None:
                    return bound
            schema = self.catalog.get(plan.relation_name)
            if schema is None:
                self._report(
                    "MDM101",
                    f"scan of unknown relation {plan.relation_name!r}; "
                    f"catalog has {sorted(self.catalog)}",
                    path,
                    detail=plan.relation_name,
                )
                return None
            if not plan.is_pushed():
                return schema
            # Pushed scans: validate the folded filters/columns against
            # the base schema the way MDM102/MDM105 would have validated
            # the original Select/Project nodes.
            for column, op, _value in plan.filters:
                attribute = self._require(schema, column, path, "pushed filter")
                if (
                    attribute is not None
                    and op in _ORDERING_OPS
                    and attribute.type is AttrType.BOOLEAN
                ):
                    self._report(
                        "MDM105",
                        f"pushed ordering filter {column} {op} … over "
                        "boolean values",
                        path,
                    )
            if plan.columns is None:
                return schema
            attributes = []
            for name in plan.columns:
                attribute = self._require(schema, name, path, "pushed projection")
                if attribute is not None:
                    attributes.append(attribute)
            if len(attributes) != len(plan.columns):
                return None
            return RelationSchema(attributes)
        if isinstance(plan, Project):
            child = self.check(plan.child, path)
            if child is None:
                return None
            attributes = []
            for name in plan.names:
                attribute = self._require(child, name, path, "projection")
                if attribute is not None:
                    attributes.append(attribute)
            if len(attributes) != len(plan.names):
                return None
            return self._build_schema(attributes, path)
        if isinstance(plan, Select):
            child = self.check(plan.child, path)
            if child is not None:
                self._expr_type(plan.predicate, child, path)
            return child
        if isinstance(plan, Rename):
            child = self.check(plan.child, path)
            if child is None:
                return None
            mapping = plan.mapping_dict()
            for old in mapping:
                self._require(child, old, path, "rename")
            renamed = [
                a.renamed(mapping[a.name]) if a.name in mapping else a
                for a in child.attributes
                if a.name in child
            ]
            return self._build_schema(renamed, path)
        if isinstance(plan, NaturalJoin):
            left = self.check(plan.left, f"{path}[0]")
            right = self.check(plan.right, f"{path}[1]")
            if left is None or right is None:
                return None
            shared = [n for n in left.names if n in right]
            for name in shared:
                self._check_join_types(
                    left.attribute(name).type,
                    right.attribute(name).type,
                    name,
                    path,
                )
            combined = list(left.attributes) + [
                a for a in right.attributes if a.name not in left
            ]
            return self._build_schema(combined, path)
        if isinstance(plan, EquiJoin):
            left = self.check(plan.left, f"{path}[0]")
            right = self.check(plan.right, f"{path}[1]")
            if left is None or right is None:
                return None
            for l_name, r_name in plan.pairs:
                l_attr = self._require(left, l_name, path, "join pair")
                r_attr = self._require(right, r_name, path, "join pair")
                if l_attr is not None and r_attr is not None:
                    self._check_join_types(
                        l_attr.type, r_attr.type, f"{l_name}={r_name}", path
                    )
            combined = list(left.attributes) + [
                a for a in right.attributes if a.name not in left
            ]
            return self._build_schema(combined, path)
        if isinstance(plan, Union):
            left = self.check(plan.left, f"{path}[0]")
            right = self.check(plan.right, f"{path}[1]")
            if left is None or right is None:
                return left or right
            if not left.union_compatible(right):
                self._report(
                    "MDM103",
                    f"union branches disagree: {list(left.names)} vs "
                    f"{list(right.names)}",
                    path,
                )
                return None
            return left.widen(right)
        if isinstance(plan, Distinct):
            return self.check(plan.child, path)
        if isinstance(plan, Extend):
            child = self.check(plan.child, path)
            if child is None:
                return None
            if plan.column in child:
                self._report(
                    "MDM104",
                    f"extend column {plan.column!r} already exists in "
                    f"{list(child.names)}",
                    path,
                    detail=plan.column,
                )
                return child
            try:
                attr_type = (
                    AttrType.ANY if plan.value is None else infer_type(plan.value)
                )
            except TypeError:
                attr_type = AttrType.ANY
            return self._build_schema(
                list(child.attributes) + [Attribute(plan.column, attr_type)],
                path,
            )
        if isinstance(plan, Aggregate):
            child = self.check(plan.child, path)
            if child is None:
                return None
            attributes = []
            for name in plan.group_by:
                attribute = self._require(child, name, path, "group-by")
                if attribute is not None:
                    attributes.append(attribute)
            for function, column, alias in plan.metrics:
                if column != "*":
                    self._require(child, column, path, f"{function}()")
                if function == "count":
                    attr_type = AttrType.INTEGER
                elif function == "avg":
                    attr_type = AttrType.FLOAT
                elif column != "*" and column in child:
                    attr_type = child.attribute(column).type
                else:
                    attr_type = AttrType.ANY
                attributes.append(Attribute(alias, attr_type))
            return self._build_schema(attributes, path)
        # Unknown operator type: nothing to check statically.
        for index, child_plan in enumerate(plan.children()):
            self.check(child_plan, f"{path}[{index}]")
        return None

    def _check_join_types(
        self, left: AttrType, right: AttrType, column: str, path: str
    ) -> None:
        if AttrType.ANY in (left, right) or left == right:
            return
        if common_type(left, right) != AttrType.STRING or AttrType.STRING in (
            left,
            right,
        ):
            return
        self._report(
            "MDM105",
            f"join on {column} mixes {left} and {right}",
            path,
        )

    def _build_schema(
        self, attributes: List[Attribute], path: str
    ) -> Optional[RelationSchema]:
        try:
            return RelationSchema(attributes)
        except SchemaError as exc:
            self._report("MDM104", str(exc), path)
            return None


def check_plan(
    plan: PlanNode, catalog: Catalog
) -> Tuple[List[Finding], Optional[RelationSchema]]:
    """Statically validate ``plan`` against ``catalog``.

    Returns ``(findings, output_schema)``; the schema is ``None`` when an
    error finding prevented derivation.  A plan with no ``error``-severity
    findings is guaranteed to pass the executor's own schema derivation.
    """
    checker = _Checker(catalog)
    schema = checker.check(plan)
    return checker.findings, schema
