"""Deterministic fault injection for the MDM stack.

Two small primitives with a large blast radius:

- :mod:`repro.chaos.failpoints` — a named failpoint registry.  Every
  boundary the system crosses (wrapper fetch, REST serving, retry
  sleeps, the three generation-keyed caches, ``ReadWriteLock``
  acquisition, docstore writes, service admission, snapshot save/load)
  carries a ``fire("site")`` call that is two loads and a branch when
  disarmed, and a seeded deterministic trigger — ``error``, ``delay``,
  ``hang``-until-release, ``corrupt``-payload, ``nth(k)``, ``prob(p)``
  — when armed via ``MDM(failpoints=…)``, ``$MDM_FAILPOINTS``,
  ``POST /failpoints`` or ``repro-mdm serve --failpoints``.
- :mod:`repro.chaos.clock` — the virtual clock the retry/backoff
  machinery and ``delay`` triggers consult, so fault tests assert exact
  backoff schedules without real sleeps.

The chaos harness in ``tests/chaos/`` drives seeded random
interleavings of queries, the nine metadata mutations and failpoint
firings against a per-generation answer oracle, plus crash-recovery
round-trips through the (now atomic) persistence layer.
"""

from __future__ import annotations

from .clock import SystemClock, VirtualClock, get_clock, set_clock, use_clock
from .failpoints import (
    SITES,
    Failpoint,
    FailpointError,
    FailpointRegistry,
    fire,
    get_failpoints,
    parse_spec,
    set_failpoints,
)

__all__ = [
    "SystemClock",
    "VirtualClock",
    "get_clock",
    "set_clock",
    "use_clock",
    "SITES",
    "Failpoint",
    "FailpointError",
    "FailpointRegistry",
    "fire",
    "get_failpoints",
    "parse_spec",
    "set_failpoints",
]
