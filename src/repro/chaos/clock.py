"""Virtual time for deterministic fault testing.

Retry backoff, failpoint delays and timeout tests all want to *reason*
about time without *spending* it: a test that proves exponential backoff
sleeps ``0.01, 0.02, 0.04`` should finish in microseconds, and a chaos
run that injects a 5-second stall must not stall the suite for 5
seconds.  This module provides the single seam through which the
retry/backoff machinery (``RetryPolicy.sleep``) and the failpoint
``delay`` trigger obtain time:

- :class:`SystemClock` — the default; delegates to :mod:`time`.
- :class:`VirtualClock` — ``sleep`` advances a virtual ``now`` instantly
  and records every requested duration in :attr:`VirtualClock.sleeps`,
  so tests can assert the exact backoff schedule with zero wall time.

The process-wide clock is swapped with :func:`set_clock` or, scoped, the
:func:`use_clock` context manager tests rely on.  Module-level
:func:`sleep`/:func:`now` consult whatever clock is active *at call
time*, which is what lets a frozen ``RetryPolicy`` created before the
swap still honor the virtual clock.
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from typing import Iterator, List

__all__ = [
    "SystemClock",
    "VirtualClock",
    "get_clock",
    "set_clock",
    "use_clock",
    "sleep",
    "now",
]


class SystemClock:
    """Real wall-clock time; the process default."""

    def time(self) -> float:
        return _time.time()

    def monotonic(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class VirtualClock:
    """A clock whose ``sleep`` advances virtual time instead of waiting.

    Thread-safe: parallel fetch workers may sleep concurrently.  Every
    requested duration is appended to :attr:`sleeps` in call order, which
    is how backoff tests assert the exact schedule.
    """

    def __init__(self, start: float = 1_000_000.0):
        self._now = start
        self._lock = threading.Lock()
        #: Durations passed to :meth:`sleep`, in call order.
        self.sleeps: List[float] = []

    def time(self) -> float:
        with self._lock:
            return self._now

    def monotonic(self) -> float:
        return self.time()

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            if seconds > 0:
                self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move virtual time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds

    @property
    def total_slept(self) -> float:
        with self._lock:
            return sum(s for s in self.sleeps if s > 0)


_clock = SystemClock()
_clock_lock = threading.Lock()


def get_clock():
    """The process-wide clock (a :class:`SystemClock` unless swapped)."""
    return _clock


def set_clock(clock) -> None:
    """Install ``clock`` process-wide; pass a fresh ``SystemClock`` to reset."""
    global _clock
    with _clock_lock:
        _clock = clock


@contextmanager
def use_clock(clock) -> Iterator[object]:
    """Scoped clock swap — the test isolation primitive::

        with use_clock(VirtualClock()) as clock:
            wrapper.fetch_retrying(policy)
            assert clock.sleeps == [0.01, 0.02]
    """
    previous = get_clock()
    set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


def sleep(seconds: float) -> None:
    """Sleep on the *currently active* clock (the retry-policy default)."""
    get_clock().sleep(seconds)


def now() -> float:
    """Current time on the active clock."""
    return get_clock().time()
