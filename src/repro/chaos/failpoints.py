"""A named failpoint registry for deterministic fault injection.

The paper's claim is that MDM keeps analysts' queries alive *while the
ecosystem changes under them* — which is only credible if every boundary
the system crosses (wrapper fetches, REST calls, retry sleeps, cache
probes, lock acquisitions, docstore writes, service admission, snapshot
save/load) can be made to fail on demand, deterministically, in tests.
This module provides that vocabulary.

Every instrumented call site is a **named failpoint**: production code
calls ``fire("wrapper.fetch", key=name)`` and, when the site is armed,
the registry applies one of six trigger modes:

``error[(message)]``
    raise :class:`FailpointError` at the site;
``delay(seconds)``
    sleep on the active :mod:`~repro.chaos.clock` (instant under a
    :class:`~repro.chaos.clock.VirtualClock`);
``hang[(max_wait_s)]``
    block until :meth:`FailpointRegistry.release` (bounded by
    ``max_wait_s``, default 30 s, so a forgotten release cannot wedge a
    suite);
``corrupt``
    deterministically mangle the payload the site passed in;
plus two *conditions* that compose with any mode: ``nth(k)`` (fire only
on the k-th matching call) and ``prob(p)`` (fire with probability ``p``
from a per-site RNG seeded by the registry seed — same seed, same firing
sequence, always).  ``times(k)`` caps total firings.

Arming surfaces: ``MDM(failpoints=…)``, the ``$MDM_FAILPOINTS`` env
variable, ``POST /failpoints`` on the service, and ``repro-mdm serve
--failpoints``.  The spec grammar is::

    spec  := entry (";" entry)*
    entry := site ["[" key "]"] "=" mode ["(" arg ")"] (":" cond)*
    cond  := "nth(" int ")" | "prob(" float ")" | "times(" int ")"

e.g. ``wrapper.fetch[w1]=error:nth(2);retry.sleep=delay(0.5)``.

**Disarmed overhead is near zero**: :func:`fire` is one global load and
one attribute check before returning — the sites stay compiled into hot
paths (cache probes, lock acquisition) within the < 2 % budget the
parallel-fetch benchmark enforces.

Every trigger increments ``mdm_failpoint_triggers_total{site,mode}``,
tags the current span with ``failpoint=<site>:<mode>``, and appends to
an ordered trigger log — the determinism oracle the chaos harness
replays against.
"""

from __future__ import annotations

import os
import random
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..obs import current_span, get_metrics
from . import clock as chaos_clock

__all__ = [
    "FailpointError",
    "Failpoint",
    "FailpointRegistry",
    "SITES",
    "fire",
    "get_failpoints",
    "set_failpoints",
    "parse_spec",
]

#: The failpoint catalog — every site compiled into production code.
#: Arming a name outside this set (other than the ``x.`` test prefix)
#: raises, so a typo cannot silently arm nothing.
SITES = frozenset(
    {
        "wrapper.fetch",  # key=wrapper name; before each fetch attempt
        "wrapper.payload",  # key=wrapper name; corruptible fetched rows
        "retry.sleep",  # key=wrapper name; before each backoff sleep
        "fetch.apply",  # pushdown FetchRequest application
        "restapi.get",  # key=endpoint path; mock REST endpoint serving
        "cache.rewrite",  # rewrite-cache lookup
        "cache.result",  # result-cache lookup
        "cache.wrapper",  # wrapper-cache lookup
        "lock.read",  # ReadWriteLock.acquire_read
        "lock.write",  # ReadWriteLock.acquire_write
        "docstore.write",  # key=collection name; document mutation
        "docstore.save",  # DocumentStore.save entry
        "service.admission",  # socket server request admission
        "persistence.save",  # save_mdm entry
        "persistence.save.dataset.mid",  # mid TriG temp-file write
        "persistence.save.dataset",  # TriG temp complete, not yet visible
        "persistence.save.commit",  # both temps staged, before replaces
        "persistence.save.metadata",  # dataset visible, metadata still old
        "persistence.load",  # load_mdm entry
        "persistence.load.dataset",  # corruptible TriG text payload
        "persistence.load.metadata",  # before JSONL docstore load
    }
)

_MODES = frozenset({"error", "delay", "hang", "corrupt"})

_ENTRY_RE = re.compile(
    r"^(?P<site>[A-Za-z0-9_.\-]+)"
    r"(?:\[(?P<key>[^\]]+)\])?"
    r"=(?P<action>.+)$"
)
_CALL_RE = re.compile(r"^(?P<name>[a-z]+)(?:\((?P<arg>[^)]*)\))?$")


class FailpointError(RuntimeError):
    """The injected fault raised by an ``error``-mode failpoint."""

    def __init__(self, site: str, message: Optional[str] = None):
        self.site = site
        super().__init__(message or f"failpoint {site!r} fired")


@dataclass
class Failpoint:
    """One armed site: a trigger mode plus its firing conditions."""

    site: str
    mode: str
    arg: Optional[str] = None
    key: Optional[str] = None
    nth: Optional[int] = None
    prob: Optional[float] = None
    times: Optional[int] = None
    calls: int = 0
    fired: int = 0
    rng: random.Random = field(default_factory=random.Random, repr=False)
    event: threading.Event = field(default_factory=threading.Event, repr=False)

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "site": self.site,
            "mode": self.mode,
            "calls": self.calls,
            "fired": self.fired,
        }
        for attr in ("arg", "key", "nth", "prob", "times"):
            value = getattr(self, attr)
            if value is not None:
                out[attr] = value
        return out


def _parse_entry(entry: str) -> Failpoint:
    match = _ENTRY_RE.match(entry.strip())
    if match is None:
        raise ValueError(f"bad failpoint entry {entry!r} (want site[key]=mode(...):cond)")
    site = match.group("site")
    parts = match.group("action").split(":")
    call = _CALL_RE.match(parts[0].strip())
    if call is None or call.group("name") not in _MODES:
        raise ValueError(
            f"bad failpoint mode {parts[0]!r} for site {site!r} "
            f"(want one of {sorted(_MODES)})"
        )
    point = Failpoint(site=site, mode=call.group("name"), arg=call.group("arg"),
                      key=match.group("key"))
    if point.mode == "delay":
        if point.arg is None:
            raise ValueError(f"delay failpoint on {site!r} needs delay(seconds)")
        float(point.arg)  # validate early
    for raw in parts[1:]:
        cond = _CALL_RE.match(raw.strip())
        if cond is None or cond.group("arg") is None:
            raise ValueError(f"bad failpoint condition {raw!r} on site {site!r}")
        name, arg = cond.group("name"), cond.group("arg")
        if name == "nth":
            point.nth = int(arg)
        elif name == "prob":
            point.prob = float(arg)
            if not 0.0 <= point.prob <= 1.0:
                raise ValueError(f"prob({arg}) on {site!r} outside [0, 1]")
        elif name == "times":
            point.times = int(arg)
        else:
            raise ValueError(f"unknown failpoint condition {name!r} on site {site!r}")
    return point


def parse_spec(spec: str) -> List[Failpoint]:
    """Parse a ``site=mode:cond;site2=…`` spec string into failpoints."""
    return [_parse_entry(e) for e in spec.split(";") if e.strip()]


def _corrupt_payload(payload: Any) -> Any:
    """Deterministic payload corruption (no RNG — the *decision* to fire
    is where seeded randomness lives; the mangling itself is a pure
    function so oracle checks stay reproducible)."""
    if isinstance(payload, str):
        return payload[: len(payload) // 2] + "\x00corrupt\x00"
    if isinstance(payload, bytes):
        return payload[: len(payload) // 2] + b"\x00corrupt\x00"
    if isinstance(payload, (list, tuple)):
        items = [_corrupt_payload(item) for item in payload[:-1]]
        return type(payload)(items)
    if isinstance(payload, dict):
        return {k: _corrupt_payload(v) for k, v in payload.items()}
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        return -payload - 1
    return payload


class FailpointRegistry:
    """All armed failpoints plus the ordered trigger log.

    Deterministic by construction: each armed point owns a
    ``random.Random`` seeded from ``(registry seed, site)``, so a fixed
    seed yields an identical firing sequence run after run regardless of
    what else the process does with the global RNG.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._lock = threading.Lock()
        self._points: Dict[str, Failpoint] = {}
        self._log: List[Dict[str, Any]] = []
        # Read without the lock on the fire() fast path — a stale False
        # only delays arming by one already-in-flight call.
        self._armed = False

    # ------------------------------------------------------------------ #
    # arming / disarming
    # ------------------------------------------------------------------ #

    def arm(self, point: Failpoint) -> Failpoint:
        """Arm one failpoint (re-arming a site replaces it)."""
        if point.site not in SITES and not point.site.startswith("x."):
            raise ValueError(
                f"unknown failpoint site {point.site!r}; known sites: "
                f"{', '.join(sorted(SITES))} (or the 'x.' test prefix)"
            )
        point.rng = random.Random(f"{self.seed}:{point.site}")
        with self._lock:
            self._points[point.site] = point
            self._armed = True
        return point

    def arm_spec(self, spec: str) -> List[Failpoint]:
        """Parse and arm every entry of a spec string."""
        return [self.arm(point) for point in parse_spec(spec)]

    def disarm(self, site: str) -> bool:
        """Disarm one site; returns whether it was armed."""
        with self._lock:
            found = self._points.pop(site, None)
            self._armed = bool(self._points)
        if found is not None:
            found.event.set()  # free any thread hanging on it
            return True
        return False

    def clear(self) -> None:
        """Disarm everything and forget the trigger log."""
        with self._lock:
            points = list(self._points.values())
            self._points.clear()
            self._log.clear()
            self._armed = False
        for point in points:
            point.event.set()

    def release(self, site: Optional[str] = None) -> int:
        """Release ``hang`` failpoints (all of them when ``site`` is None)."""
        released = 0
        with self._lock:
            points = list(self._points.values())
        for point in points:
            if site is None or point.site == site:
                point.event.set()
                released += 1
        return released

    @property
    def armed(self) -> bool:
        return self._armed

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #

    def fire(self, site: str, payload: Any = None, key: Optional[str] = None) -> Any:
        """Evaluate ``site``; apply its trigger if armed and due.

        Returns the (possibly corrupted) payload; raises
        :class:`FailpointError` for ``error`` mode.
        """
        with self._lock:
            point = self._points.get(site)
            if point is None:
                return payload
            if point.key is not None and point.key != key:
                return payload
            point.calls += 1
            if point.nth is not None and point.calls != point.nth:
                return payload
            if point.times is not None and point.fired >= point.times:
                return payload
            if point.prob is not None and point.rng.random() >= point.prob:
                return payload
            point.fired += 1
            self._log.append(
                {"seq": len(self._log) + 1, "site": site, "mode": point.mode, "key": key}
            )
        # Effects happen outside the registry lock: a hanging or sleeping
        # failpoint must not serialize every other site in the process.
        self._record(site, point.mode)
        if point.mode == "error":
            raise FailpointError(site, point.arg)
        if point.mode == "delay":
            chaos_clock.sleep(float(point.arg or 0.0))
        elif point.mode == "hang":
            point.event.wait(timeout=float(point.arg) if point.arg else 30.0)
        elif point.mode == "corrupt":
            return _corrupt_payload(payload)
        return payload

    @staticmethod
    def _record(site: str, mode: str) -> None:
        get_metrics().counter(
            "mdm_failpoint_triggers_total",
            "Failpoint triggers by site and mode.",
            labelnames=("site", "mode"),
        ).inc(site=site, mode=mode)
        span = current_span()
        if span is not None:
            span.set_tag("failpoint", f"{site}:{mode}")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def trigger_log(self) -> List[Dict[str, Any]]:
        """The ordered trigger history (the determinism oracle)."""
        with self._lock:
            return [dict(entry) for entry in self._log]

    def state(self) -> Dict[str, Any]:
        """JSON-ready snapshot for ``GET /failpoints``."""
        with self._lock:
            return {
                "seed": self.seed,
                "armed": [p.describe() for p in sorted(self._points.values(),
                                                       key=lambda p: p.site)],
                "triggers": len(self._log),
                "log": [dict(entry) for entry in self._log[-50:]],
            }


# ---------------------------------------------------------------------- #
# process-wide registry + the fire() fast path
# ---------------------------------------------------------------------- #

_registry: Optional[FailpointRegistry] = None
_registry_lock = threading.Lock()


def _env_seed() -> int:
    try:
        return int(os.environ.get("MDM_FAILPOINT_SEED", "0"))
    except ValueError:
        return 0


def get_failpoints() -> FailpointRegistry:
    """The process-wide registry (created, and armed from
    ``$MDM_FAILPOINTS``, on first use)."""
    global _registry
    with _registry_lock:
        if _registry is None:
            _registry = FailpointRegistry(seed=_env_seed())
            spec = os.environ.get("MDM_FAILPOINTS")
            if spec:
                _registry.arm_spec(spec)
        return _registry


def set_failpoints(registry: Optional[FailpointRegistry]) -> None:
    """Swap the process registry (tests install a fresh one per case)."""
    global _registry
    with _registry_lock:
        _registry = registry


def fire(site: str, payload: Any = None, key: Optional[str] = None) -> Any:
    """Evaluate a failpoint site against the process registry.

    This is the call compiled into production code paths, so the
    disarmed path is two loads and a branch — nothing else.
    """
    registry = _registry
    if registry is None or not registry._armed:
        return payload
    return registry.fire(site, payload=payload, key=key)


_hook_installed = False


def _install_hooks() -> None:
    """Inject :func:`fire` into modules that must stay stdlib-only.

    ``core.locking`` documents "no imports from the rest of repro"; it
    exposes an optional callback instead, installed here the first time
    the chaos package loads (which any arming surface guarantees).
    """
    global _hook_installed
    if _hook_installed:
        return
    from ..core import locking

    locking.set_failpoint_hook(fire)
    _hook_installed = True


_install_hooks()

if os.environ.get("MDM_FAILPOINTS"):
    get_failpoints()
