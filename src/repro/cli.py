"""Command-line interface for the MDM reproduction.

Usage (``python -m repro <command>``):

``demo``
    run the motivational use case end-to-end and print every artifact
    (walk, SPARQL, algebra, result table);
``query``
    pose an OMQ against a built-in scenario, either as node IRIs
    (``--nodes``) or as SPARQL text (``--sparql`` / ``--sparql-file``);
``summary`` / ``validate`` / ``impact``
    introspection over a scenario or a saved snapshot directory;
``snapshot``
    build a scenario and persist it (TriG + JSONL) to a directory;
``evolve``
    run the governance demo: ship the breaking Players API v2 and show
    the before/after algebra;
``trace``
    execute an OMQ with tracing enabled and print the span tree (the
    three rewriting phases, wrapper fetches, per-operator execution)
    plus the EXPLAIN ANALYZE operator statistics;
``lint``
    run the static diagnostics over a scenario or snapshot: the
    metadata rule pack (MDM0xx) plus the relational schema checker over
    every saved query's plan (MDM1xx).  ``--format json`` for machines,
    ``--strict`` to fail on warnings too;
``serve``
    expose the REST API over real HTTP sockets
    (:mod:`repro.service.server`): scenario or snapshot behind a
    threading server with admission control and the query result and
    wrapper data caches enabled (``--port``, ``--max-in-flight``,
    ``--result-cache``, ``--wrapper-cache``).

Snapshot-based commands (``--store DIR``) work without runtime wrappers;
query execution needs live wrappers and therefore runs against the
built-in scenarios (``--scenario football|supersede``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.mdm import MDM
from .core.sparql_frontend import walk_from_sparql
from .rdf.terms import IRI

__all__ = ["main", "build_parser"]


def _load_scenario(name: str):
    if name == "football":
        from .scenarios.football import FootballScenario

        return FootballScenario.build(anchors_only=True)
    if name == "football-large":
        from .scenarios.football import FootballScenario

        return FootballScenario.build(seed=2018)
    if name == "supersede":
        from .scenarios.supersede import SupersedeScenario

        return SupersedeScenario.build()
    raise SystemExit(f"unknown scenario {name!r}; use football | football-large | supersede")


def _lint_mdm_for(args) -> MDM:
    """Lint targets: snapshots plus every bundled scenario, including
    the synthetic generators and the deliberately broken fixture."""
    if getattr(args, "store", None):
        from .service.persistence import load_mdm

        return load_mdm(args.store)
    name = args.scenario
    if name == "broken":
        from .scenarios.broken import broken_mdm

        return broken_mdm()
    if name == "chain":
        from .scenarios.synthetic import chain_mdm

        return chain_mdm(4)[0]
    if name == "versioned":
        from .scenarios.synthetic import versioned_concept_mdm

        return versioned_concept_mdm(3)[0]
    return _load_scenario(name).mdm


def _mdm_for(args) -> MDM:
    if getattr(args, "store", None):
        from .service.persistence import load_mdm

        return load_mdm(args.store)
    return _load_scenario(args.scenario).mdm


def cmd_demo(args) -> int:
    from .scenarios.football import FootballScenario

    scenario = FootballScenario.build(anchors_only=True)
    mdm = scenario.mdm
    walk = scenario.walk_player_team_names()
    outcome = mdm.execute(walk)
    print("walk:", walk.describe(mdm.global_graph))
    print("\nSPARQL:\n" + outcome.rewrite.sparql)
    print("\nrelational algebra:\n" + outcome.rewrite.pretty())
    print("\n" + outcome.rewrite.explain())
    print("\nresult:\n" + outcome.to_table())
    return 0


def _apply_execution_flags(mdm, args) -> None:
    """Fold --fetch-workers/--retry-*/--no-optimize flags into the MDM."""
    policy = None
    attempts = getattr(args, "retry_attempts", None)
    timeout = getattr(args, "retry_timeout", None)
    if attempts is not None or timeout is not None:
        from .sources.wrappers import RetryPolicy

        policy = RetryPolicy(attempts=attempts or 1, timeout_s=timeout)
    validate = None
    if getattr(args, "no_validate_plans", False):
        validate = False
    elif getattr(args, "validate_plans", False):
        validate = True
    mdm.configure_execution(
        max_fetch_workers=getattr(args, "fetch_workers", None),
        retry_policy=policy,
        optimize=False if getattr(args, "no_optimize", False) else None,
        validate_plans=validate,
        pushdown=False if getattr(args, "no_pushdown", False) else None,
    )


def cmd_query(args) -> int:
    scenario = _load_scenario(args.scenario)
    mdm = scenario.mdm
    _apply_execution_flags(mdm, args)
    if args.sparql or args.sparql_file:
        text = args.sparql or open(args.sparql_file).read()
        walk = walk_from_sparql(mdm.global_graph, text)
    elif args.nodes:
        walk = mdm.walk_from_nodes([IRI(n) for n in args.nodes])
    else:
        raise SystemExit("query needs --nodes or --sparql/--sparql-file")
    outcome = mdm.execute(walk, on_wrapper_error="skip")
    if args.explain:
        print(outcome.rewrite.explain())
        print("\nalgebra: " + outcome.rewrite.pretty())
        print()
    print(outcome.to_table())
    if outcome.skipped_wrappers:
        print(f"\n(skipped failing wrappers: {', '.join(outcome.skipped_wrappers)})",
              file=sys.stderr)
    return 0


def cmd_summary(args) -> int:
    mdm = _mdm_for(args)
    for key, value in mdm.summary().items():
        print(f"{key:>9}: {value}")
    return 0


def cmd_validate(args) -> int:
    mdm = _mdm_for(args)
    issues = mdm.validate()
    if not issues:
        print("OK: no structural issues")
        return 0
    for issue in issues:
        print(f"ISSUE: {issue}")
    return 1


def cmd_impact(args) -> int:
    mdm = _mdm_for(args)

    proposals = []
    if args.retire:
        from .analysis.impact import WrapperRetirement

        proposals.extend(WrapperRetirement(name) for name in args.retire)
    if args.propose or args.propose_file:
        from .analysis.impact import change_from_json_text

        text = args.propose or open(args.propose_file).read()
        proposals.append(change_from_json_text(text))

    if proposals:
        exit_code = 0
        payloads = []
        for change in proposals:
            report = mdm.analyze_impact(change)
            if args.format == "json":
                payloads.append(report.to_json_dict())
            else:
                if payloads:  # separator between multiple reports
                    print()
                payloads.append(None)
                print(report.render_text())
            exit_code = max(exit_code, report.exit_code(strict=args.strict))
        if args.format == "json":
            import json

            out = payloads[0] if len(payloads) == 1 else payloads
            print(json.dumps(out, indent=2, sort_keys=True))
        return exit_code

    if not args.source:
        raise SystemExit(
            "impact needs a SOURCE (descriptive report) or a proposed "
            "change (--retire / --propose / --propose-file)"
        )
    report = mdm.impact_of_source(args.source)
    if args.format == "json":
        import json

        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0
    print(f"source   : {report['source']}")
    print(f"wrappers : {', '.join(report['wrappers'])}")
    print(f"affected queries : {report['affected_queries']}")
    for walk in report["affected_query_walks"]:
        print(f"  - {walk}")
    print("features exclusively covered by this source:")
    for feature in report["exclusively_covered_features"]:
        print(f"  - {feature}")
    return 0


def cmd_snapshot(args) -> int:
    from .service.persistence import save_mdm

    scenario = _load_scenario(args.scenario)
    target = save_mdm(scenario.mdm, args.out)
    print(f"saved {scenario.mdm.summary()['triples']} triples to {target}")
    return 0


def cmd_show(args) -> int:
    mdm = _mdm_for(args)
    if args.format == "dot":
        print(mdm.global_graph.to_dot())
    elif args.format == "turtle":
        from .rdf.turtle import serialize_turtle

        print(serialize_turtle(mdm.global_graph.graph))
    else:
        gg = mdm.global_graph
        ns = gg.graph.namespaces
        for concept in gg.concepts():
            features = ", ".join(
                (ns.compact(f) or f.value)
                + (" [id]" if gg.is_identifier(f) else "")
                for f in gg.features_of(concept)
            )
            print(f"{ns.compact(concept) or concept.value}: {features}")
        for relation in gg.relations():
            print(
                f"{ns.compact(relation.subject)} --"
                f"{ns.compact(relation.predicate)}--> "
                f"{ns.compact(relation.object)}"
            )
    return 0


def cmd_report(args) -> int:
    from .core.reporting import governance_report, render_report

    mdm = _mdm_for(args)
    report = governance_report(
        mdm,
        execute_queries=args.execute,
        include_metrics=args.metrics,
    )
    print(render_report(report))
    return 0 if not report["issues"] and not report["saved_queries"]["broken"] else 1


def _default_walk(args, scenario):
    """The traced walk: explicit ``--nodes``/``--sparql`` or a scenario default."""
    mdm = scenario.mdm
    if args.sparql or args.sparql_file:
        text = args.sparql or open(args.sparql_file).read()
        return walk_from_sparql(mdm.global_graph, text)
    if args.nodes:
        return mdm.walk_from_nodes([IRI(n) for n in args.nodes])
    if hasattr(scenario, "walk_league_nationality"):
        return scenario.walk_league_nationality()
    return scenario.walk_feedback_by_product()


def _follow_querylog(args) -> int:
    """Tail a query-log JSONL file, one summary line per record.

    Polls the file for appended lines; stops after ``--max-records``
    records or ``--idle-timeout`` quiet seconds (both unbounded by
    default, so interactive use runs until ctrl-c).
    """
    import json
    import os
    import time

    from .obs.querylog import QueryLogRecord

    path = args.querylog or os.environ.get("MDM_QUERYLOG")
    if not path:
        raise SystemExit(
            "trace --follow needs --querylog PATH (or $MDM_QUERYLOG)"
        )
    position = 0
    if not args.from_start and os.path.exists(path):
        position = os.path.getsize(path)
    print(f"following query log {path} (ctrl-c to stop)", file=sys.stderr)
    printed = 0
    idle_s = 0.0
    try:
        while True:
            lines: List[str] = []
            if os.path.exists(path):
                with open(path, encoding="utf-8") as fh:
                    fh.seek(position)
                    lines = fh.readlines()
                    position = fh.tell()
            fresh = 0
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = QueryLogRecord.from_dict(json.loads(line))
                except (ValueError, TypeError):
                    continue
                print(record.summary_line())
                fresh += 1
                printed += 1
                if args.max_records is not None and printed >= args.max_records:
                    return 0
            if fresh:
                idle_s = 0.0
                continue
            idle_s += args.poll_interval
            if args.idle_timeout is not None and idle_s >= args.idle_timeout:
                return 0
            time.sleep(args.poll_interval)
    except KeyboardInterrupt:
        return 0


def cmd_trace(args) -> int:
    from .obs import JsonlSink, Tracer, get_tracer, set_tracer

    if args.follow:
        return _follow_querylog(args)

    scenario = _load_scenario(args.scenario)
    mdm = scenario.mdm
    _apply_execution_flags(mdm, args)
    walk = _default_walk(args, scenario)
    tracer = Tracer(
        enabled=True,
        sample_rate=args.sample_rate if args.sample_rate is not None else 1.0,
        slow_threshold_ms=args.slow_ms,
    )
    sink = None
    previous = get_tracer()
    try:
        if args.jsonl:
            sink = JsonlSink(args.jsonl)
            tracer.add_sink(sink)
        set_tracer(tracer)
        outcome = mdm.execute(walk, on_wrapper_error="skip", analyze=True)
    finally:
        # Restore the previous tracer and release the JSONL file handle
        # even when the traced command raises.
        set_tracer(previous)
        if sink is not None:
            sink.close()
    print("walk:", walk.describe(mdm.global_graph))
    print()
    roots = tracer.recent()
    if roots:
        for span in roots:
            print(span.tree())
    else:
        print(
            f"(no trace recorded: sample_rate={tracer.sample_rate}, "
            f"slow_threshold_ms={tracer.slow_threshold_ms})"
        )
    print()
    print(outcome.explain_analyze())
    if outcome.skipped_wrappers:
        print(f"\n(skipped failing wrappers: {', '.join(outcome.skipped_wrappers)})",
              file=sys.stderr)
    if args.jsonl:
        print(f"\n(spans appended to {args.jsonl})", file=sys.stderr)
    return 0


def cmd_save_query(args) -> int:
    from .service.persistence import load_mdm, save_mdm

    mdm = load_mdm(args.store)
    walk = mdm.walk_from_nodes([IRI(n) for n in args.nodes])
    mdm.saved_queries.save(args.name, walk, args.description or "")
    save_mdm(mdm, args.store)
    print(f"saved query {args.name!r} "
          f"({walk.describe(mdm.global_graph)}) to {args.store}")
    return 0


def cmd_revalidate(args) -> int:
    mdm = _mdm_for(args)
    report = mdm.saved_queries.revalidate(execute=args.execute)
    if not report:
        print("no saved queries registered")
        return 0
    broken = 0
    for entry in report:
        if entry.ok:
            rows = f", {entry.rows} rows" if entry.rows is not None else ""
            print(f"OK     {entry.name} (UCQ size {entry.ucq_size}{rows})")
        else:
            broken += 1
            print(f"BROKEN {entry.name}: {entry.error}")
    print(f"\n{len(report) - broken}/{len(report)} healthy")
    return 1 if broken else 0


def cmd_lint(args) -> int:
    from .analysis import lint_mdm

    mdm = _lint_mdm_for(args)
    report = lint_mdm(
        mdm,
        replay_saved=not args.no_saved_queries,
        check_plans=not args.no_plans,
    )
    if args.format == "json":
        import json

        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


def cmd_evolve(args) -> int:
    from .scenarios.football import FootballScenario

    scenario = FootballScenario.build(anchors_only=True)
    walk = scenario.walk_player_team_names()
    before = scenario.mdm.execute(walk)
    print("before release:", before.rewrite.pretty())
    scenario.release_players_v2(retire_v1=args.retire_v1)
    after = scenario.mdm.execute(walk, on_wrapper_error="skip")
    print("after release :", after.rewrite.pretty())
    print(f"\nUCQ grew {before.rewrite.ucq_size} -> {after.rewrite.ucq_size}; "
          f"rows identical: {set(after.relation.rows) == set(before.relation.rows)}")
    return 0


def cmd_serve(args) -> int:
    import time as _time

    from .service.api import MdmService
    from .service.server import MdmHttpServer

    mdm = MDM() if args.empty else _mdm_for(args)
    _apply_execution_flags(mdm, args)
    # Behind a server the metadata only changes through the write-locked
    # mutators, so generation-keyed result and wrapper-data caching are
    # safe — enable them by default (unlike the library, where wrappers
    # may be live feeds).
    mdm.configure_execution(
        result_cache_size=args.result_cache,
        wrapper_cache_size=args.wrapper_cache,
    )
    if args.failpoints:
        from .chaos.failpoints import get_failpoints

        armed = get_failpoints().arm_spec(args.failpoints)
        print(f"armed failpoints: {', '.join(p.site for p in armed)}")
    service = MdmService(mdm)
    server = MdmHttpServer(
        service,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        retry_after_s=args.retry_after,
    )
    print(
        f"serving MDM on {server.url} "
        f"(max in-flight {server.max_in_flight}, "
        f"result cache {mdm.result_cache.capacity}, "
        f"wrapper cache {mdm.wrapper_cache.capacity}, ctrl-C to stop)"
    )
    server.start()
    try:
        if args.duration is not None:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("server stopped")
    return 0


def _add_execution_flags(parser) -> None:
    parser.add_argument(
        "--fetch-workers",
        type=int,
        help="bound on concurrent wrapper fetches (default: "
        "$MDM_FETCH_WORKERS or 4)",
    )
    parser.add_argument(
        "--retry-attempts",
        type=int,
        help="fetch attempts per wrapper before giving up (default 1)",
    )
    parser.add_argument(
        "--retry-timeout",
        type=float,
        help="per-attempt wrapper fetch timeout in seconds",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="execute the UCQ as rewritten, skipping the logical plan "
        "optimizer (default: optimize, or $MDM_OPTIMIZE)",
    )
    parser.add_argument(
        "--validate-plans",
        action="store_true",
        help="force the static plan schema check before execution "
        "(default: on, or $MDM_VALIDATE_PLANS)",
    )
    parser.add_argument(
        "--no-validate-plans",
        action="store_true",
        help="skip the static plan schema check before execution",
    )
    parser.add_argument(
        "--no-pushdown",
        action="store_true",
        help="fetch full wrapper payloads instead of pushing predicates/"
        "projections to the sources (default: push, or $MDM_PUSHDOWN)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MDM reproduction: ontology-based integration under schema evolution",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="run the motivational use case")
    p_demo.set_defaults(func=cmd_demo)

    p_query = sub.add_parser("query", help="pose an OMQ against a scenario")
    p_query.add_argument("--scenario", default="football")
    p_query.add_argument("--nodes", nargs="*", help="global-graph node IRIs")
    p_query.add_argument("--sparql", help="inline SPARQL text")
    p_query.add_argument("--sparql-file", help="file with SPARQL text")
    p_query.add_argument("--explain", action="store_true")
    _add_execution_flags(p_query)
    p_query.set_defaults(func=cmd_query)

    for name, func in (
        ("summary", cmd_summary),
        ("validate", cmd_validate),
    ):
        p = sub.add_parser(name, help=f"{name} of a scenario or snapshot")
        p.add_argument("--scenario", default="football")
        p.add_argument("--store", help="snapshot directory (overrides --scenario)")
        p.set_defaults(func=func)

    p_impact = sub.add_parser(
        "impact",
        help="impact analysis: source report or what-if over proposed changes",
        description=(
            "With SOURCE alone, print the descriptive impact report for an "
            "existing source. With --retire/--propose/--propose-file, run "
            "the static what-if analyzer: the proposed change is applied to "
            "a shadow copy of the metadata graph and every saved query, "
            "concept and feature is classified SAFE / DEGRADED / BROKEN "
            "(MDM2xx diagnostics) without fetching a single source row."
        ),
        epilog=(
            "exit codes mirror `lint`: 0 = SAFE (or DEGRADED without "
            "--strict), 1 = BROKEN, or DEGRADED under --strict."
        ),
    )
    p_impact.add_argument(
        "source",
        nargs="?",
        help="source name for the descriptive report (omit for what-if mode)",
    )
    p_impact.add_argument("--scenario", default="football")
    p_impact.add_argument("--store", help="snapshot directory")
    p_impact.add_argument(
        "--retire",
        action="append",
        metavar="WRAPPER",
        help="what-if: retire this wrapper (repeatable)",
    )
    p_impact.add_argument(
        "--propose",
        help="what-if: proposed change as inline JSON "
        '(e.g. \'{"retire": "w1"}\' or \'{"release": {...}}\')',
    )
    p_impact.add_argument(
        "--propose-file", help="what-if: file with the proposed-change JSON"
    )
    p_impact.add_argument("--format", choices=["text", "json"], default="text")
    p_impact.add_argument(
        "--strict", action="store_true", help="exit non-zero on DEGRADED too"
    )
    p_impact.set_defaults(func=cmd_impact)

    p_snapshot = sub.add_parser("snapshot", help="persist a scenario to a directory")
    p_snapshot.add_argument("out")
    p_snapshot.add_argument("--scenario", default="football")
    p_snapshot.set_defaults(func=cmd_snapshot)

    p_lint = sub.add_parser(
        "lint",
        help="static diagnostics: metadata rules + plan schema checks",
        epilog=(
            "exit codes: 0 = clean, or warnings only without --strict; "
            "1 = any error-severity finding, or any warning under "
            "--strict. --format json changes the output shape only, "
            "never the exit code."
        ),
    )
    p_lint.add_argument(
        "--scenario",
        default="football",
        help="football | football-large | supersede | chain | versioned | broken",
    )
    p_lint.add_argument("--store", help="snapshot directory (overrides --scenario)")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    p_lint.add_argument(
        "--no-saved-queries",
        action="store_true",
        help="skip replaying saved queries through the rewriter",
    )
    p_lint.add_argument(
        "--no-plans",
        action="store_true",
        help="skip the relational schema check over saved-query plans",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_evolve = sub.add_parser("evolve", help="run the governance demo")
    p_evolve.add_argument("--retire-v1", action="store_true")
    p_evolve.set_defaults(func=cmd_evolve)

    p_save_query = sub.add_parser(
        "save-query", help="save a named walk into a snapshot"
    )
    p_save_query.add_argument("name")
    p_save_query.add_argument("--store", required=True)
    p_save_query.add_argument("--nodes", nargs="+", required=True)
    p_save_query.add_argument("--description")
    p_save_query.set_defaults(func=cmd_save_query)

    p_revalidate = sub.add_parser(
        "revalidate", help="re-check all saved queries (exit 1 if any broke)"
    )
    p_revalidate.add_argument("--scenario", default="football")
    p_revalidate.add_argument("--store", help="snapshot directory")
    p_revalidate.add_argument(
        "--execute", action="store_true", help="also execute each query"
    )
    p_revalidate.set_defaults(func=cmd_revalidate)

    p_report = sub.add_parser("report", help="full governance report")
    p_report.add_argument("--scenario", default="football")
    p_report.add_argument("--store", help="snapshot directory")
    p_report.add_argument("--execute", action="store_true")
    p_report.add_argument(
        "--metrics", action="store_true",
        help="append a snapshot of the process metrics registry",
    )
    p_report.set_defaults(func=cmd_report)

    p_trace = sub.add_parser(
        "trace", help="execute an OMQ with tracing and print the span tree"
    )
    p_trace.add_argument("--scenario", default="football")
    p_trace.add_argument("--nodes", nargs="*", help="global-graph node IRIs")
    p_trace.add_argument("--sparql", help="inline SPARQL text")
    p_trace.add_argument("--sparql-file", help="file with SPARQL text")
    p_trace.add_argument("--jsonl", help="also append spans to this JSONL file")
    p_trace.add_argument(
        "--sample-rate",
        type=float,
        help="probability a trace is kept (default 1.0 for this command)",
    )
    p_trace.add_argument(
        "--slow-ms",
        type=float,
        help="also keep unsampled traces slower than this many milliseconds",
    )
    p_trace.add_argument(
        "--follow",
        action="store_true",
        help="tail the query-log JSONL instead of executing a query",
    )
    p_trace.add_argument(
        "--querylog",
        help="query-log JSONL file to tail (default: $MDM_QUERYLOG)",
    )
    p_trace.add_argument(
        "--from-start",
        action="store_true",
        help="with --follow, print existing records before tailing",
    )
    p_trace.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="with --follow, seconds between polls (default 0.2)",
    )
    p_trace.add_argument(
        "--idle-timeout",
        type=float,
        help="with --follow, stop after this many quiet seconds",
    )
    p_trace.add_argument(
        "--max-records",
        type=int,
        help="with --follow, stop after printing this many records",
    )
    _add_execution_flags(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="serve the REST API over real HTTP sockets"
    )
    p_serve.add_argument("--scenario", default="football")
    p_serve.add_argument("--store", help="serve a persisted snapshot directory")
    p_serve.add_argument(
        "--empty", action="store_true", help="start from an empty MDM"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8585, help="port to bind (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--max-in-flight",
        type=int,
        default=32,
        help="admission control: concurrent requests before 429 (default 32)",
    )
    p_serve.add_argument(
        "--retry-after",
        type=int,
        default=1,
        help="Retry-After seconds advertised on 429 responses (default 1)",
    )
    p_serve.add_argument(
        "--result-cache",
        type=int,
        default=256,
        help="query result cache capacity, 0 disables (default 256)",
    )
    p_serve.add_argument(
        "--wrapper-cache",
        type=int,
        default=128,
        help="wrapper data cache capacity (fetched relations keyed by "
        "request and generation), 0 disables (default 128)",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then exit (smoke tests; default: forever)",
    )
    p_serve.add_argument(
        "--failpoints",
        default=None,
        metavar="SPEC",
        help="arm failpoints before serving, e.g. "
        "'wrapper.fetch[w1]=error:nth(2);retry.sleep=delay(0)' "
        "(also settable live via POST /failpoints)",
    )
    _add_execution_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_show = sub.add_parser("show", help="print the global graph")
    p_show.add_argument("--scenario", default="football")
    p_show.add_argument("--store", help="snapshot directory")
    p_show.add_argument(
        "--format", choices=["text", "dot", "turtle"], default="text"
    )
    p_show.set_defaults(func=cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): exit quietly.
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
