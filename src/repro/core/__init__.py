"""MDM core: the BDI ontology, LAV mappings and query rewriting.

The primary entry point is :class:`repro.core.mdm.MDM`; the building
blocks (global graph, source graph, mapping store, rewriter, GAV
baseline) are importable individually for embedding and testing.
"""

from .errors import (
    DisconnectedWalkError,
    GavUnfoldingError,
    GlobalGraphError,
    MappingError,
    MdmError,
    MissingIdentifierError,
    NoCoverError,
    PlanValidationError,
    RewritingError,
    SourceGraphError,
    WalkError,
)
from .gav_baseline import GavEdgeDef, GavFeatureDef, GavSystem
from .global_graph import GlobalGraph, UmlAssociation, UmlClass, UmlModel
from .lav import LavMapping, LavMappingStore, MappingView
from .mdm import MDM, QueryOutcome
from .registry import QueryRegistry, RevalidationEntry, SavedQuery
from .reporting import governance_report, render_report
from .releases import (
    KIND_EVOLUTION,
    KIND_NEW_SOURCE,
    GovernanceLog,
    MappingSuggestion,
    Release,
    suggest_mapping,
)
from .rewriting import ConjunctiveQuery, Rewriter, RewriteResult
from .source_graph import SourceGraph, WrapperRegistration
from .diffing import SignatureDiff, diff_signatures
from .matching import LinkSuggestion, name_similarity, suggest_links
from .sparql_frontend import walk_from_sparql
from .vocabulary import G, IDENTIFIER, M, S, mdm_namespace_manager
from .walks import FilterCondition, Walk, concept_variable_names, feature_column_names

__all__ = [
    "MDM",
    "QueryOutcome",
    "GlobalGraph",
    "UmlModel",
    "UmlClass",
    "UmlAssociation",
    "SourceGraph",
    "WrapperRegistration",
    "LavMappingStore",
    "LavMapping",
    "MappingView",
    "Walk",
    "FilterCondition",
    "walk_from_sparql",
    "SignatureDiff",
    "diff_signatures",
    "LinkSuggestion",
    "suggest_links",
    "name_similarity",
    "feature_column_names",
    "concept_variable_names",
    "Rewriter",
    "RewriteResult",
    "ConjunctiveQuery",
    "GavSystem",
    "GavFeatureDef",
    "GavEdgeDef",
    "GovernanceLog",
    "QueryRegistry",
    "governance_report",
    "render_report",
    "SavedQuery",
    "RevalidationEntry",
    "Release",
    "MappingSuggestion",
    "suggest_mapping",
    "KIND_NEW_SOURCE",
    "KIND_EVOLUTION",
    "G",
    "S",
    "M",
    "IDENTIFIER",
    "mdm_namespace_manager",
    "MdmError",
    "GlobalGraphError",
    "SourceGraphError",
    "MappingError",
    "WalkError",
    "DisconnectedWalkError",
    "RewritingError",
    "NoCoverError",
    "MissingIdentifierError",
    "GavUnfoldingError",
    "PlanValidationError",
]
