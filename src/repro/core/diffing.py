"""Schema-version diffing: explain what changed between wrapper releases.

Given two wrapper signatures (and optionally sample rows), derive the
:class:`~repro.sources.evolution.SchemaChange`-style story of the
release: kept attributes, additions, removals, and *probable renames*
(a removed and an added attribute whose names look alike, or whose sample
values overlap).  The governance log stores this next to the release so
"the maintenance of such data analysis processes" has an audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Set, Tuple

from .matching import name_similarity

__all__ = ["SignatureDiff", "diff_signatures"]


@dataclass(frozen=True)
class SignatureDiff:
    """The delta between two wrapper signatures."""

    kept: Tuple[str, ...]
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    #: Probable (old, new, confidence) rename pairs.
    renames: Tuple[Tuple[str, str, float], ...]

    @property
    def is_breaking(self) -> bool:
        """Whether consumers of the old signature would break."""
        return bool(self.removed) or bool(self.renames)

    def describe(self) -> List[str]:
        """Human change lines, ready for a governance log."""
        lines: List[str] = []
        for old, new, confidence in self.renames:
            lines.append(f"rename {old} -> {new} (confidence {confidence:.2f})")
        for name in self.removed:
            lines.append(f"remove {name}")
        for name in self.added:
            lines.append(f"add {name}")
        return lines


def _value_overlap(
    old_rows: Sequence[Mapping[str, Any]],
    new_rows: Sequence[Mapping[str, Any]],
    old_name: str,
    new_name: str,
) -> float:
    """Jaccard overlap of the two attributes' sample value sets."""
    old_values = {
        repr(r[old_name]) for r in old_rows if r.get(old_name) is not None
    }
    new_values = {
        repr(r[new_name]) for r in new_rows if r.get(new_name) is not None
    }
    if not old_values or not new_values:
        return 0.0
    return len(old_values & new_values) / len(old_values | new_values)


def diff_signatures(
    old_attributes: Sequence[str],
    new_attributes: Sequence[str],
    old_rows: Optional[Sequence[Mapping[str, Any]]] = None,
    new_rows: Optional[Sequence[Mapping[str, Any]]] = None,
    rename_threshold: float = 0.55,
) -> SignatureDiff:
    """Diff two signatures, detecting probable renames.

    Rename scoring combines name similarity with (when sample rows are
    supplied) the overlap of observed values; pairs above
    ``rename_threshold`` are greedily matched best-first.
    """
    old_set, new_set = set(old_attributes), set(new_attributes)
    kept = tuple(a for a in old_attributes if a in new_set)
    removed_pool = [a for a in old_attributes if a not in new_set]
    added_pool = [a for a in new_attributes if a not in old_set]
    candidates: List[Tuple[float, str, str]] = []
    for old_name in removed_pool:
        for new_name in added_pool:
            score = name_similarity(old_name, new_name)
            if old_rows is not None and new_rows is not None:
                score = max(
                    score, _value_overlap(old_rows, new_rows, old_name, new_name)
                )
            if score >= rename_threshold:
                candidates.append((score, old_name, new_name))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    matched_old: Set[str] = set()
    matched_new: Set[str] = set()
    renames: List[Tuple[str, str, float]] = []
    for score, old_name, new_name in candidates:
        if old_name in matched_old or new_name in matched_new:
            continue
        matched_old.add(old_name)
        matched_new.add(new_name)
        renames.append((old_name, new_name, round(score, 4)))
    added = tuple(a for a in added_pool if a not in matched_new)
    removed = tuple(a for a in removed_pool if a not in matched_old)
    return SignatureDiff(
        kept=kept,
        added=added,
        removed=removed,
        renames=tuple(renames),
    )
