"""Exception hierarchy for the MDM core.

Every error raised by :mod:`repro.core` derives from :class:`MdmError`, so
callers embedding MDM can catch one type.  The rewriting errors are
deliberately fine-grained: the demo's value proposition is *explaining*
why a query cannot be answered (no wrapper covers a concept, a concept
has no identifier, the walk is disconnected), not just failing.
"""

from __future__ import annotations

__all__ = [
    "MdmError",
    "GlobalGraphError",
    "SourceGraphError",
    "MappingError",
    "WalkError",
    "RewritingError",
    "NoCoverError",
    "MissingIdentifierError",
    "DisconnectedWalkError",
    "GavUnfoldingError",
    "PlanValidationError",
    "ImpactGateError",
    "PersistenceError",
    "SnapshotMissingError",
    "SnapshotCorruptError",
]


class MdmError(Exception):
    """Base class of all MDM errors."""


class GlobalGraphError(MdmError):
    """Invalid global-graph construction (e.g. feature in two concepts)."""


class SourceGraphError(MdmError):
    """Invalid source-graph construction or wrapper registration."""


class MappingError(MdmError):
    """An invalid LAV mapping (not a subgraph, missing identifier, ...).

    ``findings`` carries the full diagnostic list when the mapping store
    validated the whole submission at once (one
    :class:`repro.analysis.diagnostics.Finding` per violation); it is
    empty for errors raised outside that batch validation.
    """

    def __init__(self, message, findings=()):
        super().__init__(message)
        self.findings = tuple(findings)


class PlanValidationError(MdmError):
    """A relational plan failed the static schema check before execution.

    Raised by ``MDM.execute`` when ``validate_plans`` is on and the
    post-optimizer plan has error-severity findings; ``findings`` holds
    the :class:`repro.analysis.diagnostics.Finding` list.
    """

    def __init__(self, message, findings=()):
        super().__init__(message)
        self.findings = tuple(findings)


class ImpactGateError(MdmError):
    """A blocking evolution-impact gate rejected a proposed release.

    Raised before any metadata mutation happens when the impact gate is
    ``"blocking"`` and the static analyzer classified the release as
    ``BROKEN``; ``report`` carries the full
    :class:`repro.analysis.impact.ImpactReport` so the steward can read
    the blast radius straight off the exception.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class PersistenceError(MdmError):
    """A saved MDM snapshot could not be written or read back."""


class SnapshotMissingError(PersistenceError, FileNotFoundError):
    """A snapshot file is absent from the saved directory.

    Also a :class:`FileNotFoundError` so callers that predate the typed
    hierarchy keep working.
    """

    def __init__(self, path, detail=""):
        self.path = path
        message = f"no snapshot file at {path}"
        if detail:
            message = f"{message}: {detail}"
        PersistenceError.__init__(self, message)


class SnapshotCorruptError(PersistenceError):
    """A snapshot file exists but does not parse (truncated or mangled).

    ``path`` names the offending file and ``cause`` keeps the original
    parser exception for post-mortems.
    """

    def __init__(self, path, cause=None):
        self.path = path
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(f"corrupt snapshot file {path}{detail}")


class WalkError(MdmError):
    """An invalid analyst walk (disconnected, empty, unknown nodes...)."""


class RewritingError(MdmError):
    """The query rewriting algorithm could not produce a UCQ."""


class NoCoverError(RewritingError):
    """No combination of wrappers covers a concept's requested features."""

    def __init__(self, concept, missing_features):
        self.concept = concept
        self.missing_features = sorted(missing_features, key=str)
        super().__init__(
            f"no wrapper cover for concept {concept}: features "
            f"{[str(f) for f in self.missing_features]} are not provided "
            "by any applicable wrapper"
        )


class MissingIdentifierError(RewritingError):
    """A walk concept has no identifier feature, so joins are impossible."""

    def __init__(self, concept):
        self.concept = concept
        super().__init__(
            f"concept {concept} has no feature inheriting from sc:identifier; "
            "cannot be joined or queried unambiguously"
        )


class DisconnectedWalkError(WalkError):
    """The analyst's contour selects a disconnected subgraph."""


class GavUnfoldingError(MdmError):
    """The GAV baseline's unfolding hit a stale mapping (the 'crash')."""
