"""A GAV (global-as-view) baseline — the approach MDM argues against.

Classic OBDA systems "represent schema mappings following the
global-as-view (GAV) approach, where elements of the ontology are
characterized in terms of a query over the source schemata.  GAV ensures
that the process of query rewriting is tractable ... by just unfolding
the queries to the sources, but faulty upon source schema changes"
(paper §1).

:class:`GavSystem` is that approach, implemented honestly:

- each global feature is *defined* as a fixed (wrapper, attribute) pair;
- each concept relation is defined as a fixed equi-join between two
  wrapper attributes;
- query answering is pure unfolding — fast, single conjunctive query, no
  alternatives;
- when a source evolves, the definitions silently keep pointing at the
  old wrapper.  Executing then raises :class:`GavUnfoldingError` (the
  "crash") if the old endpoint is gone or its payload changed shape; if
  the old endpoint still serves stale data, results are silently partial.

``migration_cost`` counts how many definitions a steward must rewrite by
hand after a release — the maintenance burden the LAV design removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..rdf.terms import IRI, Triple
from ..relational.algebra import (
    Distinct,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
)
from ..relational.executor import Executor
from ..relational.relation import Relation
from ..sources.wrappers import Wrapper, WrapperSchemaError
from .errors import GavUnfoldingError
from .walks import Walk, feature_column_names
from .global_graph import GlobalGraph

__all__ = ["GavSystem", "GavFeatureDef", "GavEdgeDef"]


@dataclass(frozen=True)
class GavFeatureDef:
    """``feature := wrapper.attribute`` — a GAV view definition."""

    feature: IRI
    wrapper_name: str
    attribute: str


@dataclass(frozen=True)
class GavEdgeDef:
    """A concept relation defined as a fixed equi-join between wrappers."""

    edge: Triple
    left_wrapper: str
    left_attribute: str
    right_wrapper: str
    right_attribute: str


class GavSystem:
    """The unfolding-based baseline integration system."""

    def __init__(self, global_graph: GlobalGraph):
        self.global_graph = global_graph
        self._wrappers: Dict[str, Wrapper] = {}
        self._features: Dict[IRI, GavFeatureDef] = {}
        self._edges: Dict[Triple, GavEdgeDef] = {}

    # ------------------------------------------------------------------ #
    # definition
    # ------------------------------------------------------------------ #

    def register_wrapper(self, wrapper: Wrapper) -> None:
        """Make a wrapper's data available to unfoldings."""
        self._wrappers[wrapper.name] = wrapper

    def define_feature(self, feature: IRI, wrapper_name: str, attribute: str) -> None:
        """Define ``feature`` as ``wrapper.attribute`` (replaces any old def)."""
        if wrapper_name not in self._wrappers:
            raise GavUnfoldingError(f"unknown wrapper {wrapper_name!r}")
        wrapper = self._wrappers[wrapper_name]
        if attribute not in wrapper.attributes:
            raise GavUnfoldingError(
                f"wrapper {wrapper_name!r} has no attribute {attribute!r}"
            )
        self._features[feature] = GavFeatureDef(feature, wrapper_name, attribute)

    def define_edge(
        self,
        edge: Triple,
        left_wrapper: str,
        left_attribute: str,
        right_wrapper: str,
        right_attribute: str,
    ) -> None:
        """Define a concept relation as a fixed wrapper equi-join."""
        self._edges[edge] = GavEdgeDef(
            edge, left_wrapper, left_attribute, right_wrapper, right_attribute
        )

    # ------------------------------------------------------------------ #
    # unfolding
    # ------------------------------------------------------------------ #

    def unfold(self, walk: Walk) -> PlanNode:
        """Unfold a walk into one conjunctive plan (GAV's single CQ)."""
        walk.validate(self.global_graph)
        columns = feature_column_names(self.global_graph, walk.features)
        # Group requested features by the wrapper their definition names.
        by_wrapper: Dict[str, Dict[str, str]] = {}
        for feature in walk.sorted_features():
            definition = self._features.get(feature)
            if definition is None:
                raise GavUnfoldingError(
                    f"feature {feature} has no GAV definition"
                )
            by_wrapper.setdefault(definition.wrapper_name, {})[
                definition.attribute
            ] = columns[feature]
        # Add join attributes from edge definitions.
        join_columns: Dict[Tuple[str, str], str] = {}
        for edge in walk.sorted_edges():
            definition = self._edges.get(edge)
            if definition is None:
                raise GavUnfoldingError(f"edge {edge.n3()} has no GAV definition")
            key_column = f"join_{definition.left_attribute}_{definition.right_attribute}"
            by_wrapper.setdefault(definition.left_wrapper, {})[
                definition.left_attribute
            ] = key_column
            by_wrapper.setdefault(definition.right_wrapper, {})[
                definition.right_attribute
            ] = key_column
        branches: List[PlanNode] = []
        for wrapper_name in sorted(by_wrapper):
            attribute_to_column = by_wrapper[wrapper_name]
            plan: PlanNode = Scan(wrapper_name)
            rename = {
                attr: col for attr, col in attribute_to_column.items() if attr != col
            }
            if rename:
                plan = Rename.from_dict(plan, rename)
            plan = Project(plan, tuple(sorted(set(attribute_to_column.values()))))
            branches.append(plan)
        plan = branches[0]
        for branch in branches[1:]:
            plan = NaturalJoin(plan, branch)
        projection = tuple(columns[f] for f in walk.sorted_features())
        return Distinct(Project(plan, projection))

    def execute(self, walk: Walk) -> Relation:
        """Unfold and execute; raises :class:`GavUnfoldingError` when a
        definition references a wrapper whose source has moved on."""
        plan = self.unfold(walk)
        executor = Executor()
        for name in set(plan.scans()):
            wrapper = self._wrappers.get(name)
            if wrapper is None:
                raise GavUnfoldingError(f"unfolding references unknown wrapper {name!r}")
            try:
                executor.register(name, wrapper.fetch_relation())
            except WrapperSchemaError as exc:
                raise GavUnfoldingError(
                    f"GAV unfolding crashed: {exc}"
                ) from exc
        return executor.execute(plan)

    # ------------------------------------------------------------------ #
    # maintenance accounting
    # ------------------------------------------------------------------ #

    def definitions_referencing(self, wrapper_name: str) -> List[object]:
        """All feature/edge definitions bound to ``wrapper_name``."""
        out: List[object] = [
            d for d in self._features.values() if d.wrapper_name == wrapper_name
        ]
        out.extend(
            d
            for d in self._edges.values()
            if wrapper_name in (d.left_wrapper, d.right_wrapper)
        )
        return out

    def migration_cost(self, wrapper_name: str) -> int:
        """How many definitions a steward must hand-edit when
        ``wrapper_name``'s source ships a breaking release."""
        return len(self.definitions_referencing(wrapper_name))

    def migrate_wrapper(
        self,
        old_wrapper: str,
        new_wrapper: Wrapper,
        attribute_translation: Mapping[str, str],
    ) -> int:
        """Manually migrate definitions to a new wrapper (the GAV chore).

        ``attribute_translation`` maps old attribute names to new ones.
        Returns the number of definitions rewritten.  Raises when a
        definition's attribute has no translation — the realistic failure
        when a release drops an attribute.
        """
        self.register_wrapper(new_wrapper)
        rewritten = 0
        for feature, definition in list(self._features.items()):
            if definition.wrapper_name != old_wrapper:
                continue
            new_attribute = attribute_translation.get(definition.attribute)
            if new_attribute is None or new_attribute not in new_wrapper.attributes:
                raise GavUnfoldingError(
                    f"cannot migrate feature {feature}: attribute "
                    f"{definition.attribute!r} has no equivalent in "
                    f"{new_wrapper.name!r}"
                )
            self._features[feature] = GavFeatureDef(
                feature, new_wrapper.name, new_attribute
            )
            rewritten += 1
        for edge, definition in list(self._edges.items()):
            changed = False
            left_wrapper, left_attribute = definition.left_wrapper, definition.left_attribute
            right_wrapper, right_attribute = definition.right_wrapper, definition.right_attribute
            if left_wrapper == old_wrapper:
                left_wrapper = new_wrapper.name
                left_attribute = attribute_translation.get(left_attribute, left_attribute)
                changed = True
            if right_wrapper == old_wrapper:
                right_wrapper = new_wrapper.name
                right_attribute = attribute_translation.get(right_attribute, right_attribute)
                changed = True
            if changed:
                self._edges[edge] = GavEdgeDef(
                    edge, left_wrapper, left_attribute, right_wrapper, right_attribute
                )
                rewritten += 1
        return rewritten
