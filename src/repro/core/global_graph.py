"""The global graph: MDM's integration-oriented domain ontology (paper §2.1).

The global graph "reflects the main domain concepts, relationships among
them and features of analysis".  Its construction rules, enforced here:

- **Concepts** (``G:Concept``) group features and never carry values.
- **Features** (``G:Feature``) belong to *exactly one* concept, attached
  with ``G:hasFeature``.
- Only concepts relate to each other, through any user-defined property;
  concept taxonomies use ``rdfs:subClassOf``.
- Vocabulary reuse is first-class: a concept or feature IRI may come from
  an external vocabulary (the demo reuses ``sc:SportsTeam``).
- Identifier features are marked ``rdfs:subClassOf sc:identifier``; they
  are what the rewriting may join on.

A :class:`UmlModel` describes a UML class diagram (the steward's starting
point, Figure 1) and compiles into a global graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS
from ..rdf.reasoner import superclass_closure
from ..rdf.terms import IRI, Literal, Term, Triple
from .errors import GlobalGraphError
from .vocabulary import G, IDENTIFIER, mdm_namespace_manager

__all__ = ["GlobalGraph", "UmlModel", "UmlClass", "UmlAssociation"]


class GlobalGraph:
    """A validated wrapper around the RDF global graph."""

    def __init__(self, graph: Optional[Graph] = None):
        self.graph = graph if graph is not None else Graph(
            namespaces=mdm_namespace_manager()
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_concept(self, concept: IRI, label: Optional[str] = None) -> IRI:
        """Declare a concept (idempotent)."""
        self.graph.add((concept, RDF.type, G.Concept))
        if label is not None:
            self.graph.add((concept, RDFS.label, Literal(label)))
        return concept

    def add_feature(
        self,
        feature: IRI,
        concept: IRI,
        label: Optional[str] = None,
        identifier: bool = False,
    ) -> IRI:
        """Attach ``feature`` to ``concept``.

        Raises :class:`GlobalGraphError` if the feature already belongs to
        a *different* concept — the paper restricts features to exactly
        one concept.  ``identifier=True`` additionally asserts
        ``rdfs:subClassOf sc:identifier``.
        """
        if not self.is_concept(concept):
            raise GlobalGraphError(f"{concept} is not a declared concept")
        current = self.concept_of(feature)
        if current is not None and current != concept:
            raise GlobalGraphError(
                f"feature {feature} already belongs to {current}; features "
                "belong to exactly one concept"
            )
        self.graph.add((feature, RDF.type, G.Feature))
        self.graph.add((concept, G.hasFeature, feature))
        if label is not None:
            self.graph.add((feature, RDFS.label, Literal(label)))
        if identifier:
            self.graph.add((feature, RDFS.subClassOf, IDENTIFIER))
        return feature

    def add_identifier(self, feature: IRI, concept: IRI, label: Optional[str] = None) -> IRI:
        """Shorthand for ``add_feature(..., identifier=True)``."""
        return self.add_feature(feature, concept, label=label, identifier=True)

    def relate(self, source: IRI, prop: IRI, target: IRI) -> Triple:
        """Relate two concepts with a user-defined property."""
        for concept in (source, target):
            if not self.is_concept(concept):
                raise GlobalGraphError(
                    f"{concept} is not a declared concept; only concepts can "
                    "be related"
                )
        triple = Triple(source, prop, target)
        self.graph.add(triple)
        return triple

    def add_subclass(self, sub: IRI, sup: IRI) -> None:
        """Declare a concept taxonomy edge ``sub rdfs:subClassOf sup``."""
        for concept in (sub, sup):
            if not self.is_concept(concept):
                raise GlobalGraphError(f"{concept} is not a declared concept")
        self.graph.add((sub, RDFS.subClassOf, sup))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def is_concept(self, term: Term) -> bool:
        """Whether ``term`` is a declared concept."""
        return (term, RDF.type, G.Concept) in self.graph

    def is_feature(self, term: Term) -> bool:
        """Whether ``term`` is a declared feature."""
        return (term, RDF.type, G.Feature) in self.graph

    def concepts(self) -> List[IRI]:
        """All concepts, sorted by IRI."""
        return sorted(
            (s for s in self.graph.subjects(RDF.type, G.Concept) if isinstance(s, IRI)),
            key=lambda i: i.value,
        )

    def features(self) -> List[IRI]:
        """All features, sorted by IRI."""
        return sorted(
            (s for s in self.graph.subjects(RDF.type, G.Feature) if isinstance(s, IRI)),
            key=lambda i: i.value,
        )

    def features_of(self, concept: IRI) -> List[IRI]:
        """The features attached to ``concept``, sorted."""
        return sorted(
            (o for o in self.graph.objects(concept, G.hasFeature) if isinstance(o, IRI)),
            key=lambda i: i.value,
        )

    def concept_of(self, feature: Term) -> Optional[IRI]:
        """The single concept owning ``feature``, or None."""
        owners = [
            s
            for s in self.graph.subjects(G.hasFeature, feature)
            if isinstance(s, IRI)
        ]
        if not owners:
            return None
        if len(owners) > 1:
            raise GlobalGraphError(
                f"feature {feature} belongs to several concepts: {owners}"
            )
        return owners[0]

    def is_identifier(self, feature: Term) -> bool:
        """Whether ``feature`` inherits from ``sc:identifier``."""
        return IDENTIFIER in superclass_closure(self.graph, feature) and feature != IDENTIFIER

    def identifiers_of(self, concept: IRI) -> List[IRI]:
        """The identifier features of ``concept`` (possibly empty)."""
        return [f for f in self.features_of(concept) if self.is_identifier(f)]

    def relations(self) -> List[Triple]:
        """All concept-to-concept relation triples (sorted, taxonomy excluded)."""
        concept_set = set(self.concepts())
        out = [
            t
            for t in self.graph
            if t.subject in concept_set
            and t.object in concept_set
            and t.predicate not in (RDF.type, G.hasFeature, RDFS.subClassOf)
        ]
        return sorted(out, key=lambda t: (str(t.subject), str(t.predicate), str(t.object)))

    def relations_between(self, source: IRI, target: IRI) -> List[IRI]:
        """The property IRIs relating ``source`` to ``target`` (directed)."""
        return sorted(
            (
                p
                for p in self.graph.predicates(source, target)
                if isinstance(p, IRI)
                and p not in (RDF.type, G.hasFeature, RDFS.subClassOf)
            ),
            key=lambda i: i.value,
        )

    def validate(self) -> List[str]:
        """Structural issues, empty when the graph is well-formed."""
        issues: List[str] = []
        for feature in self.features():
            owners = list(self.graph.subjects(G.hasFeature, feature))
            if not owners:
                issues.append(f"feature {feature} belongs to no concept")
            elif len(owners) > 1:
                issues.append(
                    f"feature {feature} belongs to {len(owners)} concepts"
                )
        for subject, _, obj in self.graph.triples((None, G.hasFeature, None)):
            if not self.is_concept(subject):
                issues.append(f"hasFeature subject {subject} is not a concept")
            if not self.is_feature(obj):
                issues.append(f"hasFeature object {obj} is not a feature")
        for concept in self.concepts():
            if not self.identifiers_of(concept):
                issues.append(
                    f"concept {concept} has no identifier feature "
                    "(queries touching it cannot be joined)"
                )
        return issues

    def to_dot(self, highlight: Optional[Iterable[IRI]] = None) -> str:
        """GraphViz DOT of the whole global graph (the D3 canvas stand-in).

        Concepts render blue, features yellow (identifiers with a bold
        border), matching the paper's Figure 5 color coding; nodes in
        ``highlight`` get a red outline (the analyst's contour).
        """
        ns = self.graph.namespaces
        highlighted = set(highlight or ())

        def label(iri: IRI) -> str:
            compact = ns.compact(iri)
            return compact if compact is not None else iri.local_name()

        def extra(iri: IRI) -> str:
            return ", color=red, penwidth=2" if iri in highlighted else ""

        lines = ["digraph globalGraph {", "  rankdir=LR;"]
        for concept in self.concepts():
            lines.append(
                f'  "{label(concept)}" [shape=box, style=filled, '
                f'fillcolor=lightblue{extra(concept)}];'
            )
        for feature in self.features():
            border = ", penwidth=2" if self.is_identifier(feature) else ""
            lines.append(
                f'  "{label(feature)}" [shape=ellipse, style=filled, '
                f'fillcolor=lightyellow{border}{extra(feature)}];'
            )
            owner = self.concept_of(feature)
            if owner is not None:
                lines.append(
                    f'  "{label(owner)}" -> "{label(feature)}" '
                    '[style=dashed, arrowhead=none];'
                )
        for relation in self.relations():
            lines.append(
                f'  "{label(relation.subject)}" -> "{label(relation.object)}" '
                f'[label="{label(relation.predicate)}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        return (
            f"<GlobalGraph {len(self.concepts())} concepts, "
            f"{len(self.features())} features, {len(self.graph)} triples>"
        )


# --------------------------------------------------------------------- #
# UML front-end (Figure 1)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class UmlClass:
    """A UML class: name, attributes, and which attribute is the key."""

    name: str
    iri: IRI
    attributes: Tuple[Tuple[str, IRI], ...]
    identifier: str

    def attribute_iri(self, name: str) -> IRI:
        """The feature IRI declared for attribute ``name``."""
        for attr_name, iri in self.attributes:
            if attr_name == name:
                return iri
        raise KeyError(name)


@dataclass(frozen=True)
class UmlAssociation:
    """A directed UML association compiled to a concept relation."""

    source: str
    property_iri: IRI
    target: str


@dataclass
class UmlModel:
    """A UML class diagram, the steward's input (paper Figure 1)."""

    classes: List[UmlClass] = field(default_factory=list)
    associations: List[UmlAssociation] = field(default_factory=list)

    def compile(self) -> GlobalGraph:
        """Generate the equivalent global graph (paper: "we use [the UML]
        as a starting point ... to generate the ontological knowledge
        captured in the global graph")."""
        gg = GlobalGraph()
        by_name: Dict[str, UmlClass] = {}
        for cls in self.classes:
            if cls.name in by_name:
                raise GlobalGraphError(f"duplicate UML class {cls.name!r}")
            by_name[cls.name] = cls
            gg.add_concept(cls.iri, label=cls.name)
            attribute_names = [a for a, _ in cls.attributes]
            if cls.identifier not in attribute_names:
                raise GlobalGraphError(
                    f"class {cls.name!r}: identifier {cls.identifier!r} is "
                    f"not among its attributes {attribute_names}"
                )
            for attr_name, feature_iri in cls.attributes:
                gg.add_feature(
                    feature_iri,
                    cls.iri,
                    label=attr_name,
                    identifier=attr_name == cls.identifier,
                )
        for assoc in self.associations:
            for endpoint in (assoc.source, assoc.target):
                if endpoint not in by_name:
                    raise GlobalGraphError(
                        f"association references unknown class {endpoint!r}"
                    )
            gg.relate(by_name[assoc.source].iri, assoc.property_iri, by_name[assoc.target].iri)
        return gg
