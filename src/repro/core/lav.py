"""LAV mappings: named subgraphs plus attribute-to-feature links (paper §2.3).

A LAV mapping characterizes a *source* element (a wrapper) as a query over
the *global* schema — the opposite of GAV, and the reason MDM survives
schema evolution.  Concretely, per wrapper:

(a) an RDF **named graph**, identified by the wrapper IRI, whose triples
    are a subgraph of the global graph ("drawing a contour around the set
    of elements in the global graph that this wrapper is populating,
    including concept relations");
(b) a set of ``owl:sameAs`` links from the wrapper's source-graph
    attributes to global-graph features.

Validation enforced at definition time (the metamodel constraints that
make LAV resolution unambiguous):

- the named graph must be a subgraph of the global graph;
- it must be connected;
- every feature included must be populated — i.e. linked by ``sameAs``
  from exactly one attribute of this wrapper;
- every covered concept must include (and populate) an identifier
  feature, since "joins are only restricted to elements that inherit
  from sc:identifier".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from ..rdf.dataset import Dataset
from ..rdf.graph import Graph
from ..rdf.namespaces import OWL, RDF
from ..rdf.paths import connected_components
from ..rdf.terms import IRI, Triple
from .errors import MappingError
from .global_graph import GlobalGraph
from .source_graph import SourceGraph
from .vocabulary import G

__all__ = ["LavMapping", "MappingView", "LavMappingStore"]


@dataclass(frozen=True)
class MappingView:
    """A resolved, query-ready view of one wrapper's LAV mapping."""

    wrapper: IRI
    wrapper_name: str
    #: Concepts covered by the named graph.
    concepts: FrozenSet[IRI]
    #: Feature → signature attribute name that populates it.
    feature_attributes: Mapping[IRI, str]
    #: Concept-relation edges included in the named graph.
    edges: FrozenSet[Triple]

    @property
    def features(self) -> FrozenSet[IRI]:
        """The features this wrapper populates."""
        return frozenset(self.feature_attributes)

    def provides(self, feature: IRI) -> bool:
        """Whether this wrapper populates ``feature``."""
        return feature in self.feature_attributes

    def covers_edge(self, edge: Triple) -> bool:
        """Whether the named graph includes the relation ``edge``."""
        return edge in self.edges


@dataclass(frozen=True)
class LavMapping:
    """The stored form of one mapping (named graph + sameAs function)."""

    wrapper: IRI
    subgraph: Tuple[Triple, ...]
    same_as: Tuple[Tuple[IRI, IRI], ...]  # (attribute, feature) pairs


class LavMappingStore:
    """Defines, validates and serves LAV mappings over the MDM dataset."""

    def __init__(
        self,
        dataset: Dataset,
        global_graph: GlobalGraph,
        source_graph: SourceGraph,
    ):
        self.dataset = dataset
        self.global_graph = global_graph
        self.source_graph = source_graph

    # ------------------------------------------------------------------ #
    # definition
    # ------------------------------------------------------------------ #

    def define(
        self,
        wrapper: IRI,
        subgraph: Iterable[Triple],
        same_as: Mapping[IRI, IRI],
    ) -> LavMapping:
        """Define (or replace) the LAV mapping for ``wrapper``.

        ``subgraph`` is the steward's contour over the global graph;
        ``same_as`` maps attribute IRIs of this wrapper to feature IRIs.
        The whole submission is validated at once: a single
        :class:`MappingError` reports *every* violated constraint, with
        the individual diagnostics attached as ``exc.findings`` (one
        :class:`repro.analysis.diagnostics.Finding` per violation).
        """
        triples = tuple(subgraph)
        findings = self.validate_mapping(wrapper, triples, same_as)
        if findings:
            raise MappingError(
                f"invalid LAV mapping for {wrapper} "
                f"({len(findings)} violation(s)): "
                + "; ".join(f.message for f in findings),
                findings=findings,
            )
        # Store: the named graph is identified by the wrapper IRI.
        if self.dataset.has_graph(wrapper):
            self.dataset.remove_graph(wrapper)
        named = self.dataset.graph(wrapper)
        named.add_all(triples)
        # sameAs links live in the source graph, next to the attributes
        # (shared-attribute conflicts were rejected by validate_mapping).
        for attribute, feature in sorted(same_as.items(), key=lambda kv: kv[0].value):
            self.source_graph.graph.add((attribute, OWL.sameAs, feature))
        return LavMapping(
            wrapper=wrapper,
            subgraph=triples,
            same_as=tuple(sorted(same_as.items(), key=lambda kv: kv[0].value)),
        )

    def validate_mapping(
        self,
        wrapper: IRI,
        triples: Tuple[Triple, ...],
        same_as: Mapping[IRI, IRI],
    ) -> List:
        """All diagnostics for a submitted mapping (empty when valid).

        Runs every well-formedness check and collects the findings —
        the steward sees the complete violation list in one round trip
        instead of fixing constraints one at a time.
        """
        findings: List = []
        findings.extend(self._check_shape(wrapper, triples))
        findings.extend(self._check_subgraph(wrapper, triples))
        findings.extend(self._check_same_as(wrapper, triples, same_as))
        findings.extend(self._check_identifiers(wrapper, triples, same_as))
        return findings

    @staticmethod
    def _rules():
        """The shared diagnostics catalog (imported lazily: analysis
        depends on core submodules, so the import must not run while
        :mod:`repro.core` itself is still initializing)."""
        from ..analysis.metadata_rules import MAPPING_RULES, METADATA_RULES

        return {**METADATA_RULES, **MAPPING_RULES}

    def _location(self, wrapper: IRI, detail: str = ""):
        from ..analysis.diagnostics import SourceLocation

        name = self.source_graph.wrapper_name(wrapper) or wrapper.local_name()
        return SourceLocation("mapping", name, detail)

    def _check_shape(self, wrapper: IRI, triples: Tuple[Triple, ...]) -> List:
        rules = self._rules()
        findings = []
        if not triples:
            findings.append(
                rules["MDM012"].finding(
                    f"mapping for {wrapper} has an empty named graph",
                    self._location(wrapper),
                )
            )
        if self.source_graph.source_of(wrapper) is None:
            findings.append(
                rules["MDM013"].finding(
                    f"{wrapper} is not a registered wrapper; register it on "
                    "the source graph before mapping it",
                    self._location(wrapper),
                )
            )
        return findings

    def _check_subgraph(self, wrapper: IRI, triples: Tuple[Triple, ...]) -> List:
        rules = self._rules()
        findings = []
        for triple in triples:
            if triple not in self.global_graph.graph:
                findings.append(
                    rules["MDM001"].finding(
                        f"mapping for {wrapper}: triple {triple.n3()} is not "
                        "part of the global graph (a LAV named graph must be "
                        "a subgraph of the global graph)",
                        self._location(wrapper, triple.n3()),
                    )
                )
        if triples:
            contour = Graph()
            contour.add_all(triples)
            components = connected_components(contour)
            if len(components) > 1:
                findings.append(
                    rules["MDM014"].finding(
                        f"mapping for {wrapper}: the named graph is "
                        f"disconnected ({len(components)} components); draw "
                        "one contour",
                        self._location(wrapper),
                    )
                )
        return findings

    def _check_same_as(
        self,
        wrapper: IRI,
        triples: Tuple[Triple, ...],
        same_as: Mapping[IRI, IRI],
    ) -> List:
        rules = self._rules()
        findings = []
        wrapper_attributes = set(self.source_graph.attributes_of(wrapper))
        mapped_features: Set[IRI] = set()
        for attribute, feature in sorted(
            same_as.items(), key=lambda kv: kv[0].value
        ):
            attr_detail = self.source_graph.attribute_name(attribute) or (
                attribute.local_name()
            )
            if attribute not in wrapper_attributes:
                findings.append(
                    rules["MDM015"].finding(
                        f"mapping for {wrapper}: {attribute} is not an "
                        "attribute of this wrapper",
                        self._location(wrapper, attr_detail),
                    )
                )
            if not self.global_graph.is_feature(feature):
                findings.append(
                    rules["MDM002"].finding(
                        f"mapping for {wrapper}: {feature} is not a feature "
                        "of the global graph",
                        self._location(wrapper, attr_detail),
                    )
                )
            if feature in mapped_features:
                findings.append(
                    rules["MDM008"].finding(
                        f"mapping for {wrapper}: feature {feature} is "
                        "populated by more than one attribute",
                        self._location(wrapper, feature.local_name()),
                    )
                )
            mapped_features.add(feature)
            # Attributes shared across wrappers of one source may already
            # carry a link; it must then point at the same feature.
            existing = [
                f
                for f in self.source_graph.graph.objects(attribute, OWL.sameAs)
                if f != feature
            ]
            if existing:
                findings.append(
                    rules["MDM017"].finding(
                        f"attribute {attribute} is already linked to "
                        f"{existing[0]}; a shared attribute cannot map to a "
                        f"different feature ({feature})",
                        self._location(wrapper, attr_detail),
                    )
                )
        included_features = {
            t.object
            for t in triples
            if t.predicate == G.hasFeature and isinstance(t.object, IRI)
        }
        unmapped = included_features - mapped_features
        if unmapped:
            findings.append(
                rules["MDM016"].finding(
                    f"mapping for {wrapper}: features in the named graph "
                    "without a sameAs attribute: "
                    f"{sorted(str(f) for f in unmapped)}",
                    self._location(wrapper),
                )
            )
        orphans = mapped_features - included_features
        if orphans:
            findings.append(
                rules["MDM002"].finding(
                    f"mapping for {wrapper}: sameAs targets outside the "
                    f"named graph: {sorted(str(f) for f in orphans)}",
                    self._location(wrapper),
                )
            )
        return findings

    def _check_identifiers(
        self,
        wrapper: IRI,
        triples: Tuple[Triple, ...],
        same_as: Mapping[IRI, IRI],
    ) -> List:
        from ..rdf.reasoner import superclass_closure

        rules = self._rules()
        findings = []
        mapped_features = set(same_as.values())
        for concept in self._concepts_in(triples):
            # A subclass concept is identified by its own identifier or by
            # an inherited one from any superclass (taxonomy support).
            identifiers: Set[IRI] = set()
            for ancestor in superclass_closure(self.global_graph.graph, concept):
                if isinstance(ancestor, IRI) and self.global_graph.is_concept(ancestor):
                    identifiers.update(self.global_graph.identifiers_of(ancestor))
            if not identifiers:
                findings.append(
                    rules["MDM004"].finding(
                        f"mapping for {wrapper}: covered concept {concept} "
                        "has no identifier feature in the global graph",
                        self._location(wrapper, concept.local_name()),
                    )
                )
            elif not (identifiers & mapped_features):
                findings.append(
                    rules["MDM018"].finding(
                        f"mapping for {wrapper}: covered concept {concept} "
                        "must include and populate an identifier feature "
                        "(joins are restricted to sc:identifier descendants)",
                        self._location(wrapper, concept.local_name()),
                    )
                )
        return findings

    def _concepts_in(self, triples: Iterable[Triple]) -> List[IRI]:
        concepts: Set[IRI] = set()
        for triple in triples:
            for term in (triple.subject, triple.object):
                if isinstance(term, IRI) and self.global_graph.is_concept(term):
                    concepts.add(term)
        return sorted(concepts, key=lambda i: i.value)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def mapped_wrappers(self) -> List[IRI]:
        """Wrappers that currently have a LAV mapping, sorted."""
        return [
            name
            for name in self.dataset.graph_names()
            if self.source_graph.source_of(name) is not None
        ]

    def named_graph(self, wrapper: IRI) -> Graph:
        """The stored named graph for ``wrapper``."""
        if not self.dataset.has_graph(wrapper):
            raise MappingError(f"no LAV mapping defined for {wrapper}")
        return self.dataset.graph(wrapper)

    def same_as_of(self, wrapper: IRI) -> Dict[IRI, IRI]:
        """Attribute → feature links for ``wrapper``'s attributes.

        Valid metadata has at most one link per attribute; with
        conflicting links (the MDM008 situation) the IRI-smallest
        feature wins so the view — and everything derived from it — is
        deterministic regardless of hash seed.
        """
        out: Dict[IRI, IRI] = {}
        for attribute in self.source_graph.attributes_of(wrapper):
            features = self.same_as_of_attribute(attribute)
            if features:
                out[attribute] = features[0]
        return out

    def same_as_of_attribute(self, attribute: IRI) -> List[IRI]:
        """The feature(s) an attribute IRI is linked to (usually 0 or 1)."""
        return sorted(
            (
                f
                for f in self.source_graph.graph.objects(attribute, OWL.sameAs)
                if isinstance(f, IRI)
            ),
            key=lambda i: i.value,
        )

    def view(self, wrapper: IRI) -> MappingView:
        """The query-ready :class:`MappingView` for ``wrapper``."""
        named = self.named_graph(wrapper)
        concepts = frozenset(self._concepts_in(named))
        included_features = {
            t.object
            for t in named.triples((None, G.hasFeature, None))
            if isinstance(t.object, IRI)
        }
        feature_attributes: Dict[IRI, str] = {}
        for attribute, feature in self.same_as_of(wrapper).items():
            if feature in included_features:
                name = self.source_graph.attribute_name(attribute)
                if name is not None:
                    feature_attributes[feature] = name
        edges = frozenset(
            t
            for t in named
            if isinstance(t.subject, IRI)
            and isinstance(t.object, IRI)
            and t.subject in concepts
            and t.object in concepts
            and t.predicate != G.hasFeature
            and t.predicate != RDF.type
        )
        return MappingView(
            wrapper=wrapper,
            wrapper_name=self.source_graph.wrapper_name(wrapper) or wrapper.local_name(),
            concepts=concepts,
            feature_attributes=feature_attributes,
            edges=edges,
        )

    def views(self) -> List[MappingView]:
        """Views for every mapped wrapper, sorted by wrapper IRI."""
        return [self.view(w) for w in self.mapped_wrappers()]
