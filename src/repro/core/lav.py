"""LAV mappings: named subgraphs plus attribute-to-feature links (paper §2.3).

A LAV mapping characterizes a *source* element (a wrapper) as a query over
the *global* schema — the opposite of GAV, and the reason MDM survives
schema evolution.  Concretely, per wrapper:

(a) an RDF **named graph**, identified by the wrapper IRI, whose triples
    are a subgraph of the global graph ("drawing a contour around the set
    of elements in the global graph that this wrapper is populating,
    including concept relations");
(b) a set of ``owl:sameAs`` links from the wrapper's source-graph
    attributes to global-graph features.

Validation enforced at definition time (the metamodel constraints that
make LAV resolution unambiguous):

- the named graph must be a subgraph of the global graph;
- it must be connected;
- every feature included must be populated — i.e. linked by ``sameAs``
  from exactly one attribute of this wrapper;
- every covered concept must include (and populate) an identifier
  feature, since "joins are only restricted to elements that inherit
  from sc:identifier".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..rdf.dataset import Dataset
from ..rdf.graph import Graph
from ..rdf.namespaces import OWL, RDF
from ..rdf.paths import connected_components
from ..rdf.terms import IRI, Term, Triple
from .errors import MappingError
from .global_graph import GlobalGraph
from .source_graph import SourceGraph
from .vocabulary import G

__all__ = ["LavMapping", "MappingView", "LavMappingStore"]


@dataclass(frozen=True)
class MappingView:
    """A resolved, query-ready view of one wrapper's LAV mapping."""

    wrapper: IRI
    wrapper_name: str
    #: Concepts covered by the named graph.
    concepts: FrozenSet[IRI]
    #: Feature → signature attribute name that populates it.
    feature_attributes: Mapping[IRI, str]
    #: Concept-relation edges included in the named graph.
    edges: FrozenSet[Triple]

    @property
    def features(self) -> FrozenSet[IRI]:
        """The features this wrapper populates."""
        return frozenset(self.feature_attributes)

    def provides(self, feature: IRI) -> bool:
        """Whether this wrapper populates ``feature``."""
        return feature in self.feature_attributes

    def covers_edge(self, edge: Triple) -> bool:
        """Whether the named graph includes the relation ``edge``."""
        return edge in self.edges


@dataclass(frozen=True)
class LavMapping:
    """The stored form of one mapping (named graph + sameAs function)."""

    wrapper: IRI
    subgraph: Tuple[Triple, ...]
    same_as: Tuple[Tuple[IRI, IRI], ...]  # (attribute, feature) pairs


class LavMappingStore:
    """Defines, validates and serves LAV mappings over the MDM dataset."""

    def __init__(
        self,
        dataset: Dataset,
        global_graph: GlobalGraph,
        source_graph: SourceGraph,
    ):
        self.dataset = dataset
        self.global_graph = global_graph
        self.source_graph = source_graph

    # ------------------------------------------------------------------ #
    # definition
    # ------------------------------------------------------------------ #

    def define(
        self,
        wrapper: IRI,
        subgraph: Iterable[Triple],
        same_as: Mapping[IRI, IRI],
    ) -> LavMapping:
        """Define (or replace) the LAV mapping for ``wrapper``.

        ``subgraph`` is the steward's contour over the global graph;
        ``same_as`` maps attribute IRIs of this wrapper to feature IRIs.
        Raises :class:`MappingError` on any violated constraint.
        """
        triples = tuple(subgraph)
        if not triples:
            raise MappingError(f"mapping for {wrapper} has an empty named graph")
        self._check_wrapper(wrapper)
        self._check_subgraph(wrapper, triples)
        self._check_same_as(wrapper, triples, same_as)
        self._check_identifiers(wrapper, triples, same_as)
        # Store: the named graph is identified by the wrapper IRI.
        if self.dataset.has_graph(wrapper):
            self.dataset.remove_graph(wrapper)
        named = self.dataset.graph(wrapper)
        named.add_all(triples)
        # sameAs links live in the source graph, next to the attributes.
        # Attributes can be shared across wrappers of the same source, so a
        # link may pre-exist; it must then point at the same feature.
        for attribute, feature in sorted(same_as.items(), key=lambda kv: kv[0].value):
            existing = list(self.source_graph.graph.objects(attribute, OWL.sameAs))
            if existing and existing != [feature]:
                raise MappingError(
                    f"attribute {attribute} is already linked to "
                    f"{existing[0]}; a shared attribute cannot map to a "
                    f"different feature ({feature})"
                )
            self.source_graph.graph.add((attribute, OWL.sameAs, feature))
        return LavMapping(
            wrapper=wrapper,
            subgraph=triples,
            same_as=tuple(sorted(same_as.items(), key=lambda kv: kv[0].value)),
        )

    def _check_wrapper(self, wrapper: IRI) -> None:
        if self.source_graph.source_of(wrapper) is None:
            raise MappingError(
                f"{wrapper} is not a registered wrapper; register it on the "
                "source graph before mapping it"
            )

    def _check_subgraph(self, wrapper: IRI, triples: Tuple[Triple, ...]) -> None:
        for triple in triples:
            if triple not in self.global_graph.graph:
                raise MappingError(
                    f"mapping for {wrapper}: triple {triple.n3()} is not part "
                    "of the global graph (a LAV named graph must be a "
                    "subgraph of the global graph)"
                )
        contour = Graph()
        contour.add_all(triples)
        components = connected_components(contour)
        if len(components) > 1:
            raise MappingError(
                f"mapping for {wrapper}: the named graph is disconnected "
                f"({len(components)} components); draw one contour"
            )

    def _check_same_as(
        self,
        wrapper: IRI,
        triples: Tuple[Triple, ...],
        same_as: Mapping[IRI, IRI],
    ) -> None:
        wrapper_attributes = set(self.source_graph.attributes_of(wrapper))
        mapped_features: Set[IRI] = set()
        for attribute, feature in same_as.items():
            if attribute not in wrapper_attributes:
                raise MappingError(
                    f"mapping for {wrapper}: {attribute} is not an attribute "
                    "of this wrapper"
                )
            if not self.global_graph.is_feature(feature):
                raise MappingError(
                    f"mapping for {wrapper}: {feature} is not a feature of "
                    "the global graph"
                )
            if feature in mapped_features:
                raise MappingError(
                    f"mapping for {wrapper}: feature {feature} is populated "
                    "by more than one attribute"
                )
            mapped_features.add(feature)
        included_features = {
            t.object
            for t in triples
            if t.predicate == G.hasFeature and isinstance(t.object, IRI)
        }
        unmapped = included_features - mapped_features
        if unmapped:
            raise MappingError(
                f"mapping for {wrapper}: features in the named graph without "
                f"a sameAs attribute: {sorted(str(f) for f in unmapped)}"
            )
        orphans = mapped_features - included_features
        if orphans:
            raise MappingError(
                f"mapping for {wrapper}: sameAs targets outside the named "
                f"graph: {sorted(str(f) for f in orphans)}"
            )

    def _check_identifiers(
        self,
        wrapper: IRI,
        triples: Tuple[Triple, ...],
        same_as: Mapping[IRI, IRI],
    ) -> None:
        from ..rdf.reasoner import superclass_closure

        mapped_features = set(same_as.values())
        for concept in self._concepts_in(triples):
            # A subclass concept is identified by its own identifier or by
            # an inherited one from any superclass (taxonomy support).
            identifiers: Set[IRI] = set()
            for ancestor in superclass_closure(self.global_graph.graph, concept):
                if isinstance(ancestor, IRI) and self.global_graph.is_concept(ancestor):
                    identifiers.update(self.global_graph.identifiers_of(ancestor))
            if not identifiers:
                raise MappingError(
                    f"mapping for {wrapper}: covered concept {concept} has "
                    "no identifier feature in the global graph"
                )
            if not (identifiers & mapped_features):
                raise MappingError(
                    f"mapping for {wrapper}: covered concept {concept} must "
                    "include and populate an identifier feature (joins are "
                    "restricted to sc:identifier descendants)"
                )

    def _concepts_in(self, triples: Iterable[Triple]) -> List[IRI]:
        concepts: Set[IRI] = set()
        for triple in triples:
            for term in (triple.subject, triple.object):
                if isinstance(term, IRI) and self.global_graph.is_concept(term):
                    concepts.add(term)
        return sorted(concepts, key=lambda i: i.value)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def mapped_wrappers(self) -> List[IRI]:
        """Wrappers that currently have a LAV mapping, sorted."""
        return [
            name
            for name in self.dataset.graph_names()
            if self.source_graph.source_of(name) is not None
        ]

    def named_graph(self, wrapper: IRI) -> Graph:
        """The stored named graph for ``wrapper``."""
        if not self.dataset.has_graph(wrapper):
            raise MappingError(f"no LAV mapping defined for {wrapper}")
        return self.dataset.graph(wrapper)

    def same_as_of(self, wrapper: IRI) -> Dict[IRI, IRI]:
        """Attribute → feature links for ``wrapper``'s attributes."""
        out: Dict[IRI, IRI] = {}
        for attribute in self.source_graph.attributes_of(wrapper):
            for feature in self.source_graph.graph.objects(attribute, OWL.sameAs):
                if isinstance(feature, IRI):
                    out[attribute] = feature
        return out

    def same_as_of_attribute(self, attribute: IRI) -> List[IRI]:
        """The feature(s) an attribute IRI is linked to (usually 0 or 1)."""
        return sorted(
            (
                f
                for f in self.source_graph.graph.objects(attribute, OWL.sameAs)
                if isinstance(f, IRI)
            ),
            key=lambda i: i.value,
        )

    def view(self, wrapper: IRI) -> MappingView:
        """The query-ready :class:`MappingView` for ``wrapper``."""
        named = self.named_graph(wrapper)
        concepts = frozenset(self._concepts_in(named))
        included_features = {
            t.object
            for t in named.triples((None, G.hasFeature, None))
            if isinstance(t.object, IRI)
        }
        feature_attributes: Dict[IRI, str] = {}
        for attribute, feature in self.same_as_of(wrapper).items():
            if feature in included_features:
                name = self.source_graph.attribute_name(attribute)
                if name is not None:
                    feature_attributes[feature] = name
        edges = frozenset(
            t
            for t in named
            if isinstance(t.subject, IRI)
            and isinstance(t.object, IRI)
            and t.subject in concepts
            and t.object in concepts
            and t.predicate != G.hasFeature
            and t.predicate != RDF.type
        )
        return MappingView(
            wrapper=wrapper,
            wrapper_name=self.source_graph.wrapper_name(wrapper) or wrapper.local_name(),
            concepts=concepts,
            feature_attributes=feature_attributes,
            edges=edges,
        )

    def views(self) -> List[MappingView]:
        """Views for every mapped wrapper, sorted by wrapper IRI."""
        return [self.view(w) for w in self.mapped_wrappers()]
