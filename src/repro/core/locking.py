"""A reentrant readers–writer lock for the MDM metadata snapshot.

The paper's backend serves "a set of REST APIs" to interactive analysts
while stewards evolve the metadata underneath them (§2.5).  Offline that
means one :class:`~repro.core.mdm.MDM` object shared by many service
threads: queries must never observe a half-applied release (wrapper
registered but mapping missing, generation bumped but graph not yet
written), and releases must never tear a running query's snapshot.

:class:`ReadWriteLock` provides the standard shared/exclusive discipline
with the two properties MDM needs:

- **Reentrancy.** A thread holding the read lock may re-acquire it
  (``execute`` → ``rewrite`` → graph reads all guard independently), and
  a thread holding the write lock may take either lock again (mutators
  call read helpers internally).  Read→write *upgrades* are refused —
  they deadlock two upgrading readers against each other.
- **Writer preference.** Once a writer is waiting, new top-level readers
  queue behind it.  Under a steady analyst query stream a release would
  otherwise starve forever; reentrant re-acquisitions are exempt so an
  in-flight reader can always finish.

Standard library only; no imports from the rest of :mod:`repro`.  Fault
injection therefore arrives through an *injected* hook rather than an
import: :mod:`repro.chaos.failpoints` calls :func:`set_failpoint_hook`
when it loads, after which ``lock.read`` / ``lock.write`` failpoints can
stall or fail acquisitions in chaos tests.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

__all__ = ["ReadWriteLock", "set_failpoint_hook"]

#: Installed by repro.chaos.failpoints; None until the chaos package
#: loads, and a two-load no-op check on every acquisition afterwards.
_failpoint_hook: Optional[Callable[[str], None]] = None


def set_failpoint_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Register the chaos ``fire`` callback for lock-acquisition sites."""
    global _failpoint_hook
    _failpoint_hook = hook


class ReadWriteLock:
    """Shared (read) / exclusive (write) lock, reentrant per thread."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: Threads currently inside a top-level read section.
        self._readers = 0
        #: Ident of the thread holding the write lock, if any.
        self._writer: int | None = None
        self._writer_depth = 0
        #: Writers blocked in :meth:`acquire_write` (for writer preference).
        self._writers_waiting = 0
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    def acquire_read(self) -> None:
        """Enter a shared section (blocks while a writer holds or waits)."""
        if _failpoint_hook is not None:
            _failpoint_hook("lock.read")
        me = threading.get_ident()
        depth = self._read_depth()
        if depth > 0 or self._writer == me:
            # Reentrant read, or a read inside our own write section:
            # already protected, never wait (waiting here would deadlock
            # against ourselves or a queued writer).
            self._local.read_depth = depth + 1
            return
        with self._cond:
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.read_depth = 1

    def release_read(self) -> None:
        """Leave a shared section."""
        depth = self._read_depth()
        if depth <= 0:
            raise RuntimeError("release_read() without a matching acquire")
        self._local.read_depth = depth - 1
        if depth == 1 and self._writer != threading.get_ident():
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator["ReadWriteLock"]:
        """``with lock.read_locked():`` — shared access for the block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def acquire_write(self) -> None:
        """Enter the exclusive section (blocks until all readers drain)."""
        if _failpoint_hook is not None:
            _failpoint_hook("lock.write")
        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            return
        if self._read_depth() > 0:
            raise RuntimeError(
                "cannot upgrade a read lock to a write lock (two upgrading "
                "readers would deadlock); release the read lock first"
            )
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Leave the exclusive section."""
        if self._writer != threading.get_ident():
            raise RuntimeError("release_write() by a thread not holding it")
        self._writer_depth -= 1
        if self._writer_depth == 0:
            with self._cond:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator["ReadWriteLock"]:
        """``with lock.write_locked():`` — exclusive access for the block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # ------------------------------------------------------------------ #
    # introspection (tests, /config endpoints)
    # ------------------------------------------------------------------ #

    def state(self) -> Dict[str, int]:
        """A point-in-time snapshot of the lock's occupancy."""
        with self._cond:
            return {
                "readers": self._readers,
                "writer_held": int(self._writer is not None),
                "writers_waiting": self._writers_waiting,
            }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        s = self.state()
        return (
            f"<ReadWriteLock readers={s['readers']} "
            f"writer={'yes' if s['writer_held'] else 'no'} "
            f"waiting={s['writers_waiting']}>"
        )
