"""Name-based link suggestions: semi-automatic mapping for *new* sources.

The paper's accommodation machinery reuses attribute IRIs when a *known*
source evolves.  For a *brand-new* source there is nothing to reuse — yet
"the data steward is aided on the process of linking such new schemata to
the global graph".  This module provides that aid: it ranks, for each
wrapper attribute, the global features whose names look alike, using a
normalized-token similarity (case/camel/snake-insensitive, with a
Levenshtein fallback).  The steward confirms or overrides; nothing is
asserted automatically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..rdf.terms import IRI
from .global_graph import GlobalGraph
from .source_graph import SourceGraph

__all__ = ["LinkSuggestion", "suggest_links", "name_similarity"]

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_SPLIT_RE = re.compile(r"[^A-Za-z0-9]+")


def _tokens(name: str) -> Tuple[str, ...]:
    """Lower-cased word tokens of an identifier-ish name."""
    spaced = _CAMEL_RE.sub(" ", name)
    return tuple(t.lower() for t in _SPLIT_RE.split(spaced) if t)


def _levenshtein(a: str, b: str) -> int:
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def name_similarity(attribute_name: str, feature_name: str) -> float:
    """A [0, 1] similarity between an attribute and a feature name.

    1.0 for exact token-set matches (``team_id`` vs ``teamId``), partial
    credit for token overlap, and a character-level Levenshtein fallback
    so abbreviations (``pName`` vs ``playerName``) still score.
    """
    a_tokens = set(_tokens(attribute_name))
    f_tokens = set(_tokens(feature_name))
    if not a_tokens or not f_tokens:
        return 0.0
    if a_tokens == f_tokens:
        return 1.0
    overlap = len(a_tokens & f_tokens) / len(a_tokens | f_tokens)
    a_flat = "".join(sorted(a_tokens))
    f_flat = "".join(sorted(f_tokens))
    distance = _levenshtein(a_flat, f_flat)
    char_similarity = 1.0 - distance / max(len(a_flat), len(f_flat))
    return max(overlap, round(char_similarity, 4) * 0.95)


@dataclass(frozen=True)
class LinkSuggestion:
    """Ranked feature candidates for one wrapper attribute."""

    attribute: IRI
    attribute_name: str
    #: (feature, score) pairs, best first; empty when nothing plausible.
    candidates: Tuple[Tuple[IRI, float], ...]

    @property
    def best(self) -> Optional[IRI]:
        """The top candidate, or None."""
        return self.candidates[0][0] if self.candidates else None

    @property
    def confident(self) -> bool:
        """Whether the top candidate clears the confidence bar (0.8)."""
        return bool(self.candidates) and self.candidates[0][1] >= 0.8


def suggest_links(
    global_graph: GlobalGraph,
    source_graph: SourceGraph,
    wrapper: IRI,
    concepts: Optional[Sequence[IRI]] = None,
    minimum: float = 0.35,
    top_k: int = 3,
) -> List[LinkSuggestion]:
    """Rank global features against every attribute of ``wrapper``.

    ``concepts`` optionally restricts candidates to features of the given
    concepts (the steward usually knows *which* concept the source is
    about, just not the feature-by-feature links).
    """
    if concepts:
        feature_pool: List[IRI] = []
        for concept in concepts:
            feature_pool.extend(global_graph.features_of(concept))
    else:
        feature_pool = global_graph.features()
    suggestions: List[LinkSuggestion] = []
    for attribute in source_graph.attributes_of(wrapper):
        attribute_name = source_graph.attribute_name(attribute) or ""
        scored = [
            (feature, name_similarity(attribute_name, feature.local_name()))
            for feature in feature_pool
        ]
        ranked = sorted(
            ((f, s) for f, s in scored if s >= minimum),
            key=lambda pair: (-pair[1], pair[0].value),
        )[:top_k]
        suggestions.append(
            LinkSuggestion(
                attribute=attribute,
                attribute_name=attribute_name,
                candidates=tuple(ranked),
            )
        )
    return suggestions
