"""The MDM facade: the end-to-end Metadata Management System.

One object ties together the four interaction kinds of paper §2:

(a) *definition of the global graph* — :meth:`add_concept`,
    :meth:`add_feature`, :meth:`add_identifier`, :meth:`relate`,
    :meth:`load_uml`;
(b) *registration of wrappers* — :meth:`register_source`,
    :meth:`register_wrapper` (with release governance and attribute
    reuse);
(c) *definition of LAV mappings* — :meth:`define_mapping` and the
    semi-automatic :meth:`suggest_mapping` / :meth:`apply_suggestion`;
(d) *querying the global graph* — :meth:`walk_from_nodes`,
    :meth:`rewrite`, :meth:`execute` (walk → SPARQL + UCQ algebra →
    federated execution → table).

State lives in one RDF :class:`~repro.rdf.dataset.Dataset` (global graph
and source graph as named graphs, one named graph per wrapper for LAV)
plus a metadata :class:`~repro.docstore.store.DocumentStore` — mirroring
the paper's Jena TDB + MongoDB split.
"""

from __future__ import annotations

import contextvars
import copy
import os
import threading
import time
import uuid
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..docstore.store import DocumentStore
from ..obs import get_metrics, get_tracer
from ..obs.profile import (
    MemoryWatch,
    PhaseTimer,
    ResourceProfile,
    rollup_operators,
)
from ..obs.querylog import QueryLogRecord, get_query_log
from ..rdf.dataset import Dataset
from ..rdf.terms import IRI, Triple
from ..relational.executor import Executor, OperatorStats
from ..relational.optimizer import OptimizationStats, PlanOptimizer
from ..relational.relation import Relation
from ..sources.fetch import FULL_FETCH, FetchRequest, apply_fetch_request
from ..sources.wrappers import RetryPolicy, Wrapper
from ..sparql.evaluator import evaluate_text
from .errors import (
    ImpactGateError,
    MappingError,
    MdmError,
    PlanValidationError,
    SourceGraphError,
)
from .global_graph import GlobalGraph, UmlModel
from .lav import LavMappingStore, MappingView
from .locking import ReadWriteLock
from .releases import (
    KIND_EVOLUTION,
    KIND_NEW_SOURCE,
    GovernanceLog,
    MappingSuggestion,
    suggest_mapping,
)
from .rewriting import Rewriter, RewriteResult
from .source_graph import SourceGraph, WrapperRegistration
from .vocabulary import G, M, mdm_namespace_manager
from .walks import Walk

__all__ = ["MDM", "QueryOutcome"]


class QueryOutcome:
    """The result of executing one OMQ end-to-end."""

    def __init__(
        self,
        rewrite: RewriteResult,
        relation: Relation,
        skipped_wrappers: Tuple[str, ...] = (),
        executor: Optional[Executor] = None,
        operator_stats: Optional[OperatorStats] = None,
        fetch_attempts: Optional[Mapping[str, int]] = None,
        naive_plan=None,
        executed_plan=None,
        optimization: Optional[OptimizationStats] = None,
        subplan_hits: int = 0,
        subplan_misses: int = 0,
        plan_findings: Tuple = (),
        plan_validated: bool = False,
        profile: Optional[ResourceProfile] = None,
        generation: int = -1,
        result_cache: str = "off",
        pushdown: Optional[Dict[str, object]] = None,
    ):
        self.rewrite = rewrite
        self.relation = relation
        #: Wrappers whose fetch failed and were skipped (empty when
        #: ``on_wrapper_error="raise"``).
        self.skipped_wrappers = skipped_wrappers
        self._executor = executor
        #: Per-operator execution statistics (``execute(..., analyze=True)``
        #: or any execution while tracing is enabled); None otherwise.
        self.operator_stats = operator_stats
        #: Fetch attempts spent per wrapper (1 = first-try success; absent
        #: wrappers were not needed by this query's UCQ).
        self.fetch_attempts: Dict[str, int] = dict(fetch_attempts or {})
        #: The UCQ plan as emitted by the LAV rewriting (pre-optimization).
        self.naive_plan = naive_plan
        #: The plan that was actually executed (== naive_plan when the
        #: logical optimizer is off or changed nothing).
        self.executed_plan = executed_plan
        #: What the logical optimizer did (None when it was off).
        self.optimization = optimization
        #: Shared-subplan memo reuse during this query's execution.
        self.subplan_hits = subplan_hits
        self.subplan_misses = subplan_misses
        #: Findings from the static plan schema check (empty when the
        #: check was off or silent; errors raise before an outcome exists).
        self.plan_findings = tuple(plan_findings)
        #: Whether the static plan schema check ran for this query.
        self.plan_validated = plan_validated
        #: Per-query resource profile (phase wall times, rows, peak
        #: memory, per-operator self time); always present for outcomes
        #: produced by :meth:`MDM.execute`.
        self.profile = profile
        #: The metadata generation this outcome was computed under — the
        #: whole execution runs inside one read-locked snapshot, so the
        #: value is exact (two outcomes at the same generation for the
        #: same walk are byte-identical).
        self.generation = generation
        #: Result-cache disposition: "off" (cache disabled), "miss",
        #: "bypass" (``use_cache=False``) or "hit" (this outcome was
        #: served from :class:`~repro.core.result_cache.ResultCache`).
        self.result_cache = result_cache
        #: Federated-pushdown summary for this query (None when pushdown
        #: was off): per-wrapper request shape (pushed/full), canonical
        #: request, wrapper-cache disposition and row-transfer counts,
        #: plus the per-query totals.
        self.pushdown = pushdown

    @property
    def optimized(self) -> bool:
        """True when the logical optimizer rewrote the executed plan."""
        return (
            self.optimization is not None
            and self.executed_plan is not None
            and self.executed_plan is not self.naive_plan
        )

    @property
    def partial(self) -> bool:
        """True when failed wrappers degraded the union (CQs were dropped)."""
        return bool(self.skipped_wrappers)

    def explain_analyze(self) -> str:
        """EXPLAIN ANALYZE-style tree: rows-in/rows-out/elapsed per operator.

        Available when the outcome was produced with ``analyze=True`` (or
        while the process tracer was enabled).
        """
        if self.operator_stats is None:
            raise MdmError(
                "explain_analyze() needs execute(walk, analyze=True)"
            )
        lines = [
            f"EXPLAIN ANALYZE  union of {self.rewrite.ucq_size} CQs, "
            f"{len(self.relation)} rows"
        ]
        if self.result_cache == "hit":
            lines.append(
                f"Result cache: hit (outcome reused at generation "
                f"{self.generation}; stats below are from the original run)"
            )
        elif self.result_cache in ("miss", "bypass"):
            lines.append(
                f"Result cache: {self.result_cache} "
                f"(generation {self.generation})"
            )
        if self.optimization is not None and self.naive_plan is not None:
            lines.append(f"Plan (rewritten):  {self.naive_plan.pretty()}")
            if self.optimized:
                lines.append(
                    f"Plan (optimized):  {self.executed_plan.pretty()}"
                )
            summary = self.optimization
            rules = ", ".join(
                f"{name}={count}"
                for name, count in sorted(summary.rules.items())
            )
            lines.append(
                f"Optimizer: {summary.total} rule applications in "
                f"{summary.elapsed_s * 1000.0:.3f}ms over {summary.passes} "
                f"passes" + (f" ({rules})" if rules else "")
            )
        if self.subplan_hits or self.subplan_misses:
            lines.append(
                f"Shared subplans: {self.subplan_hits} memo hits / "
                f"{self.subplan_misses} misses"
            )
        if self.pushdown is not None:
            pd = self.pushdown
            lines.append(
                f"Pushdown: {pd['pushed']} pushed / {pd['full']} full "
                f"fetch(es); rows transferred={pd['rows_transferred']} "
                f"saved={pd['rows_pushed_down']}"
            )
            for name, info in sorted(pd["requests"].items()):
                if info["kind"] != "pushed":
                    continue
                suffix = (
                    f" [cache {info['cache']}]"
                    if info["cache"] != "off"
                    else ""
                )
                lines.append(f"  {name} ⇐ {info['request']}{suffix}")
            wc = pd.get("wrapper_cache") or {}
            if wc.get("enabled"):
                lines.append(
                    f"Wrapper cache: {wc['hits']} hit(s) / "
                    f"{wc['misses']} miss(es)"
                )
        if self.plan_validated:
            if self.plan_findings:
                lines.append(
                    f"Plan check: passed with {len(self.plan_findings)} "
                    "non-error finding(s): "
                    + "; ".join(f.render() for f in self.plan_findings)
                )
            else:
                lines.append("Plan check: passed (no findings)")
        if self.profile is not None:
            lines.append(self.profile.render())
        lines.append(self.operator_stats.pretty())
        return "\n".join(lines)

    def provenance(self) -> List[Dict[str, object]]:
        """Per-CQ lineage: which wrapper combination produced which rows.

        Each entry describes one conjunctive query of the union — its
        per-concept wrapper cover, the distinct rows it contributed, and
        how many of them no *other* CQ produced (its exclusive
        contribution).  After an evolution release this shows exactly
        what each schema version delivers.
        """
        if self._executor is None:
            raise MdmError("provenance requires an executed outcome")
        from ..relational.algebra import Distinct, Project

        per_cq: List[Tuple[str, set]] = []
        for query in self.rewrite.queries:
            if self.skipped_wrappers and (
                set(query.wrapper_names) & set(self.skipped_wrappers)
            ):
                per_cq.append((query.describe(), set()))
                continue
            branch = Distinct(Project(query.plan, self.rewrite.projection))
            rows = set(self._executor.execute(branch).rows)
            per_cq.append((query.describe(), rows))
        report: List[Dict[str, object]] = []
        for index, (description, rows) in enumerate(per_cq):
            others: set = set()
            for other_index, (_, other_rows) in enumerate(per_cq):
                if other_index != index:
                    others |= other_rows
            report.append(
                {
                    "cq": description,
                    "rows": len(rows),
                    "exclusive_rows": len(rows - others),
                    "skipped": not rows
                    and bool(
                        set(self.rewrite.queries[index].wrapper_names)
                        & set(self.skipped_wrappers)
                    ),
                }
            )
        return report

    def to_table(self) -> str:
        """The tabular rendering MDM shows the analyst (Table 1)."""
        return self.relation.to_table()

    def aggregate(
        self,
        group_by: Sequence[str],
        metrics: Sequence[Tuple[str, str, str]],
    ) -> Relation:
        """Group/aggregate the result the way a BI layer over MDM would.

        ``metrics`` are ``(function, column, alias)`` triples with
        function in count/sum/avg/min/max (``column="*"`` for count).

        >>> outcome.aggregate(["teamName"], [("count", "*", "players")])
        """
        from ..relational.algebra import Aggregate, Scan

        executor = Executor({"__result__": self.relation})
        plan = Aggregate(
            Scan("__result__"), tuple(group_by), tuple(metrics)
        )
        return executor.execute(plan).sorted()

    def __repr__(self) -> str:
        return (
            f"<QueryOutcome {len(self.relation)} rows via "
            f"{self.rewrite.ucq_size} CQs>"
        )


#: Default size of the federated fetch thread pool (env-overridable).
DEFAULT_FETCH_WORKERS = int(os.environ.get("MDM_FETCH_WORKERS", "4"))

#: Default for the logical plan optimizer (``MDM_OPTIMIZE=0`` disables).
DEFAULT_OPTIMIZE = os.environ.get("MDM_OPTIMIZE", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)

#: Default for the post-optimizer plan schema check
#: (``MDM_VALIDATE_PLANS=0`` disables).
DEFAULT_VALIDATE_PLANS = os.environ.get(
    "MDM_VALIDATE_PLANS", "1"
).strip().lower() not in ("0", "false", "no", "off")

#: Default capacity of the query-outcome result cache (0 = disabled;
#: ``repro-mdm serve`` opts in explicitly for the multi-client workload).
DEFAULT_RESULT_CACHE_SIZE = int(os.environ.get("MDM_RESULT_CACHE", "0"))

#: Default for federated pushdown — folding eligible predicates and
#: projections into the wrapper fetch itself (``MDM_PUSHDOWN=0``
#: disables, restoring full-payload fetches with mediator-side
#: evaluation).
DEFAULT_PUSHDOWN = os.environ.get("MDM_PUSHDOWN", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)

#: Default capacity of the generation-keyed wrapper data cache
#: (0 = disabled; same opt-in freshness trade as the result cache).
DEFAULT_WRAPPER_CACHE_SIZE = int(os.environ.get("MDM_WRAPPER_CACHE", "0"))

#: Valid postures of the evolution-impact gate.
IMPACT_GATES = ("off", "advisory", "blocking")

#: Default posture of the evolution-impact gate on wrapper releases:
#: ``off`` (no pre-release analysis), ``advisory`` (analyze and record
#: the verdict on the release document) or ``blocking`` (additionally
#: refuse BROKEN releases before any metadata mutates).
DEFAULT_IMPACT_GATE = os.environ.get("MDM_IMPACT_GATE", "off").strip().lower()


def _validated_impact_gate(value: str) -> str:
    gate = str(value).strip().lower()
    if gate not in IMPACT_GATES:
        raise ValueError(
            f"impact_gate must be one of {IMPACT_GATES}, not {value!r}"
        )
    return gate


def _merge_optimization_stats(
    stage_a: Optional[OptimizationStats],
    stage_b: Optional[OptimizationStats],
) -> Optional[OptimizationStats]:
    """One summary covering pushdown extraction plus the logical pass.

    Row estimates come from the typed stage-B pass (stage A is
    type-blind and never estimates).
    """
    if stage_a is None:
        return stage_b
    if stage_b is None:
        return stage_a
    merged = OptimizationStats(
        rules=dict(stage_a.rules),
        passes=stage_a.passes + stage_b.passes,
        elapsed_s=stage_a.elapsed_s + stage_b.elapsed_s,
        estimated_rows_before=stage_b.estimated_rows_before,
        estimated_rows_after=stage_b.estimated_rows_after,
    )
    for rule, count in stage_b.rules.items():
        merged.count(rule, count)
    return merged


class MDM:
    """The Metadata Management System."""

    def __init__(
        self,
        metadata_path: Optional[os.PathLike] = None,
        *,
        max_fetch_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rewrite_cache_size: int = 128,
        result_cache_size: Optional[int] = None,
        optimize: Optional[bool] = None,
        validate_plans: Optional[bool] = None,
        pushdown: Optional[bool] = None,
        wrapper_cache_size: Optional[int] = None,
        impact_gate: Optional[str] = None,
        failpoints: Optional[object] = None,
    ):
        if failpoints is not None:
            # Arm the process-wide failpoint registry: a spec string
            # ("site=mode:cond;…"), or a pre-built FailpointRegistry.
            # $MDM_FAILPOINTS arms the same registry at import time.
            from ..chaos.failpoints import (
                FailpointRegistry,
                get_failpoints,
                set_failpoints,
            )

            if isinstance(failpoints, str):
                get_failpoints().arm_spec(failpoints)
            elif isinstance(failpoints, FailpointRegistry):
                set_failpoints(failpoints)
            else:
                raise TypeError(
                    "failpoints must be a spec string or a FailpointRegistry, "
                    f"not {type(failpoints).__name__}"
                )
        self.dataset = Dataset(namespaces=mdm_namespace_manager())
        self.global_graph = GlobalGraph(self.dataset.graph(M.globalGraph))
        self.source_graph = SourceGraph(self.dataset.graph(M.sourceGraph))
        self.mappings = LavMappingStore(
            self.dataset, self.global_graph, self.source_graph
        )
        self.rewriter = Rewriter(self.global_graph, self.mappings)
        self.metadata = DocumentStore(metadata_path)
        self.governance = GovernanceLog(self.metadata)
        #: Runtime wrapper objects by name (the executable side of S:Wrapper).
        self.wrappers: Dict[str, Wrapper] = {}
        self._sources_by_name: Dict[str, IRI] = {}
        #: Upper bound on concurrent wrapper fetches per query (1 = serial).
        self.max_fetch_workers = (
            max_fetch_workers if max_fetch_workers is not None else DEFAULT_FETCH_WORKERS
        )
        if self.max_fetch_workers < 1:
            raise ValueError("max_fetch_workers must be >= 1")
        #: Retry policy applied to every wrapper fetch during execution.
        self.retry_policy = retry_policy or RetryPolicy()
        #: Run the logical plan optimizer on every UCQ before execution.
        self.optimize = DEFAULT_OPTIMIZE if optimize is None else bool(optimize)
        #: Statically schema-check every post-optimizer plan before
        #: execution (reject optimizer bugs with a diagnostic instead of
        #: executing a corrupt plan).
        self.validate_plans = (
            DEFAULT_VALIDATE_PLANS if validate_plans is None else bool(validate_plans)
        )
        #: Fold eligible predicates/projections into the wrapper fetch
        #: (capability-gated; uncapable wrappers keep full fetches).
        self.pushdown = DEFAULT_PUSHDOWN if pushdown is None else bool(pushdown)
        #: Evolution-impact gate posture for wrapper releases
        #: (off/advisory/blocking — see :meth:`analyze_impact`).
        self.impact_gate = _validated_impact_gate(
            DEFAULT_IMPACT_GATE if impact_gate is None else impact_gate
        )
        #: Ring of the most recent :class:`ImpactReport` objects, newest
        #: last (served by ``GET /impact/recent``).
        self.impact_log: "deque" = deque(maxlen=50)
        #: Metadata generation: bumped on every ontology/source/mapping
        #: mutation; the rewrite cache keys plans by it so evolution can
        #: never serve a stale UCQ.
        self._generation = 0
        #: Readers–writer lock guarding the metadata snapshot: the nine
        #: metadata mutators hold it exclusively (and bump the generation
        #: while holding it), queries and read endpoints hold it shared —
        #: a query can never observe a half-applied release.
        self.metadata_lock = ReadWriteLock()
        from .rewrite_cache import RewriteCache

        #: LRU cache of rewrite plans keyed by (canonical walk, generation).
        self.rewrite_cache = RewriteCache(rewrite_cache_size)
        from .result_cache import ResultCache

        #: LRU cache of full query outcomes keyed by
        #: (canonical walk, generation, optimize flag); 0 disables.
        self.result_cache = ResultCache(
            DEFAULT_RESULT_CACHE_SIZE
            if result_cache_size is None
            else result_cache_size
        )
        from .wrapper_cache import WrapperCache

        #: LRU cache of fetched wrapper relations keyed by
        #: (wrapper, canonical fetch request, generation); 0 disables.
        self.wrapper_cache = WrapperCache(
            DEFAULT_WRAPPER_CACHE_SIZE
            if wrapper_cache_size is None
            else wrapper_cache_size
        )
        #: Memoized stage-A pushdown extractions keyed by
        #: (canonical walk, generation) — the extraction is a pure
        #: function of the rewritten plan and the wrapper capabilities,
        #: both frozen within a generation, so repeated queries skip it.
        self._pushdown_plan_cache: "OrderedDict[Tuple[str, int], Tuple[object, Optional[OptimizationStats]]]" = (
            OrderedDict()
        )
        self._pushdown_plan_lock = threading.Lock()
        from .registry import QueryRegistry

        #: Saved analytical processes (named walks) with revalidation.
        self.saved_queries = QueryRegistry(self)

    # ------------------------------------------------------------------ #
    # metadata generation & execution configuration
    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        """The current metadata generation (monotonic counter)."""
        return self._generation

    def bump_generation(self) -> int:
        """Advance the metadata generation (cached rewrites become cold).

        Called internally by every mutating registration (which already
        holds the write lock — the acquisition below is reentrant);
        exposed for embedders that mutate the graphs directly, whose
        bump is then serialized against in-flight queries too.
        """
        with self.metadata_lock.write_locked():
            self._generation += 1
            return self._generation

    def configure_execution(
        self,
        max_fetch_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        optimize: Optional[bool] = None,
        validate_plans: Optional[bool] = None,
        result_cache_size: Optional[int] = None,
        pushdown: Optional[bool] = None,
        wrapper_cache_size: Optional[int] = None,
        impact_gate: Optional[str] = None,
    ) -> Dict[str, object]:
        """Adjust the fetch pool / retry / optimizer; returns the live config."""
        if max_fetch_workers is not None:
            if max_fetch_workers < 1:
                raise ValueError("max_fetch_workers must be >= 1")
            self.max_fetch_workers = max_fetch_workers
        if retry_policy is not None:
            self.retry_policy = retry_policy
        if optimize is not None:
            self.optimize = bool(optimize)
        if validate_plans is not None:
            self.validate_plans = bool(validate_plans)
        if result_cache_size is not None:
            self.result_cache.resize(result_cache_size)
        if pushdown is not None:
            self.pushdown = bool(pushdown)
        if wrapper_cache_size is not None:
            self.wrapper_cache.resize(wrapper_cache_size)
        if impact_gate is not None:
            self.impact_gate = _validated_impact_gate(impact_gate)
        return self.execution_config()

    def execution_config(self) -> Dict[str, object]:
        """The live execution configuration (JSON-shaped)."""
        return {
            "max_fetch_workers": self.max_fetch_workers,
            "retry": self.retry_policy.describe(),
            "optimize": self.optimize,
            "validate_plans": self.validate_plans,
            "pushdown": self.pushdown,
            "impact_gate": self.impact_gate,
            "generation": self._generation,
            "rewrite_cache": self.rewrite_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "wrapper_cache": self.wrapper_cache.stats(),
            "metadata_lock": self.metadata_lock.state(),
        }

    # ------------------------------------------------------------------ #
    # (a) global graph definition
    # ------------------------------------------------------------------ #

    def add_concept(self, concept: IRI, label: Optional[str] = None) -> IRI:
        """Declare a concept in the global graph."""
        with self.metadata_lock.write_locked():
            self.bump_generation()
            return self.global_graph.add_concept(concept, label)

    def add_feature(
        self, feature: IRI, concept: IRI, label: Optional[str] = None
    ) -> IRI:
        """Attach a (non-identifier) feature to a concept."""
        with self.metadata_lock.write_locked():
            self.bump_generation()
            return self.global_graph.add_feature(feature, concept, label)

    def add_identifier(
        self, feature: IRI, concept: IRI, label: Optional[str] = None
    ) -> IRI:
        """Attach an identifier feature (``rdfs:subClassOf sc:identifier``)."""
        with self.metadata_lock.write_locked():
            self.bump_generation()
            return self.global_graph.add_identifier(feature, concept, label)

    def relate(self, source: IRI, prop: IRI, target: IRI) -> Triple:
        """Relate two concepts with a user-defined property."""
        with self.metadata_lock.write_locked():
            self.bump_generation()
            return self.global_graph.relate(source, prop, target)

    def load_uml(self, model: UmlModel) -> GlobalGraph:
        """Compile a UML model (Figure 1) into this MDM's global graph."""
        compiled = model.compile()
        with self.metadata_lock.write_locked():
            self.global_graph.graph.add_all(iter(compiled.graph))
            self.bump_generation()
            return self.global_graph

    # ------------------------------------------------------------------ #
    # (b) source & wrapper registration
    # ------------------------------------------------------------------ #

    def register_source(self, name: str, label: Optional[str] = None) -> IRI:
        """Declare a data source; returns its IRI (idempotent)."""
        with self.metadata_lock.write_locked():
            self.bump_generation()
            iri = self.source_graph.add_data_source(name, label)
            self._sources_by_name[name] = iri
            self.metadata.collection("sources").replace_one(
                {"name": name}, {"name": name, "iri": iri.value, "label": label or name}
            ) or self.metadata.collection("sources").insert_one(
                {"name": name, "iri": iri.value, "label": label or name}
            )
            return iri

    def source_iri(self, name: str) -> IRI:
        """The IRI of a registered source (raises if unknown)."""
        try:
            return self._sources_by_name[name]
        except KeyError:
            raise SourceGraphError(f"unknown data source {name!r}") from None

    def source_name_of(self, source: IRI) -> Optional[str]:
        """The registration name of a source IRI (None if unknown)."""
        for name, iri in self._sources_by_name.items():
            if iri == source:
                return name
        return None

    def sources(self) -> Dict[str, IRI]:
        """All registered sources as a ``name -> IRI`` mapping (a copy)."""
        return dict(self._sources_by_name)

    def register_wrapper(
        self,
        source_name: str,
        wrapper: Wrapper,
        kind: Optional[str] = None,
        changes: Sequence[str] = (),
    ) -> WrapperRegistration:
        """Register a wrapper release under a source.

        The signature is taken from the wrapper object; attribute IRIs are
        reused across the source's previous wrappers; the release is
        recorded in the governance log.  ``kind`` defaults to
        ``new-source`` for the source's first wrapper and ``evolution``
        afterwards.

        When :attr:`impact_gate` is not ``"off"`` the release is first
        run through :meth:`analyze_impact` against the *unmodified*
        metadata; ``blocking`` raises :class:`ImpactGateError` for a
        BROKEN verdict before a single triple mutates, ``advisory`` just
        records the verdict on the release document.
        """
        with self.metadata_lock.write_locked():
            source = self.source_iri(source_name)
            previous = self.source_graph.wrappers_of(source)
            resolved_kind = kind or (
                KIND_EVOLUTION if previous else KIND_NEW_SOURCE
            )
            impact_report = None
            if self.impact_gate != "off":
                from ..analysis.impact import WrapperRelease

                impact_report = self.analyze_impact(
                    WrapperRelease(
                        source=source_name,
                        wrapper=wrapper.name,
                        attributes=tuple(wrapper.attributes),
                        auto_map=False,
                        kind=resolved_kind,
                    )
                )
                if self.impact_gate == "blocking" and not impact_report.ok:
                    raise ImpactGateError(
                        f"impact gate: release of wrapper {wrapper.name!r} "
                        f"under {source_name!r} is classified "
                        f"{str(impact_report.verdict).upper()} — blocked "
                        "before any metadata mutation",
                        report=impact_report,
                    )
            registration = self.source_graph.register_wrapper(
                source, wrapper.name, wrapper.attributes
            )
            self.wrappers[wrapper.name] = wrapper
            self.governance.record(
                source_name,
                registration,
                resolved_kind,
                changes,
                impact=impact_report,
                gate=self.impact_gate,
            )
            self.bump_generation()
            return registration

    def wrapper_iri(self, wrapper_name: str) -> IRI:
        """The IRI of a registered wrapper (raises if unknown)."""
        iri = self.source_graph.wrapper_by_name(wrapper_name)
        if iri is None:
            raise SourceGraphError(f"unknown wrapper {wrapper_name!r}")
        return iri

    def bootstrap_wrapper(
        self,
        source_name: str,
        wrapper_name: str,
        server,
        path: str,
        params: Optional[Mapping[str, str]] = None,
        paginate: bool = False,
    ):
        """Infer a wrapper's signature from a live endpoint and register it.

        The signature is sampled from the endpoint
        (:func:`repro.sources.inference.infer_signature`), a
        :class:`~repro.sources.wrappers.RestWrapper` with the identity
        attribute map is created, and the registration goes through the
        normal release governance.  Returns
        ``(registration, signature_profile)``.
        """
        from ..sources.inference import infer_signature
        from ..sources.wrappers import RestWrapper

        profile = infer_signature(server, path, params)
        wrapper = RestWrapper(
            wrapper_name,
            list(profile.attribute_names),
            server,
            path,
            params=params,
            paginate=paginate,
        )
        registration = self.register_wrapper(source_name, wrapper)
        return registration, profile

    def suggest_links_for(
        self,
        wrapper_name: str,
        concepts: Optional[Sequence[IRI]] = None,
    ):
        """Name-similarity sameAs suggestions for a new wrapper's attributes.

        See :func:`repro.core.matching.suggest_links`; the steward reviews
        the ranking and feeds the confirmed pairs to
        :meth:`define_mapping`.
        """
        from .matching import suggest_links

        with self.metadata_lock.read_locked():
            return suggest_links(
                self.global_graph,
                self.source_graph,
                self.wrapper_iri(wrapper_name),
                concepts=concepts,
            )

    def profile_wrapper(self, wrapper_name: str):
        """Profile a registered wrapper's live output (types, nullability).

        Reuses the signature-inference machinery over the wrapper's actual
        ``fetch()`` rows; the steward uses this to spot data-quality drift
        between releases (a column suddenly going all-null, a type
        changing representation) even when the signature itself held.
        """
        from ..relational.types import AttrType, common_type, infer_type
        from ..sources.inference import AttributeProfile, SignatureProfile

        wrapper = self.wrappers.get(wrapper_name)
        if wrapper is None:
            raise SourceGraphError(
                f"wrapper {wrapper_name!r} has no runtime object to profile"
            )
        rows = wrapper.fetch()
        profiles = []
        for name in wrapper.attributes:
            inferred = AttrType.ANY
            present = 0
            nulls = 0
            examples: List[str] = []
            for row in rows:
                value = row.get(name)
                if value is None or value == "":
                    nulls += 1
                    continue
                present += 1
                inferred = common_type(inferred, infer_type(value))
                rendered = repr(value)
                if len(examples) < 3 and rendered not in examples:
                    examples.append(rendered)
            profiles.append(
                AttributeProfile(
                    name=name,
                    inferred_type=inferred,
                    present=present,
                    nulls=nulls,
                    examples=tuple(examples),
                )
            )
        return SignatureProfile(
            path=getattr(wrapper, "path", wrapper_name),
            record_count=len(rows),
            attributes=tuple(profiles),
        )

    def diff_wrapper_versions(self, old_name: str, new_name: str):
        """Signature diff between two registered wrappers (rename detection).

        Uses live sample rows when both wrappers have runtime objects, so
        value overlap can confirm renames that names alone would miss.
        """
        from .diffing import diff_signatures

        def signature(name: str) -> List[str]:
            iri = self.wrapper_iri(name)
            return [
                self.source_graph.attribute_name(a) or a.local_name()
                for a in self.source_graph.attributes_of(iri)
            ]

        def sample(name: str):
            wrapper = self.wrappers.get(name)
            if wrapper is None:
                return None
            try:
                return wrapper.fetch()[:50]
            except Exception:  # noqa: BLE001 — sampling is best-effort
                return None

        return diff_signatures(
            sorted(signature(old_name)),
            sorted(signature(new_name)),
            old_rows=sample(old_name),
            new_rows=sample(new_name),
        )

    # ------------------------------------------------------------------ #
    # (c) LAV mapping definition
    # ------------------------------------------------------------------ #

    def define_mapping(
        self,
        wrapper_name: str,
        features_by_attribute: Mapping[str, IRI],
        edges: Iterable[Tuple[IRI, IRI, IRI]] = (),
    ) -> MappingView:
        """Define the LAV mapping for ``wrapper_name`` by names.

        ``features_by_attribute`` maps *signature attribute names* to
        feature IRIs (the ``owl:sameAs`` gesture); ``edges`` are the
        concept relations inside the contour.  The named graph is derived:
        the ``hasFeature`` edge of every mapped feature plus the given
        relation edges.
        """
        with self.metadata_lock.write_locked():
            wrapper = self.wrapper_iri(wrapper_name)
            registration_attributes = {
                (self.source_graph.attribute_name(a) or ""): a
                for a in self.source_graph.attributes_of(wrapper)
            }
            same_as: Dict[IRI, IRI] = {}
            for attribute_name, feature in features_by_attribute.items():
                attribute = registration_attributes.get(attribute_name)
                if attribute is None:
                    raise MappingError(
                        f"wrapper {wrapper_name!r} has no attribute "
                        f"{attribute_name!r}; signature is "
                        f"{self.source_graph.signature_of(wrapper)}"
                    )
                same_as[attribute] = feature
            subgraph: List[Triple] = []
            for feature in sorted(set(same_as.values()), key=lambda i: i.value):
                concept = self.global_graph.concept_of(feature)
                if concept is None:
                    raise MappingError(
                        f"{feature} is not attached to any concept"
                    )
                subgraph.append(Triple(concept, G.hasFeature, feature))
            for s, p, o in edges:
                subgraph.append(Triple(s, p, o))
            self.mappings.define(wrapper, subgraph, same_as)
            self.bump_generation()
            return self.mappings.view(wrapper)

    def suggest_mapping(self, wrapper_name: str) -> MappingSuggestion:
        """Semi-automatic accommodation for an evolved source's wrapper."""
        self.metadata_lock.acquire_read()
        try:
            return self._suggest_mapping_locked(wrapper_name)
        finally:
            self.metadata_lock.release_read()

    def _suggest_mapping_locked(self, wrapper_name: str) -> MappingSuggestion:
        wrapper = self.wrapper_iri(wrapper_name)
        source = self.source_graph.source_of(wrapper)
        if source is None:
            raise SourceGraphError(f"wrapper {wrapper_name!r} has no source")
        attributes = tuple(
            (self.source_graph.attribute_name(a) or "", a)
            for a in self.source_graph.attributes_of(wrapper)
        )
        # Rebuild a registration view for the suggestion helper.
        registration = WrapperRegistration(
            source=source,
            wrapper=wrapper,
            wrapper_name=wrapper_name,
            attributes=attributes,
            reused_attributes=tuple(
                name
                for name, iri in attributes
                if self.mappings.same_as_of_attribute(iri)
            ),
        )
        return suggest_mapping(self.source_graph, self.mappings, registration)

    def apply_suggestion(
        self,
        suggestion: MappingSuggestion,
        extra_features_by_attribute: Optional[Mapping[str, IRI]] = None,
        extra_edges: Iterable[Tuple[IRI, IRI, IRI]] = (),
    ) -> MappingView:
        """Apply a mapping suggestion, optionally completed by the steward."""
        with self.metadata_lock.write_locked():
            wrapper = suggestion.wrapper
            same_as = dict(suggestion.same_as)
            if extra_features_by_attribute:
                by_name = {
                    (self.source_graph.attribute_name(a) or ""): a
                    for a in self.source_graph.attributes_of(wrapper)
                }
                for attribute_name, feature in (
                    extra_features_by_attribute.items()
                ):
                    attribute = by_name.get(attribute_name)
                    if attribute is None:
                        raise MappingError(
                            f"wrapper has no attribute {attribute_name!r}"
                        )
                    same_as[attribute] = feature
            subgraph: List[Triple] = list(suggestion.subgraph)
            for feature in set(same_as.values()):
                concept = self.global_graph.concept_of(feature)
                if concept is None:
                    raise MappingError(
                        f"{feature} is not attached to any concept"
                    )
                triple = Triple(concept, G.hasFeature, feature)
                if triple not in subgraph:
                    subgraph.append(triple)
            for s, p, o in extra_edges:
                triple = Triple(s, p, o)
                if triple not in subgraph:
                    subgraph.append(triple)
            self.mappings.define(wrapper, subgraph, same_as)
            self.bump_generation()
            return self.mappings.view(wrapper)

    # ------------------------------------------------------------------ #
    # (d) querying
    # ------------------------------------------------------------------ #

    def walk_from_nodes(self, nodes: Iterable[IRI]) -> Walk:
        """Complete a node selection into a validated walk."""
        with self.metadata_lock.read_locked():
            walk = Walk.from_nodes(self.global_graph, nodes)
            walk.validate(self.global_graph)
            return walk

    def rewrite(self, walk: Walk, use_cache: bool = True) -> RewriteResult:
        """Run the three-phase LAV rewriting for a walk.

        Plans are served from :attr:`rewrite_cache` when an entry exists
        for the walk *at the current metadata generation* — any wrapper,
        mapping or ontology registration since the plan was cached makes
        it cold, so evolution never replays a stale UCQ.  The query is
        logged to the metadata store either way (impact analysis counts
        posed queries, not rewriting work).

        ``use_cache`` is honored regardless of tracing: a traced cache
        hit shows up as a ``rewrite-cache`` span tagged ``cache=hit``
        instead of forcing a re-rewrite (the pre-observability versions
        bypassed the cache whenever the tracer was enabled, so traced
        runs never exercised the code path users actually run).
        """
        with self.metadata_lock.read_locked():
            result, _ = self._rewrite_with_status(walk, use_cache)
            return result

    def _rewrite_with_status(
        self, walk: Walk, use_cache: bool = True
    ) -> Tuple[RewriteResult, str]:
        """:meth:`rewrite` plus the cache disposition (hit/miss/bypass)."""
        with get_tracer().span("rewrite-cache") as cache_span:
            result = None
            status = "bypass"
            if use_cache:
                result = self.rewrite_cache.get(walk, self._generation)
                status = "hit" if result is not None else "miss"
            if result is None:
                result = self.rewriter.rewrite(walk)
                if use_cache:
                    self.rewrite_cache.put(walk, self._generation, result)
            cache_span.set_tag("cache", status)
        self.metadata.collection("queries").insert_one(
            {
                "walk": walk.describe(self.global_graph),
                "ucq_size": result.ucq_size,
                "wrappers": sorted(
                    {name for q in result.queries for name in q.wrapper_names}
                ),
            }
        )
        return result, status

    def execute(
        self,
        walk: Walk,
        on_wrapper_error: str = "raise",
        analyze: bool = False,
        use_cache: bool = True,
    ) -> QueryOutcome:
        """Rewrite a walk and execute the UCQ over the live wrappers.

        ``on_wrapper_error="skip"`` (alias: ``"partial"``) drops CQ
        branches whose wrappers fail to fetch (reporting them in the
        outcome, whose :attr:`QueryOutcome.partial` flag flips to True)
        instead of raising — useful while a source migration is in flight.

        Leaf wrappers of the UCQ are deduplicated (a wrapper shared by
        several CQs is fetched once per query) and fetched concurrently
        through a bounded thread pool of :attr:`max_fetch_workers`
        threads, each fetch governed by :attr:`retry_policy`.  The pool
        is used whether or not the process tracer is enabled: workers
        run under a copy of the caller's context, so their fetch spans
        parent correctly to this query's ``execute`` root.

        ``analyze=True`` (implied when this query's trace is being
        recorded) collects per-operator rows-in/rows-out/elapsed
        statistics; the outcome then supports
        :meth:`QueryOutcome.explain_analyze`.

        Every call — traced or not, successful or not — appends exactly
        one :class:`~repro.obs.querylog.QueryLogRecord` to the process
        query log, and every returned outcome carries a
        :class:`~repro.obs.profile.ResourceProfile`.
        """
        if on_wrapper_error not in ("raise", "skip", "partial"):
            raise ValueError(
                "on_wrapper_error must be 'raise', 'skip' or 'partial'"
            )
        with self.metadata_lock.read_locked():
            return self._execute_locked(walk, on_wrapper_error, analyze, use_cache)

    def _execute_locked(
        self,
        walk: Walk,
        on_wrapper_error: str,
        analyze: bool,
        use_cache: bool,
    ) -> QueryOutcome:
        """The body of :meth:`execute`, run under the metadata read lock.

        Holding the read lock end-to-end means the whole query — rewrite,
        fetch, optimize, execute — sees one metadata generation; the
        captured ``generation`` is therefore exact, which is what makes
        the result cache's generation keying sound.
        """
        tracer = get_tracer()
        root = tracer.span("execute")
        timer = PhaseTimer()
        memory = MemoryWatch()
        started_wall = time.time()
        generation = self._generation
        relations: Dict[str, Relation] = {}
        attempts: Dict[str, int] = {}
        fetch_meta: Dict[str, Dict[str, object]] = {}
        failed: List[str] = []
        result: Optional[RewriteResult] = None
        cache_status = "bypass"
        rc_status = "off"
        stats: Optional[OperatorStats] = None
        subplan_hits = 0
        subplan_misses = 0
        try:
            with memory, root:
                analyze = analyze or root.is_recording
                if self.result_cache.enabled:
                    rc_status = "bypass"
                    if use_cache:
                        with tracer.span("result-cache") as rc_span:
                            cached = self.result_cache.get(
                                walk,
                                generation,
                                self.optimize,
                                require_analyzed=analyze,
                                pushdown=self.pushdown,
                            )
                            rc_status = "hit" if cached is not None else "miss"
                            rc_span.set_tag("cache", rc_status)
                        if cached is not None:
                            served = copy.copy(cached)
                            served.result_cache = "hit"
                            root.set_tag("cache", "result-hit")
                            root.set_tag("rows", len(served.relation))
                            root.set_tag("generation", generation)
                            phase_ms = timer.finish()
                            self._log_query(
                                root=root,
                                walk=walk,
                                result=served.rewrite,
                                started_wall=started_wall,
                                duration_ms=timer.total_s * 1000.0,
                                phase_ms=phase_ms,
                                cache_status="hit",
                                relations={},
                                attempts={},
                                failed=[],
                                rows_returned=len(served.relation),
                                subplan_hits=0,
                                subplan_misses=0,
                                status="ok",
                                result_cache="hit",
                            )
                            metrics = get_metrics()
                            metrics.counter(
                                "mdm_queries_total",
                                "OMQs executed end-to-end.",
                            ).inc()
                            metrics.histogram(
                                "mdm_execute_seconds",
                                "End-to-end OMQ execution latency.",
                            ).observe(timer.total_s)
                            return served
                with timer.phase("rewrite"):
                    result, cache_status = self._rewrite_with_status(
                        walk, use_cache
                    )
                root.set_tag("cache", cache_status)
                executor = Executor()
                needed = {
                    name for q in result.queries for name in q.wrapper_names
                }
                # Stage A (pre-fetch): fold eligible predicates and
                # projections into the Scans so the fetch requests below
                # carry them across the wrapper boundary.  Runs over a
                # type-blind signature catalog — real types exist only
                # after fetching, which is exactly what pushdown avoids.
                pushed_plan = result.plan
                pushdown_stats: Optional[OptimizationStats] = None
                if self.pushdown:
                    with timer.phase("optimize"):
                        pushed_plan, pushdown_stats = (
                            self._extract_pushdown_cached(
                                walk, result.plan, needed, generation
                            )
                        )
                requests, register_as, derived = self._scan_requests(
                    pushed_plan, needed
                )
                with timer.phase("fetch"):
                    relations, attempts, errors, fetch_meta = (
                        self._fetch_requests(requests, generation)
                    )
                if errors and on_wrapper_error == "raise":
                    raise errors[min(errors)]
                failed = sorted(errors)
                registered: Dict[str, Relation] = {}
                for name in sorted(relations):
                    registered[register_as[name]] = relations[name]
                    # A wrapper fetched in full but scanned pushed
                    # elsewhere in the plan: derive those bindings
                    # mediator-side (executor semantics, so exact).
                    for scan in derived.get(name, ()):
                        registered[scan.binding_name()] = apply_fetch_request(
                            relations[name],
                            FetchRequest(
                                filters=scan.filters,
                                columns=scan.columns,
                                limit=scan.limit,
                            ),
                        )
                for name in sorted(registered):
                    executor.register(name, registered[name])
                if self.pushdown:
                    executor.base_resolver = self._base_resolver(generation)
                if failed:
                    get_metrics().counter(
                        "mdm_query_partial_total",
                        "OMQs answered partially after wrapper failures.",
                    ).inc()
                    surviving = [
                        q
                        for q in result.queries
                        if not (set(q.wrapper_names) & set(failed))
                    ]
                    if not surviving:
                        raise MdmError(
                            f"every CQ depends on a failed wrapper: "
                            f"{sorted(failed)}"
                        )
                    from ..relational.algebra import (
                        Distinct,
                        Project,
                        union_all,
                    )

                    naive_plan = Distinct(
                        union_all(
                            [
                                Project(q.plan, result.projection)
                                for q in surviving
                            ]
                        )
                    )
                    if pushed_plan is result.plan:
                        plan = naive_plan
                    else:
                        plan = self._drop_failed_branches(
                            pushed_plan, set(failed)
                        )
                else:
                    plan = pushed_plan
                    naive_plan = result.plan
                optimization: Optional[OptimizationStats] = pushdown_stats
                if self.optimize:
                    with timer.phase("optimize"):
                        plan, stage_b = self._optimize_plan(
                            plan,
                            executor,
                            {
                                name: len(rel)
                                for name, rel in registered.items()
                            },
                        )
                        optimization = _merge_optimization_stats(
                            pushdown_stats, stage_b
                        )
                plan_findings: Tuple = ()
                if self.validate_plans:
                    with timer.phase("validate"):
                        plan_findings = self._validate_plan(plan, executor)
                hits_before = executor.subplan_hits
                misses_before = executor.subplan_misses
                with timer.phase("execute"):
                    if analyze:
                        relation, stats = executor.execute_analyzed(plan)
                    else:
                        relation = executor.execute(plan)
                subplan_hits = executor.subplan_hits - hits_before
                subplan_misses = executor.subplan_misses - misses_before
                with timer.phase("finalize"):
                    if walk.optional_features:
                        optional_columns = [
                            result.column_names[f]
                            for f in walk.optional_features
                            if result.column_names.get(f) in relation.schema
                        ]
                        relation = relation.without_subsumed(optional_columns)
                    relation = relation.sorted()
                root.set_tag("ucq_size", result.ucq_size)
                root.set_tag("rows", len(relation))
                root.set_tag("fetch_attempts", sum(attempts.values()))
                if failed:
                    root.set_tag("skipped_wrappers", sorted(failed))
        except Exception as exc:
            phase_ms = timer.finish()
            self._log_query(
                root=root,
                walk=walk,
                result=result,
                started_wall=started_wall,
                duration_ms=timer.total_s * 1000.0,
                phase_ms=phase_ms,
                cache_status=cache_status,
                relations=relations,
                attempts=attempts,
                failed=failed,
                rows_returned=0,
                subplan_hits=subplan_hits,
                subplan_misses=subplan_misses,
                status="error",
                error=exc,
                result_cache=rc_status,
            )
            raise
        phase_ms = timer.finish()
        rows_fetched = sum(len(rel) for rel in relations.values())
        rows_transferred = sum(
            int(m["rows_transferred"]) for m in fetch_meta.values()
        )
        rows_pushed_down = sum(
            int(m["rows_source"]) - int(m["rows_transferred"])
            for m in fetch_meta.values()
            if m.get("rows_source") is not None
            and int(m["rows_source"]) > int(m["rows_transferred"])
        )
        profile = ResourceProfile(
            total_ms=timer.total_s * 1000.0,
            phase_ms=phase_ms,
            rows_fetched=rows_fetched,
            rows_scanned=self._rows_scanned(stats, rows_fetched),
            rows_returned=len(relation),
            peak_memory_bytes=memory.peak_bytes,
            operator_ms=rollup_operators(stats),
            rows_transferred=rows_transferred,
            rows_pushed_down=rows_pushed_down,
        )
        pushdown_summary: Optional[Dict[str, object]] = None
        if self.pushdown:
            pushed_count = sum(
                1 for m in fetch_meta.values() if m["kind"] == "pushed"
            )
            pushdown_summary = {
                "enabled": True,
                "pushed": pushed_count,
                "full": len(fetch_meta) - pushed_count,
                "requests": fetch_meta,
                "rows_transferred": rows_transferred,
                "rows_pushed_down": rows_pushed_down,
                "wrapper_cache": {
                    "enabled": self.wrapper_cache.enabled,
                    "hits": sum(
                        1
                        for m in fetch_meta.values()
                        if m["cache"] == "hit"
                    ),
                    "misses": sum(
                        1
                        for m in fetch_meta.values()
                        if m["cache"] == "miss"
                    ),
                },
            }
        self._log_query(
            root=root,
            walk=walk,
            result=result,
            started_wall=started_wall,
            duration_ms=profile.total_ms,
            phase_ms=phase_ms,
            cache_status=cache_status,
            relations=relations,
            attempts=attempts,
            failed=failed,
            rows_returned=len(relation),
            subplan_hits=subplan_hits,
            subplan_misses=subplan_misses,
            status="partial" if failed else "ok",
            result_cache=rc_status,
        )
        metrics = get_metrics()
        metrics.counter("mdm_queries_total", "OMQs executed end-to-end.").inc()
        metrics.histogram(
            "mdm_execute_seconds", "End-to-end OMQ execution latency."
        ).observe(timer.total_s)
        if subplan_hits or subplan_misses:
            subplan_counter = metrics.counter(
                "mdm_subplan_cache_total",
                "Shared-subplan memo lookups during UCQ execution.",
                labelnames=("result",),
            )
            if subplan_hits:
                subplan_counter.inc(subplan_hits, result="hit")
            if subplan_misses:
                subplan_counter.inc(subplan_misses, result="miss")
        outcome = QueryOutcome(
            result,
            relation,
            tuple(sorted(failed)),
            executor=executor,
            operator_stats=stats,
            fetch_attempts=attempts,
            naive_plan=naive_plan,
            executed_plan=plan,
            optimization=optimization,
            subplan_hits=subplan_hits,
            subplan_misses=subplan_misses,
            plan_findings=plan_findings,
            plan_validated=self.validate_plans,
            profile=profile,
            generation=generation,
            result_cache=rc_status,
            pushdown=pushdown_summary,
        )
        if rc_status == "miss":
            # put() refuses partial outcomes; everything else computed at
            # this generation is safe to serve until the next mutation.
            self.result_cache.put(
                walk, generation, self.optimize, outcome, pushdown=self.pushdown
            )
        return outcome

    @staticmethod
    def _rows_scanned(stats: Optional[OperatorStats], fallback: int) -> int:
        """Rows emitted by Scan operators (≈ rows entering the plan).

        Needs an analyzed run; otherwise the fetched-row total is the
        best available approximation.
        """
        if stats is None:
            return fallback
        return sum(
            node.rows_out
            for node in stats.iter_nodes()
            if node.label.startswith("Scan(")
        )

    def _log_query(
        self,
        *,
        root,
        walk: Walk,
        result: Optional[RewriteResult],
        started_wall: float,
        duration_ms: float,
        phase_ms: Mapping[str, float],
        cache_status: str,
        relations: Mapping[str, Relation],
        attempts: Mapping[str, int],
        failed: Sequence[str],
        rows_returned: int,
        subplan_hits: int,
        subplan_misses: int,
        status: str,
        error: Optional[Exception] = None,
        result_cache: str = "off",
    ) -> QueryLogRecord:
        """Append this query's record to the process query log.

        The correlation id is the trace_id of the query's trace — kept
        even for unsampled traces; a fresh id is minted only when the
        tracer is off entirely (so records always join on something).
        """
        trace_id = getattr(root, "trace_id", None)
        # The sampling decision: final on finished roots; a span nested
        # under an outer trace (e.g. the HTTP request span) reports its
        # inherited sampling verdict, since the real root is still open.
        decision = getattr(root, "decision", None)
        if decision is None:
            if trace_id is None:
                decision = "off"
            elif getattr(root, "sampled", False):
                decision = "sampled"
            elif getattr(root, "is_recording", False):
                # Recorded but unsampled: kept only if the root ends slow.
                decision = "deferred"
            else:
                decision = "dropped"
        try:
            walk_text = walk.describe(self.global_graph)
        except Exception:  # noqa: BLE001 — logging must not mask errors
            walk_text = repr(walk)
        record = QueryLogRecord(
            correlation_id=trace_id or uuid.uuid4().hex,
            started_at=started_wall,
            duration_ms=duration_ms,
            status=status,
            walk=walk_text,
            ucq_size=result.ucq_size if result is not None else 0,
            rows_fetched=sum(len(rel) for rel in relations.values()),
            rows_returned=rows_returned,
            rewrite_cache=cache_status,
            subplan_hits=subplan_hits,
            subplan_misses=subplan_misses,
            phase_ms=dict(phase_ms),
            fetch_attempts=dict(attempts),
            skipped_wrappers=tuple(failed),
            trace_decision=decision,
            error=f"{type(error).__name__}: {error}" if error else None,
            result_cache=result_cache,
        )
        return get_query_log().record(record)

    @staticmethod
    def _validate_plan(plan, executor: Executor) -> Tuple:
        """Statically schema-check ``plan`` against the fetched catalog.

        The cheap post-optimizer assertion: error findings abort the
        query with :class:`PlanValidationError` (carrying the findings)
        *before* the executor touches the plan; warnings are returned and
        surfaced on the outcome / in EXPLAIN ANALYZE.  Checks are counted
        in ``mdm_plan_validation_total{result}``.
        """
        from ..analysis.plan_checker import check_plan

        findings, _ = check_plan(plan, executor.catalog)
        errors = [f for f in findings if f.severity.rank >= 2]
        get_metrics().counter(
            "mdm_plan_validation_total",
            "Static plan schema checks run before execution.",
            labelnames=("result",),
        ).inc(1, result="rejected" if errors else "ok")
        if errors:
            raise PlanValidationError(
                "plan rejected by the static schema checker: "
                + "; ".join(f.render() for f in errors),
                findings=findings,
            )
        return tuple(findings)

    @staticmethod
    def _optimize_plan(
        plan,
        executor: Executor,
        row_counts: Mapping[str, int],
    ):
        """Run the logical optimizer; fall back to the naive plan on error.

        An optimizer bug must degrade to the unoptimized (correct) plan
        rather than failing the query — the failure is counted so it is
        visible in /metrics instead of silent.
        """
        try:
            optimizer = PlanOptimizer(executor.catalog, row_counts)
            return optimizer.optimize(plan)
        except Exception:  # noqa: BLE001 — optimization is best-effort
            get_metrics().counter(
                "mdm_optimizer_failures_total",
                "Logical optimizations that failed and fell back to the "
                "naive plan.",
            ).inc()
            return plan, None

    def _fetch_wrappers(
        self, names: Sequence[str]
    ) -> Tuple[Dict[str, Relation], Dict[str, int], Dict[str, Exception]]:
        """Full-fetch the (deduplicated) wrappers ``names`` (legacy shape).

        Kept for embedders; :meth:`execute` now goes through
        :meth:`_fetch_requests`, which this delegates to with one full
        :class:`~repro.sources.fetch.FetchRequest` per wrapper.
        """
        relations, attempts, errors, _ = self._fetch_requests(
            {name: FULL_FETCH for name in names}, self._generation
        )
        return relations, attempts, errors

    def _fetch_requests(
        self,
        requests: Mapping[str, FetchRequest],
        generation: int,
    ) -> Tuple[
        Dict[str, Relation],
        Dict[str, int],
        Dict[str, Exception],
        Dict[str, Dict[str, object]],
    ]:
        """Serve each wrapper's fetch request: cache first, then the source.

        The wrapper cache is probed serially (cheap, lock-bound) under a
        ``wrapper-cache`` span per wrapper; misses go to the sources
        through a bounded :class:`ThreadPoolExecutor` whenever more than
        one worker and wrapper are involved — tracing included: each
        task runs under a copy of the caller's :mod:`contextvars`
        context (one copy per task, since a single context cannot be
        entered concurrently), so ``fetch:<name>`` spans opened inside
        the workers parent to the caller's current span.

        Returns ``(relations, attempts, errors, meta)`` keyed by wrapper
        name; cache hits report 0 attempts and 0 rows transferred;
        ``errors`` holds the terminal exception per failed wrapper — any
        ``Exception`` counts, because ``fetch()`` is source-side code
        whose failures must be degradable to a partial result.
        """
        names = sorted(requests)
        for name in names:
            if self.wrappers.get(name) is None:
                raise MdmError(
                    f"wrapper {name!r} is mapped but has no runtime object"
                )
        policy = self.retry_policy
        tracer = get_tracer()
        cache = self.wrapper_cache
        relations: Dict[str, Relation] = {}
        attempts: Dict[str, int] = {}
        errors: Dict[str, Exception] = {}
        meta: Dict[str, Dict[str, object]] = {}
        to_fetch: List[str] = []
        for name in names:
            request = requests[name]
            entry: Dict[str, object] = {
                "kind": "full" if request.is_full else "pushed",
                "request": request.canonical(),
                "cache": "off",
                "rows_transferred": 0,
                "rows_source": None,
            }
            meta[name] = entry
            if cache.enabled:
                with tracer.span("wrapper-cache") as span:
                    span.set_tag("wrapper", name)
                    cached = cache.lookup(name, request, generation)
                    span.set_tag(
                        "cache", "hit" if cached is not None else "miss"
                    )
                if cached is not None:
                    entry["cache"] = "hit"
                    relations[name] = cached
                    attempts[name] = 0
                    continue
                entry["cache"] = "miss"
            to_fetch.append(name)

        def fetch_one(name: str):
            return self.wrappers[name].fetch_request(requests[name], policy)

        def record(name: str, fetched) -> None:
            relations[name] = fetched.relation
            meta[name]["rows_transferred"] = fetched.rows_transferred
            meta[name]["rows_source"] = fetched.rows_source
            cache.put(name, requests[name], generation, fetched.relation)

        workers = min(self.max_fetch_workers, len(to_fetch))
        if workers <= 1:
            for name in to_fetch:
                try:
                    fetched, attempts[name] = fetch_one(name)
                    record(name, fetched)
                except Exception as exc:  # noqa: BLE001 — mode decides
                    errors[name] = exc
                    attempts[name] = getattr(exc, "attempts", 1)
        else:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="mdm-fetch"
            ) as pool:
                futures = {
                    name: pool.submit(
                        contextvars.copy_context().run, fetch_one, name
                    )
                    for name in to_fetch
                }
                for name in to_fetch:
                    try:
                        fetched, attempts[name] = futures[name].result()
                        record(name, fetched)
                    except Exception as exc:  # noqa: BLE001 — mode decides
                        errors[name] = exc
                        attempts[name] = getattr(exc, "attempts", 1)
        metrics = get_metrics()
        request_counter = metrics.counter(
            "mdm_pushdown_requests_total",
            "Wrapper fetch requests by shape (pushed vs full).",
            labelnames=("kind",),
        )
        for name, entry in meta.items():
            if name in errors:
                continue
            request_counter.inc(1, kind=str(entry["kind"]))
            metrics.counter(
                "mdm_pushdown_rows_transferred_total",
                "Rows that crossed the wrapper boundary.",
            ).inc(int(entry["rows_transferred"]))
            source_rows = entry["rows_source"]
            if (
                source_rows is not None
                and int(source_rows) > int(entry["rows_transferred"])
            ):
                metrics.counter(
                    "mdm_pushdown_rows_saved_total",
                    "Rows filtered out source-side before transfer.",
                ).inc(int(source_rows) - int(entry["rows_transferred"]))
        return relations, attempts, errors, meta

    #: How many (walk, generation) stage-A extractions to keep memoized.
    _PUSHDOWN_PLAN_CACHE_SIZE = 256

    def _extract_pushdown_cached(self, walk, plan, needed, generation: int):
        """Stage A with a per-(walk, generation) memo.

        The extraction is deterministic given the rewritten plan and the
        wrapper capability sets, and both are frozen for the duration of
        a generation (any metadata mutation bumps it under the write
        lock) — so a repeated query pays the optimizer pass once.
        """
        from .rewrite_cache import walk_cache_key

        key = (walk_cache_key(walk), generation)
        with self._pushdown_plan_lock:
            hit = self._pushdown_plan_cache.get(key)
            if hit is not None:
                self._pushdown_plan_cache.move_to_end(key)
                return hit
        extracted = self._extract_pushdown(plan, needed)
        with self._pushdown_plan_lock:
            self._pushdown_plan_cache[key] = extracted
            self._pushdown_plan_cache.move_to_end(key)
            while len(self._pushdown_plan_cache) > self._PUSHDOWN_PLAN_CACHE_SIZE:
                self._pushdown_plan_cache.popitem(last=False)
        return extracted

    def _extract_pushdown(self, plan, needed: Iterable[str]):
        """Stage-A optimization: fold pushable work into the Scans.

        Built on the wrappers' declared signatures with every attribute
        typed ANY (``type_aware=False`` keeps the one type-sensitive
        rule out) and their declared capabilities.  Best-effort exactly
        like :meth:`_optimize_plan`: a bug here degrades to the naive
        full-fetch plan, never fails the query.
        """
        try:
            from ..relational.schema import Attribute, RelationSchema
            from ..relational.types import AttrType

            catalog = {}
            capabilities = {}
            for name in sorted(needed):
                wrapper = self.wrappers.get(name)
                if wrapper is None:
                    continue
                catalog[name] = RelationSchema(
                    Attribute(a, AttrType.ANY) for a in wrapper.attributes
                )
                capabilities[name] = wrapper.capabilities()
            optimizer = PlanOptimizer(
                catalog,
                pushdown_capabilities=capabilities,
                type_aware=False,
            )
            return optimizer.extract_pushdown(plan)
        except Exception:  # noqa: BLE001 — pushdown is best-effort
            get_metrics().counter(
                "mdm_optimizer_failures_total",
                "Logical optimizations that failed and fell back to the "
                "naive plan.",
            ).inc()
            return plan, None

    @staticmethod
    def _scan_requests(plan, needed: Iterable[str]):
        """Decide what to ask each wrapper for, from the plan's Scans.

        Per wrapper: exactly one distinct pushed Scan and no plain Scan
        → its :class:`~repro.sources.fetch.FetchRequest` is pushed to
        the source and the result registered under the Scan's binding
        name.  Anything else (plain scans, several divergent pushed
        scans) → one full fetch registered under the base name, with
        each pushed Scan derived from it mediator-side (never fetch the
        same source twice for one query).

        Returns ``(requests, register_as, derived)`` keyed by wrapper
        name.
        """
        from ..relational.algebra import Scan

        pushed: Dict[str, Dict[str, object]] = {}
        plain: set = set()

        def visit(node) -> None:
            if isinstance(node, Scan):
                if node.is_pushed():
                    pushed.setdefault(node.relation_name, {})[
                        node.binding_name()
                    ] = node
                else:
                    plain.add(node.relation_name)
                return
            for child in node.children():
                visit(child)

        visit(plan)
        requests: Dict[str, FetchRequest] = {}
        register_as: Dict[str, str] = {}
        derived: Dict[str, Tuple] = {}
        for name in sorted(needed):
            scans = pushed.get(name, {})
            if len(scans) == 1 and name not in plain:
                scan = next(iter(scans.values()))
                requests[name] = FetchRequest(
                    filters=scan.filters,
                    columns=scan.columns,
                    limit=scan.limit,
                )
                register_as[name] = scan.binding_name()
                derived[name] = ()
            else:
                requests[name] = FULL_FETCH
                register_as[name] = name
                derived[name] = tuple(scans[key] for key in sorted(scans))
        return requests, register_as, derived

    def _base_resolver(self, generation: int):
        """An on-demand base-relation fetcher for the executor.

        When pushdown registered only a Scan's binding, a later plan
        over the same executor (provenance re-executes the original CQ
        branches) may still scan the *base* name; the resolver fetches
        it lazily — through the wrapper cache when enabled.
        """

        def resolve(name: str) -> Relation:
            wrapper = self.wrappers.get(name)
            if wrapper is None:
                raise MdmError(
                    f"wrapper {name!r} is mapped but has no runtime object"
                )
            cached = self.wrapper_cache.lookup(name, FULL_FETCH, generation)
            if cached is not None:
                return cached
            relation, _ = wrapper.fetch_relation_retrying(self.retry_policy)
            self.wrapper_cache.put(name, FULL_FETCH, generation, relation)
            return relation

        return resolve

    @staticmethod
    def _drop_failed_branches(plan, failed: set):
        """Remove UCQ branches of a pushed plan that scan a failed wrapper.

        Mirrors the naive partial-failure rebuild, but operating on the
        already-pushed plan so surviving branches keep their pushed
        Scans.  Pushed Scans report their *base* wrapper name from
        ``scans()``, so membership checks work unchanged.
        """
        from ..relational.algebra import Distinct, Union, union_all

        inner = plan
        wrapped = isinstance(inner, Distinct)
        if wrapped:
            inner = inner.child

        def flatten(node) -> List:
            if isinstance(node, Union):
                return flatten(node.left) + flatten(node.right)
            return [node]

        surviving = [
            branch
            for branch in flatten(inner)
            if not (set(branch.scans()) & failed)
        ]
        if not surviving:
            raise MdmError(
                f"every CQ depends on a failed wrapper: {sorted(failed)}"
            )
        rebuilt = union_all(surviving)
        return Distinct(rebuilt) if wrapped else rebuilt

    def sparql_query(self, text: str, on_wrapper_error: str = "raise") -> QueryOutcome:
        """Pose an OMQ written as SPARQL text (the expert-analyst path).

        The query is interpreted as a walk (see
        :mod:`repro.core.sparql_frontend`), rewritten through the LAV
        algorithm and executed — identical semantics to the graphical
        interface.
        """
        from .sparql_frontend import walk_from_sparql

        with self.metadata_lock.read_locked():
            walk = walk_from_sparql(self.global_graph, text)
            return self.execute(walk, on_wrapper_error=on_wrapper_error)

    def sparql(self, text: str):
        """Evaluate SPARQL over the whole MDM dataset (union of graphs).

        Useful for metadata introspection — e.g. listing concepts, or
        querying LAV named graphs with ``GRAPH``.
        """
        with self.metadata_lock.read_locked():
            return evaluate_text(text, self.dataset, union_default=True)

    def analyze_impact(self, change):
        """Statically classify a proposed change's blast radius.

        ``change`` is a :class:`repro.analysis.impact.WrapperRelease`,
        :class:`~repro.analysis.impact.WrapperRetirement` or
        :class:`~repro.analysis.impact.MetadataMutation`.  The analysis
        runs under the metadata *read* lock against a shadow copy of the
        graphs — zero generation bumps, zero wrapper fetches — and
        returns an :class:`~repro.analysis.impact.ImpactReport` whose
        verdict is SAFE, DEGRADED or BROKEN.  Every analysis is traced
        (an ``impact`` span), counted
        (``mdm_impact_checks_total{verdict}``) and kept in
        :attr:`impact_log`.
        """
        from ..analysis.impact import analyze_impact as _analyze_impact

        with self.metadata_lock.read_locked():
            with get_tracer().span("impact") as span:
                report = _analyze_impact(self, change)
                span.set_tag("verdict", str(report.verdict))
                span.set_tag("queries", report.checked_queries)
        get_metrics().counter(
            "mdm_impact_checks_total",
            "Evolution-impact analyses by verdict.",
            labelnames=("verdict",),
        ).inc(1, verdict=str(report.verdict))
        self.impact_log.append(report)
        return report

    def recent_impact(self, limit: int = 20) -> List:
        """The most recent impact reports, newest first."""
        reports = list(self.impact_log)
        reports.reverse()
        return reports[: max(0, limit)]

    def impact_of_source(self, source_name: str) -> Dict[str, object]:
        """Impact analysis for an upcoming release of ``source_name``.

        "The maintenance of such data analysis processes is critical in
        scenarios integrating tenths of sources and exploiting them in
        hundreds of analytical processes" (paper §1).  This report tells
        the steward, before a release lands, which wrappers belong to the
        source, which logged queries depend on them, and which global
        features would lose coverage if the source's wrappers all broke.
        """
        with self.metadata_lock.read_locked():
            source = self.source_iri(source_name)
            wrapper_names = sorted(
                self.source_graph.wrapper_name(w) or w.local_name()
                for w in self.source_graph.wrappers_of(source)
            )
            wrapper_set = set(wrapper_names)
            affected_queries = [
                q
                for q in self.metadata.collection("queries").find()
                if wrapper_set & set(q.get("wrappers", []))
            ]
            # Features populated only by this source's wrappers.
            coverage: Dict[str, set] = {}
            for wrapper_iri in self.mappings.mapped_wrappers():
                view = self.mappings.view(wrapper_iri)
                for feature in view.features:
                    coverage.setdefault(feature.value, set()).add(
                        view.wrapper_name
                    )
            exclusive = sorted(
                feature
                for feature, providers in coverage.items()
                if providers and providers <= wrapper_set
            )
        return {
            "source": source_name,
            "wrappers": wrapper_names,
            "affected_queries": len(affected_queries),
            "affected_query_walks": [q["walk"] for q in affected_queries],
            "exclusively_covered_features": exclusive,
        }

    # ------------------------------------------------------------------ #
    # introspection & persistence
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, int]:
        """Counts of the main metadata entities."""
        with self.metadata_lock.read_locked():
            return {
                "concepts": len(self.global_graph.concepts()),
                "features": len(self.global_graph.features()),
                "sources": len(self.source_graph.data_sources()),
                "wrappers": len(self.source_graph.wrappers()),
                "mappings": len(self.mappings.mapped_wrappers()),
                "releases": len(self.governance.history()),
                "triples": len(self.dataset),
            }

    def validate(self) -> List[str]:
        """All structural issues across global graph, source graph, mappings."""
        with self.metadata_lock.read_locked():
            issues = self.global_graph.validate()
            issues.extend(self.source_graph.validate())
            for wrapper_iri in self.mappings.mapped_wrappers():
                name = self.source_graph.wrapper_name(wrapper_iri)
                if name is not None and name not in self.wrappers:
                    issues.append(
                        f"mapped wrapper {name!r} has no runtime object"
                    )
            return issues

    def to_trig(self) -> str:
        """Serialize the full metadata dataset as TriG (TDB snapshot)."""
        from ..rdf.trig import serialize_trig

        with self.metadata_lock.read_locked():
            return serialize_trig(self.dataset)
