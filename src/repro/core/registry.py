"""The saved-query registry: governed analytical processes.

"The maintenance of such data analysis processes is critical in scenarios
integrating tenths of sources and exploiting them in hundreds of
analytical processes, thus its automation is badly needed" (paper §1).

Analysts *save* their walks under a name; after every release the steward
runs :meth:`QueryRegistry.revalidate` to learn, per saved query, whether
it still rewrites (and optionally still executes).  Under MDM's LAV
design the expected report is all-green — which is precisely the claim
the governance demo makes — and any red entry pinpoints the concept whose
coverage a release broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .errors import MdmError
from .walks import Walk

__all__ = ["SavedQuery", "RevalidationEntry", "QueryRegistry"]


@dataclass(frozen=True)
class SavedQuery:
    """One named analytical process."""

    name: str
    walk: Walk
    description: str = ""


@dataclass(frozen=True)
class RevalidationEntry:
    """The health of one saved query after a revalidation pass."""

    name: str
    ok: bool
    ucq_size: int = 0
    rows: Optional[int] = None
    error: str = ""


class QueryRegistry:
    """Persists saved queries in the metadata store and revalidates them."""

    COLLECTION = "saved_queries"

    def __init__(self, mdm):
        self._mdm = mdm

    @property
    def _collection(self):
        # Resolved lazily: persistence reloads may swap mdm.metadata.
        return self._mdm.metadata.collection(self.COLLECTION)

    # ------------------------------------------------------------------ #
    # CRUD
    # ------------------------------------------------------------------ #

    def save(self, name: str, walk: Walk, description: str = "") -> SavedQuery:
        """Save (or replace) a named query; the walk is validated first."""
        if not name:
            raise ValueError("saved query name must be non-empty")
        walk.validate(self._mdm.global_graph)
        document = {
            "name": name,
            "description": description,
            "walk": walk.to_json_dict(),
        }
        if not self._collection.replace_one({"name": name}, document):
            self._collection.insert_one(document)
        return SavedQuery(name=name, walk=walk, description=description)

    def get(self, name: str) -> SavedQuery:
        """Fetch one saved query; raises :class:`KeyError` if absent."""
        document = self._collection.find_one({"name": name})
        if document is None:
            raise KeyError(f"no saved query named {name!r}")
        return SavedQuery(
            name=document["name"],
            walk=Walk.from_json_dict(document["walk"]),
            description=document.get("description", ""),
        )

    def delete(self, name: str) -> bool:
        """Remove a saved query; True if it existed."""
        return bool(self._collection.delete_one({"name": name}))

    def names(self) -> List[str]:
        """All saved query names, sorted."""
        return sorted(d["name"] for d in self._collection.find())

    def __len__(self) -> int:
        return self._collection.count()

    # ------------------------------------------------------------------ #
    # execution & governance
    # ------------------------------------------------------------------ #

    def run(self, name: str, on_wrapper_error: str = "raise"):
        """Execute a saved query through the normal OMQ pipeline."""
        saved = self.get(name)
        return self._mdm.execute(saved.walk, on_wrapper_error=on_wrapper_error)

    def revalidate(self, execute: bool = False) -> List[RevalidationEntry]:
        """Re-check every saved query against the current metadata.

        With ``execute=False`` (default) only the rewriting is attempted —
        cheap, and sufficient to detect coverage loss.  With
        ``execute=True`` the UCQ also runs against the live wrappers
        (failing fetches are skipped, so a half-migrated source does not
        mark the query red as long as one version still answers).
        """
        report: List[RevalidationEntry] = []
        for name in self.names():
            saved = self.get(name)
            try:
                result = self._mdm.rewriter.rewrite(saved.walk)
                rows: Optional[int] = None
                if execute:
                    outcome = self._mdm.execute(
                        saved.walk, on_wrapper_error="skip"
                    )
                    rows = len(outcome.relation)
                report.append(
                    RevalidationEntry(
                        name=name, ok=True, ucq_size=result.ucq_size, rows=rows
                    )
                )
            except MdmError as exc:
                report.append(
                    RevalidationEntry(name=name, ok=False, error=str(exc))
                )
        return report

    def health_summary(self, execute: bool = False) -> Dict[str, int]:
        """Counts of healthy vs broken saved queries."""
        report = self.revalidate(execute=execute)
        return {
            "total": len(report),
            "ok": sum(1 for e in report if e.ok),
            "broken": sum(1 for e in report if not e.ok),
        }
