"""Release governance: the evolution lifecycle MDM manages (paper §1, §3).

"The key concepts are releases, which represent a new source or changes
in existing sources."  A :class:`Release` records one wrapper
registration event; the :class:`GovernanceLog` persists them in the
metadata document store and answers history questions.

:func:`suggest_mapping` implements the *semi-automatic accommodation*:
when a source evolves, the attributes the new wrapper shares with its
predecessors keep their IRIs (source-graph reuse), so their ``sameAs``
links and named-graph coverage can be carried over; only genuinely new
attributes need the steward's attention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..docstore.store import DocumentStore
from ..rdf.terms import IRI, Triple
from .lav import LavMappingStore, MappingView
from .source_graph import SourceGraph, WrapperRegistration
from .vocabulary import G

__all__ = ["Release", "GovernanceLog", "MappingSuggestion", "suggest_mapping"]

#: Release kinds, per the paper's two triggers for a new wrapper.
KIND_NEW_SOURCE = "new-source"
KIND_EVOLUTION = "evolution"


@dataclass(frozen=True)
class Release:
    """One registration event in a source's history."""

    sequence: int
    source_name: str
    wrapper_name: str
    kind: str  # KIND_NEW_SOURCE or KIND_EVOLUTION
    attributes: Tuple[str, ...]
    reused_attributes: Tuple[str, ...]
    changes: Tuple[str, ...] = ()

    #: Change-description prefixes that indicate a breaking change
    #: (matching the SchemaChange operators' describe() output).
    _BREAKING_MARKERS = ("rename ", "remove ", "retype ", "nest ", "flatten ")

    @property
    def is_breaking(self) -> bool:
        """Whether the recorded changes include a breaking operation.

        Releases are append-only — a new wrapper never breaks MDM itself —
        so "breaking" describes the *source API* change the release
        accommodates, read from the change descriptions the steward (or
        the signature diff) recorded.  A release with no recorded changes
        (e.g. an additional wrapper over the same API version) is not
        breaking.
        """
        return self.kind == KIND_EVOLUTION and any(
            change.startswith(self._BREAKING_MARKERS) for change in self.changes
        )


class GovernanceLog:
    """Append-only release history backed by the metadata store."""

    COLLECTION = "releases"

    def __init__(self, store: DocumentStore):
        self._store = store

    def record(
        self,
        source_name: str,
        registration: WrapperRegistration,
        kind: str,
        changes: Sequence[str] = (),
        impact=None,
        gate: str = "off",
    ) -> Release:
        """Append a release for ``registration`` and return it.

        ``impact`` optionally carries the pre-release
        :class:`repro.analysis.impact.ImpactReport`; its verdict is
        stored on the release document.  With ``gate="blocking"`` a
        BROKEN verdict raises :class:`ImpactGateError` instead of
        recording — the defense-in-depth half of the gate
        ``MDM.register_wrapper`` applies before mutating anything.
        """
        if kind not in (KIND_NEW_SOURCE, KIND_EVOLUTION):
            raise ValueError(f"unknown release kind {kind!r}")
        if impact is not None and gate == "blocking" and not impact.ok:
            from .errors import ImpactGateError

            raise ImpactGateError(
                f"impact gate: release of wrapper "
                f"{registration.wrapper_name!r} under {source_name!r} is "
                f"classified {str(impact.verdict).upper()} — not recorded",
                report=impact,
            )
        collection = self._store.collection(self.COLLECTION)
        sequence = collection.count() + 1
        release = Release(
            sequence=sequence,
            source_name=source_name,
            wrapper_name=registration.wrapper_name,
            kind=kind,
            attributes=tuple(name for name, _ in registration.attributes),
            reused_attributes=registration.reused_attributes,
            changes=tuple(changes),
        )
        document = {
            "sequence": release.sequence,
            "source": release.source_name,
            "wrapper": release.wrapper_name,
            "kind": release.kind,
            "attributes": list(release.attributes),
            "reused_attributes": list(release.reused_attributes),
            "changes": list(release.changes),
        }
        if impact is not None:
            document["impact"] = {
                "verdict": str(impact.verdict),
                "gate": gate,
                "summary": dict(impact.summary),
            }
        collection.insert_one(document)
        return release

    def history(self, source_name: Optional[str] = None) -> List[Release]:
        """Releases in sequence order, optionally for one source."""
        query: Dict[str, object] = {}
        if source_name is not None:
            query["source"] = source_name
        documents = self._store.collection(self.COLLECTION).find(
            query, sort="sequence"
        )
        return [
            Release(
                sequence=d["sequence"],
                source_name=d["source"],
                wrapper_name=d["wrapper"],
                kind=d["kind"],
                attributes=tuple(d["attributes"]),
                reused_attributes=tuple(d["reused_attributes"]),
                changes=tuple(d.get("changes", [])),
            )
            for d in documents
        ]

    def latest(self, source_name: str) -> Optional[Release]:
        """The most recent release of ``source_name``."""
        releases = self.history(source_name)
        return releases[-1] if releases else None

    def breaking_releases(self) -> List[Release]:
        """All releases flagged as breaking."""
        return [r for r in self.history() if r.is_breaking]


@dataclass(frozen=True)
class MappingSuggestion:
    """Bootstrap material for a new wrapper's LAV mapping."""

    wrapper: IRI
    #: Named-graph triples carried over from the predecessor's mapping.
    subgraph: Tuple[Triple, ...]
    #: Attribute IRI → feature IRI links carried over (reused attributes).
    same_as: Dict[IRI, IRI]
    #: Signature attributes the steward still has to map manually.
    unmapped_attributes: Tuple[str, ...]

    @property
    def is_complete(self) -> bool:
        """Whether the suggestion can be applied without steward input."""
        return not self.unmapped_attributes


def suggest_mapping(
    source_graph: SourceGraph,
    mappings: LavMappingStore,
    registration: WrapperRegistration,
) -> MappingSuggestion:
    """Derive a mapping suggestion for a freshly registered wrapper.

    Looks at the previously mapped wrappers of the same source; for every
    attribute the new wrapper *reuses*, the existing ``sameAs`` link is
    carried over, and the corresponding portion of the predecessors'
    named graphs (the ``hasFeature`` edges of carried features, plus
    relation edges whose endpoints stay covered) is proposed as the new
    named graph.
    """
    carried_same_as: Dict[IRI, IRI] = {}
    carried_features: Set[IRI] = set()
    predecessor_views: List[MappingView] = []
    for wrapper in source_graph.wrappers_of(registration.source):
        if wrapper == registration.wrapper:
            continue
        try:
            predecessor_views.append(mappings.view(wrapper))
        except Exception:
            continue  # unmapped predecessor contributes nothing
    reusable = {
        name: iri
        for name, iri in registration.attributes
        if name in registration.reused_attributes
    }
    for attribute_name, attribute_iri in reusable.items():
        links = mappings.same_as_of_attribute(attribute_iri)
        if links:
            carried_same_as[attribute_iri] = links[0]
            carried_features.add(links[0])
    subgraph: List[Triple] = []
    covered_concepts: Set[IRI] = set()
    for view in predecessor_views:
        graph = mappings.named_graph(view.wrapper)
        for triple in graph.triples((None, G.hasFeature, None)):
            if triple.object in carried_features:
                if triple not in subgraph:
                    subgraph.append(triple)
                if isinstance(triple.subject, IRI):
                    covered_concepts.add(triple.subject)
    for view in predecessor_views:
        for edge in view.edges:
            if (
                edge.subject in covered_concepts
                and edge.object in covered_concepts
                and edge not in subgraph
            ):
                subgraph.append(edge)
    unmapped = tuple(
        name
        for name, iri in registration.attributes
        if iri not in carried_same_as
    )
    return MappingSuggestion(
        wrapper=registration.wrapper,
        subgraph=tuple(subgraph),
        same_as=carried_same_as,
        unmapped_attributes=unmapped,
    )
