"""Steward dashboard: one governance report over the whole ecosystem.

The demo's pitch to stewards is situational awareness — what is
integrated, what changed, what would break.  :func:`governance_report`
assembles that picture from the pieces the rest of :mod:`repro.core`
maintains: metadata counts, structural validation, the release history,
saved-query health, and a per-source impact sketch.  The CLI's
``report`` command and the service layer both render it.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["governance_report", "render_report"]


def governance_report(
    mdm, execute_queries: bool = False, include_metrics: bool = False
) -> Dict[str, object]:
    """A JSON-shaped governance snapshot of one MDM instance.

    ``issues`` holds *structural* metadata problems; missing runtime
    wrapper objects are reported separately as ``runtime_warnings`` —
    they are expected when inspecting a loaded snapshot offline.

    ``include_metrics=True`` folds a snapshot of the process metrics
    registry (wrapper fetch latency, rewrite-phase cost, executor
    operator histograms, request counters) into the report under
    ``metrics`` — combine with ``execute_queries=True`` so the saved
    queries actually exercise the instrumented paths first.
    """
    all_issues = mdm.validate()
    runtime_warnings = [i for i in all_issues if "no runtime object" in i]
    issues = [i for i in all_issues if i not in runtime_warnings]
    releases = mdm.governance.history()
    sources = []
    for source in mdm.source_graph.data_sources():
        name = mdm.source_name_of(source)
        if name is None:
            continue
        impact = mdm.impact_of_source(name)
        source_releases = [r for r in releases if r.source_name == name]
        sources.append(
            {
                "name": name,
                "wrappers": impact["wrappers"],
                "releases": len(source_releases),
                "breaking_releases": sum(
                    1 for r in source_releases if r.is_breaking
                ),
                "exclusive_features": len(
                    impact["exclusively_covered_features"]
                ),
                "queries_depending": impact["affected_queries"],
            }
        )
    query_health = mdm.saved_queries.health_summary(execute=execute_queries)
    report: Dict[str, object] = {
        "summary": mdm.summary(),
        "issues": issues,
        "sources": sources,
        "releases": len(releases),
        "latest_release": (
            {
                "sequence": releases[-1].sequence,
                "source": releases[-1].source_name,
                "wrapper": releases[-1].wrapper_name,
                "kind": releases[-1].kind,
            }
            if releases
            else None
        ),
        "saved_queries": query_health,
        "runtime_warnings": runtime_warnings,
    }
    if include_metrics:
        from ..obs import get_metrics

        report["metrics"] = get_metrics().snapshot()
        report["rewrite_cache"] = mdm.rewrite_cache.stats()
    return report


def render_report(report: Dict[str, object]) -> str:
    """Human rendering of :func:`governance_report` output."""
    lines: List[str] = ["=== MDM governance report ==="]
    summary = report["summary"]
    lines.append(
        "metadata : "
        f"{summary['concepts']} concepts, {summary['features']} features, "
        f"{summary['sources']} sources, {summary['wrappers']} wrappers, "
        f"{summary['mappings']} mappings"
    )
    issues = report["issues"]
    if issues:
        lines.append(f"validation: {len(issues)} ISSUE(S)")
        for issue in issues:
            lines.append(f"  ! {issue}")
    else:
        lines.append("validation: clean")
    lines.append(f"releases : {report['releases']} recorded")
    latest = report["latest_release"]
    if latest:
        lines.append(
            f"  latest: #{latest['sequence']} {latest['source']}/"
            f"{latest['wrapper']} ({latest['kind']})"
        )
    lines.append("sources  :")
    for source in report["sources"]:
        flags = []
        if source["breaking_releases"]:
            flags.append(f"{source['breaking_releases']} breaking")
        if source["queries_depending"]:
            flags.append(f"{source['queries_depending']} queries depend")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {source['name']}: {len(source['wrappers'])} wrappers, "
            f"{source['exclusive_features']} exclusive features{suffix}"
        )
    health = report["saved_queries"]
    lines.append(
        f"queries  : {health['ok']}/{health['total']} saved queries healthy"
        + (f" — {health['broken']} BROKEN" if health["broken"] else "")
    )
    warnings = report.get("runtime_warnings", [])
    if warnings:
        lines.append(f"runtime  : {len(warnings)} wrapper(s) not attached "
                     "(expected for offline snapshots)")
    cache = report.get("rewrite_cache")
    if cache is not None:
        lines.append(
            f"rewrites : cache {cache['size']}/{cache['capacity']} entries, "
            f"{cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.0%}), "
            f"{cache['evictions']} evictions"
        )
    metrics = report.get("metrics")
    if metrics is not None:
        lines.append("metrics  :")
        if not metrics:
            lines.append("  (no series recorded yet)")
        for name in sorted(metrics):
            entry = metrics[name]
            for series in entry["series"]:
                labels = series.get("labels") or {}
                label_text = (
                    "{" + ", ".join(
                        f"{k}={v}" for k, v in sorted(labels.items())
                    ) + "}"
                    if labels
                    else ""
                )
                if entry["type"] == "histogram":
                    # Empty series report mean/percentiles as None
                    # ("no data"), not 0.0.
                    if series["mean"] is None:
                        lines.append(
                            f"  {name}{label_text}: count=0 (no data)"
                        )
                        continue
                    mean_ms = series["mean"] * 1000.0
                    quantiles = ""
                    if series.get("p50") is not None:
                        quantiles = (
                            f" p50={series['p50'] * 1000.0:.3f}ms"
                            f" p95={series['p95'] * 1000.0:.3f}ms"
                            f" p99={series['p99'] * 1000.0:.3f}ms"
                        )
                    lines.append(
                        f"  {name}{label_text}: count={series['count']} "
                        f"mean={mean_ms:.3f}ms{quantiles}"
                    )
                else:
                    lines.append(
                        f"  {name}{label_text}: {series['value']:g}"
                    )
    return "\n".join(lines)
