"""An LRU cache of full query *outcomes*, coherent under evolution.

The rewrite cache (:mod:`repro.core.rewrite_cache`) already memoizes the
UCQ *plan*; a repeated OMQ still re-fetches every wrapper and re-runs the
executor.  For the interactive-analyst workload of paper §2.5 — many
users posing the same handful of walks between releases — the expensive
part is exactly that tail, so this cache stores the finished
:class:`~repro.core.mdm.QueryOutcome` keyed by::

    (canonical walk, metadata generation, optimize flag, pushdown flag)

Generation keying makes invalidation free: any of the nine metadata
mutators bumps the generation, so every cached outcome becomes
unreachable the moment the metadata it was computed under changes —
the same coherence argument as the rewrite cache, extended to rows.

Two deliberate exclusions:

- **Partial outcomes are never cached.**  A result degraded by wrapper
  failures (``QueryOutcome.partial``) is a transient condition, not a
  function of the metadata; serving it after the source recovered would
  be a freshness bug with no invalidation signal.
- **The cache is opt-in for embedders** (capacity 0 by default).
  Wrappers federate *live* sources whose rows can change without any
  metadata mutation; caching outcomes trades that freshness for
  throughput, which is the right default for the multi-client service
  (``repro-mdm serve`` enables it) but not for a library caller pointed
  at moving data.

Hit/miss/eviction counts flow into the process metrics registry
(``mdm_result_cache_*``); hits are visible per-query as a
``result-cache`` span tagged ``cache=hit`` and as a ``Result cache:``
line in ``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..chaos.failpoints import fire as _failpoint
from ..obs import get_metrics
from .rewrite_cache import walk_cache_key
from .walks import Walk

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of ``(walk, generation, optimize, pushdown) -> QueryOutcome``.

    Thread-safe; capacity 0 disables the cache entirely (every probe is
    a bypass, nothing is stored).
    """

    def __init__(self, capacity: int = 0):
        if capacity < 0:
            raise ValueError("result cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int, bool, bool], Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    # ------------------------------------------------------------------ #
    # lookup / fill
    # ------------------------------------------------------------------ #

    @staticmethod
    def key_for(
        walk: Walk, generation: int, optimize: bool, pushdown: bool = False
    ) -> Tuple[str, int, bool, bool]:
        """The canonical cache key for a walk at a generation.

        ``pushdown`` keys the outcome by whether federated pushdown was
        on — the rows are byte-identical either way, but the attached
        plans, profiles and pushdown summaries differ.
        """
        return (walk_cache_key(walk), generation, bool(optimize), bool(pushdown))

    def get(
        self,
        walk: Walk,
        generation: int,
        optimize: bool,
        require_analyzed: bool = False,
        pushdown: bool = False,
    ) -> Optional[Any]:
        """The cached outcome for ``walk`` at ``generation``, or None.

        ``require_analyzed=True`` treats an entry without operator
        statistics as a miss: an ``analyze=True`` caller (or a recorded
        trace) was promised per-operator stats, which a plain cached run
        cannot supply.  The re-executed, analyzed outcome then replaces
        the plain entry, so later analyzed probes hit.
        """
        if not self.enabled:
            return None
        _failpoint("cache.result")
        key = self.key_for(walk, generation, optimize, pushdown)
        metrics = get_metrics()
        with self._lock:
            outcome = self._entries.get(key)
            if outcome is not None and require_analyzed:
                if getattr(outcome, "operator_stats", None) is None:
                    outcome = None
            if outcome is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                metrics.counter(
                    "mdm_result_cache_hits_total",
                    "Query outcomes served from the result cache.",
                ).inc()
                return outcome
            self.misses += 1
            metrics.counter(
                "mdm_result_cache_misses_total",
                "Result-cache probes that fell through to execution.",
            ).inc()
            return None

    def put(
        self,
        walk: Walk,
        generation: int,
        optimize: bool,
        outcome: Any,
        pushdown: bool = False,
    ) -> None:
        """Cache ``outcome`` (LRU-evicting); partial outcomes are refused."""
        if not self.enabled:
            return
        if getattr(outcome, "partial", False):
            return  # degraded by wrapper failures — never cacheable
        key = self.key_for(walk, generation, optimize, pushdown)
        with self._lock:
            self._entries[key] = outcome
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                get_metrics().counter(
                    "mdm_result_cache_evictions_total",
                    "Result-cache LRU evictions.",
                ).inc()
            get_metrics().gauge(
                "mdm_result_cache_size",
                "Entries currently held by the result cache.",
            ).set(len(self._entries))

    def resize(self, capacity: int) -> None:
        """Change the capacity in place (trimming LRU-first; 0 clears)."""
        if capacity < 0:
            raise ValueError("result cache capacity must be >= 0")
        with self._lock:
            self.capacity = capacity
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            get_metrics().gauge(
                "mdm_result_cache_size",
                "Entries currently held by the result cache.",
            ).set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (stats are kept — they are cumulative)."""
        with self._lock:
            self._entries.clear()
            get_metrics().gauge(
                "mdm_result_cache_size",
                "Entries currently held by the result cache.",
            ).set(0)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-shaped cumulative statistics (reports, benchmarks)."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "enabled": self.enabled,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self)}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )
