"""An LRU cache for LAV rewrite plans, coherent under evolution.

Rewriting re-runs the three phases of paper §2.4 from scratch on every
query, yet the UCQ for a walk only changes when the metadata changes —
a wrapper release, a new mapping, an ontology edit.  The cache therefore
keys each entry by the *canonicalized walk* plus a **generation counter**
that :class:`~repro.core.mdm.MDM` bumps on every mutation of the global
graph, source graph or mapping store: a cached plan can only be served
while the metadata that produced it is still current, so evolution can
never serve a stale UCQ (the governance guarantee this repo exists to
demonstrate).

Entries for superseded generations are not eagerly purged — they age out
of the LRU naturally, which keeps mutation O(1) and the memory bound the
capacity.  Hit/miss/eviction counts flow into the process metrics
registry (``mdm_rewrite_cache_*``) so ``report --metrics`` and the
``GET /metrics`` endpoint expose the hit ratio.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..chaos.failpoints import fire as _failpoint
from ..obs import get_metrics
from .walks import Walk

__all__ = ["RewriteCache"]


def walk_cache_key(walk: Walk) -> str:
    """A canonical, order-independent text key for a walk.

    Built from :meth:`Walk.to_json_dict`, whose collections are sorted —
    two walks selecting the same concepts/features/edges/filters compare
    equal regardless of construction order.
    """
    return json.dumps(
        walk.to_json_dict(), sort_keys=True, separators=(",", ":")
    )


class RewriteCache:
    """Bounded LRU of ``(walk, generation) -> RewriteResult``.

    Thread-safe: concurrent queries through the service layer may probe
    and fill the cache from multiple threads.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("rewrite cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int], Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # lookup / fill
    # ------------------------------------------------------------------ #

    def get(self, walk: Walk, generation: int) -> Optional[Any]:
        """The cached rewrite for ``walk`` at ``generation``, or None."""
        _failpoint("cache.rewrite")
        key = (walk_cache_key(walk), generation)
        metrics = get_metrics()
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                metrics.counter(
                    "mdm_rewrite_cache_hits_total",
                    "Rewrite-plan cache hits.",
                ).inc()
                return result
            self.misses += 1
            metrics.counter(
                "mdm_rewrite_cache_misses_total",
                "Rewrite-plan cache misses.",
            ).inc()
            return None

    def put(self, walk: Walk, generation: int, result: Any) -> None:
        """Cache ``result`` for ``walk`` at ``generation`` (LRU-evicting)."""
        key = (walk_cache_key(walk), generation)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                get_metrics().counter(
                    "mdm_rewrite_cache_evictions_total",
                    "Rewrite-plan cache LRU evictions.",
                ).inc()
            get_metrics().gauge(
                "mdm_rewrite_cache_size",
                "Entries currently held by the rewrite-plan cache.",
            ).set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (stats are kept — they are cumulative)."""
        with self._lock:
            self._entries.clear()
            get_metrics().gauge(
                "mdm_rewrite_cache_size",
                "Entries currently held by the rewrite-plan cache.",
            ).set(0)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-shaped cumulative statistics (reports, benchmarks)."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __repr__(self) -> str:
        return (
            f"<RewriteCache {len(self)}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )
