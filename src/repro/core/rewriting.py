"""The LAV query-rewriting algorithm (paper §2.4).

"A specific query rewriting algorithm takes as input a walk and generates
as a result an equivalent union of conjunctive queries over the wrappers
resolving the LAV mappings.  Such process consists of three phases:
(a) query expansion, where the walk is automatically expanded to include
concept identifiers that have not been explicitly stated; (b)
intra-concept generation, that generates partial walks per concept
indicating how to query the wrappers in order to obtain the requested
features for the concept at hand; and (c) inter-concept generation, where
all partial walks are joined to obtain a union of conjunctive queries."

The output is a relational-algebra plan over the wrappers
(:mod:`repro.relational.algebra`), exactly what MDM displays next to the
SPARQL in Figure 8 and executes over the federated temp tables.

Join discipline (the metamodel's unambiguity condition): all joins —
between wrappers of one concept and across concepts — happen on feature
columns that inherit from ``sc:identifier``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs import get_metrics, get_tracer
from ..rdf.reasoner import subclass_closure
from ..rdf.terms import IRI, Triple
from ..relational.algebra import (
    Distinct,
    Extend,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    union_all,
)
from ..relational.expressions import And, Cmp, Col, Const, Expr
from .errors import (
    MissingIdentifierError,
    NoCoverError,
    RewritingError,
)
from .global_graph import GlobalGraph
from .lav import LavMappingStore, MappingView
from .walks import Walk, feature_column_names

__all__ = ["Rewriter", "RewriteResult", "ConjunctiveQuery"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """One CQ of the union: a wrapper choice per concept plus its plan."""

    covers: Tuple[Tuple[IRI, Tuple[str, ...]], ...]  # concept -> wrapper names
    plan: PlanNode
    #: The feature columns this CQ's plan produces (before projection).
    columns: FrozenSet[str] = frozenset()

    @property
    def wrapper_names(self) -> Tuple[str, ...]:
        """All wrapper names used, deduplicated, sorted."""
        out: Set[str] = set()
        for _, names in self.covers:
            out.update(names)
        return tuple(sorted(out))

    def describe(self) -> str:
        """Readable cover summary, e.g. ``Player←{w1} ⋈ SportsTeam←{w2}``."""
        parts = [
            f"{concept.local_name()}←{{{', '.join(names)}}}"
            for concept, names in self.covers
        ]
        return " ⋈ ".join(parts)


@dataclass(frozen=True)
class RewriteResult:
    """Everything the rewriting produced for one walk."""

    walk: Walk
    expanded_walk: Walk
    column_names: Mapping[IRI, str]
    projection: Tuple[str, ...]
    queries: Tuple[ConjunctiveQuery, ...]
    plan: PlanNode
    sparql: str

    @property
    def ucq_size(self) -> int:
        """Number of conjunctive queries in the union."""
        return len(self.queries)

    def pretty(self) -> str:
        """The relational-algebra rendering (Figure 8 bottom-right)."""
        return self.plan.pretty()

    def explain(self) -> str:
        """A three-phase narration of how the rewriting was derived."""
        lines = ["phase (a) query expansion:"]
        added = set(self.expanded_walk.features) - set(self.walk.features)
        if added:
            lines.append(
                "  added identifiers: "
                + ", ".join(sorted(f.local_name() for f in added))
            )
        else:
            lines.append("  all identifiers were already selected")
        lines.append("phase (b) intra-concept generation:")
        per_concept: Dict[IRI, Set[Tuple[str, ...]]] = {}
        for query in self.queries:
            for concept, names in query.covers:
                per_concept.setdefault(concept, set()).add(names)
        for concept in sorted(per_concept, key=lambda c: c.value):
            alternatives = sorted(per_concept[concept])
            rendered = " ∪ ".join("{" + ", ".join(a) + "}" for a in alternatives)
            lines.append(f"  {concept.local_name()}: {rendered}")
        lines.append("phase (c) inter-concept generation:")
        for query in self.queries:
            lines.append(f"  CQ: {query.describe()}")
        lines.append(f"result: union of {self.ucq_size} conjunctive queries")
        return "\n".join(lines)


class Rewriter:
    """Rewrites walks into UCQ plans over the mapped wrappers."""

    def __init__(
        self,
        global_graph: GlobalGraph,
        mappings: LavMappingStore,
        max_cover_size: int = 3,
        minimize: bool = True,
    ):
        self.global_graph = global_graph
        self.mappings = mappings
        #: Upper bound on wrappers combined per concept; the search space
        #: is exponential beyond it and real sources rarely shard one
        #: concept's features over more wrappers.
        self.max_cover_size = max_cover_size
        #: Apply CQ-containment minimization to the UCQ (design decision 5
        #: in DESIGN.md).  Disabling keeps every non-duplicate CQ — sound
        #: but larger unions; the ablation bench quantifies the gap.
        self.minimize = minimize

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def rewrite(self, walk: Walk) -> RewriteResult:
        """Run the three phases and return the UCQ plan.

        Each phase runs under a span (``phase:expansion`` /
        ``phase:intra-concept`` / ``phase:inter-concept``) tagged with
        candidate/pruned/emitted CQ counts, and its latency is observed
        into the ``mdm_rewrite_phase_seconds`` histogram regardless of
        whether tracing is enabled.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        phase_seconds = metrics.histogram(
            "mdm_rewrite_phase_seconds",
            "Latency of each LAV rewriting phase.",
            labelnames=("phase",),
        )
        total_started = time.perf_counter()
        with tracer.span("rewrite") as root:
            # Phase (a): expansion.
            started = time.perf_counter()
            with tracer.span("phase:expansion") as span:
                walk.validate(self.global_graph)
                expanded = walk.expand(self.global_graph)
                identifiers = self._identifiers(expanded)
                relevant = self._relevant_features(expanded, identifiers)
                columns = feature_column_names(self.global_graph, relevant)
                views = self.mappings.views()
                span.set_tag("concepts", len(expanded.sorted_concepts()))
                span.set_tag(
                    "added_identifiers",
                    len(set(expanded.features) - set(walk.features)),
                )
            phase_seconds.observe(
                time.perf_counter() - started, phase="expansion"
            )
            # Phase (b): intra-concept generation.
            started = time.perf_counter()
            with tracer.span("phase:intra-concept") as span:
                concept_covers: Dict[IRI, List[Tuple[MappingView, ...]]] = {}
                for concept in expanded.sorted_concepts():
                    concept_covers[concept] = self._covers_for_concept(
                        concept, expanded, identifiers, views
                    )
                span.set_tag(
                    "covers", sum(len(c) for c in concept_covers.values())
                )
                span.set_tag("applicable_views", len(views))
            phase_seconds.observe(
                time.perf_counter() - started, phase="intra-concept"
            )
            # Phase (c): inter-concept generation.
            started = time.perf_counter()
            with tracer.span("phase:inter-concept") as span:
                queries = self._combine(
                    expanded, identifiers, concept_covers, columns, relevant
                )
                if not queries:
                    raise RewritingError(
                        "no conjunctive query survives the inter-concept phase: the "
                        "walk's relations are not covered by any wrapper combination"
                    )
                candidate_cqs = len(queries)
                queries = (
                    _drop_redundant(queries) if self.minimize else _dedupe(queries)
                )
                projected_features = sorted(
                    set(walk.features) | set(expanded.optional_features),
                    key=lambda i: i.value,
                )
                projection = tuple(
                    columns[f] for f in projected_features
                ) or tuple(columns[f] for f in expanded.sorted_features())
                predicate = _filter_predicate(walk, columns)
                if predicate is not None:
                    queries = [
                        ConjunctiveQuery(
                            covers=q.covers,
                            plan=Select(q.plan, predicate),
                            columns=q.columns,
                        )
                        for q in queries
                    ]
                # NULL-pad optional columns the CQ's wrappers do not provide, so
                # every union branch is union-compatible.
                padded: List[ConjunctiveQuery] = []
                for query in queries:
                    plan_q: PlanNode = query.plan
                    for column in projection:
                        if column not in query.columns:
                            plan_q = Extend(plan_q, column)
                    padded.append(
                        ConjunctiveQuery(
                            covers=query.covers,
                            plan=plan_q,
                            columns=query.columns | set(projection),
                        )
                    )
                queries = padded
                branches = [Project(q.plan, projection) for q in queries]
                plan: PlanNode = Distinct(union_all(branches))
                span.set_tag("candidate_cqs", candidate_cqs)
                span.set_tag("emitted_cqs", len(queries))
                span.set_tag("pruned_cqs", candidate_cqs - len(queries))
            phase_seconds.observe(
                time.perf_counter() - started, phase="inter-concept"
            )
            root.set_tag("ucq_size", len(queries))
        metrics.counter(
            "mdm_rewrite_total", "Walks rewritten into UCQ plans."
        ).inc()
        metrics.histogram(
            "mdm_rewrite_seconds", "End-to-end LAV rewriting latency."
        ).observe(time.perf_counter() - total_started)
        return RewriteResult(
            walk=walk,
            expanded_walk=expanded,
            column_names=columns,
            projection=projection,
            queries=tuple(queries),
            plan=plan,
            sparql=walk.to_sparql(self.global_graph),
        )

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #

    def _specializations(self, concept: IRI) -> FrozenSet[IRI]:
        """The concept plus its declared subclasses (taxonomy support).

        A wrapper mapped to a subclass populates instances of the
        superclass too, so its views are applicable to superclass walks —
        provided it still populates the queried concept's identifier.
        """
        return frozenset(
            c
            for c in subclass_closure(self.global_graph.graph, concept)
            if isinstance(c, IRI) and self.global_graph.is_concept(c)
        )

    def _edge_witnessed_by(
        self,
        view: MappingView,
        edge: Triple,
        other_ids: Set[IRI],
    ) -> bool:
        """Whether ``view`` carries ``edge`` (up to concept taxonomy) and
        populates an identifier of the edge's other endpoint."""
        if not (set(view.feature_attributes) & other_ids):
            return False
        if view.covers_edge(edge):
            return True
        subject_specs = self._specializations(edge.subject)  # type: ignore[arg-type]
        object_specs = self._specializations(edge.object)  # type: ignore[arg-type]
        for candidate in view.edges:
            if (
                candidate.predicate == edge.predicate
                and candidate.subject in subject_specs
                and candidate.object in object_specs
            ):
                return True
        return False

    def _identifiers(self, walk: Walk) -> Dict[IRI, List[IRI]]:
        """Identifier features per walk concept (raises if a concept has none)."""
        out: Dict[IRI, List[IRI]] = {}
        for concept in walk.sorted_concepts():
            identifiers = self.global_graph.identifiers_of(concept)
            if not identifiers:
                raise MissingIdentifierError(concept)
            out[concept] = identifiers
        return out

    def _relevant_features(
        self, walk: Walk, identifiers: Dict[IRI, List[IRI]]
    ) -> Set[IRI]:
        """Walk features plus every identifier of every walk concept.

        Identifier features of walk concepts matter even when not
        requested: they are the join columns wrappers meet on.  Optional
        features are relevant too — wrappers providing them get to
        contribute the column.
        """
        relevant: Set[IRI] = set(walk.features) | set(walk.optional_features)
        for concept_ids in identifiers.values():
            relevant.update(concept_ids)
        return relevant

    # ------------------------------------------------------------------ #
    # phase (b): intra-concept generation
    # ------------------------------------------------------------------ #

    def _covers_for_concept(
        self,
        concept: IRI,
        walk: Walk,
        identifiers: Dict[IRI, List[IRI]],
        views: Sequence[MappingView],
    ) -> List[Tuple[MappingView, ...]]:
        """Minimal wrapper combinations providing the concept's features.

        A view is *applicable* when its named graph covers the concept and
        it populates one of the concept's identifiers (otherwise its rows
        cannot be joined unambiguously).  Views of the same concept join
        on the identifier, so every cover shares at least one identifier
        feature across all its views.

        Minimality is judged over both *features* and *edge witnessing*: a
        combination is dominated only by a strict wrapper-subset that
        still covers all required features AND witnesses at least the same
        incident walk edges (a wrapper kept solely because it carries a
        relation to a neighbouring concept — e.g. a memberships endpoint —
        must survive pruning).
        """
        required = set(walk.features_of(self.global_graph, concept))
        optional_here = {
            f
            for f in walk.optional_features
            if self.global_graph.concept_of(f) == concept
        }
        id_set = set(identifiers[concept])
        incident = [
            e for e in walk.sorted_edges() if concept in (e.subject, e.object)
        ]
        specializations = self._specializations(concept)
        applicable = [
            v
            for v in views
            if (v.concepts & specializations)
            and (set(v.feature_attributes) & id_set)
        ]
        applicable.sort(key=lambda v: v.wrapper_name)
        if not applicable:
            raise NoCoverError(concept, required or id_set)

        def witnessed_edges(combo: Tuple[MappingView, ...]) -> FrozenSet[Triple]:
            out: Set[Triple] = set()
            for edge in incident:
                other = edge.object if edge.subject == concept else edge.subject
                other_ids = set(identifiers[other])  # type: ignore[index]
                for view in combo:
                    if self._edge_witnessed_by(view, edge, other_ids):
                        out.add(edge)
                        break
            return frozenset(out)

        candidates: List[
            Tuple[
                Tuple[MappingView, ...],
                FrozenSet[str],
                FrozenSet[Triple],
                FrozenSet[IRI],
            ]
        ] = []
        max_size = min(self.max_cover_size, len(applicable))
        for size in range(1, max_size + 1):
            for combo in itertools.combinations(applicable, size):
                provided: Set[IRI] = set()
                for view in combo:
                    provided |= set(view.feature_attributes)
                if not required <= provided:
                    continue
                # Joinability within the cover: all views must share an
                # identifier of this concept.
                shared_ids = id_set.copy()
                for view in combo:
                    shared_ids &= set(view.feature_attributes)
                if not shared_ids:
                    continue
                names = frozenset(v.wrapper_name for v in combo)
                candidates.append(
                    (
                        combo,
                        names,
                        witnessed_edges(combo),
                        frozenset(provided & optional_here),
                    )
                )
        # Dominance over three dimensions: a strict wrapper-subset must
        # witness at least the same edges AND provide at least the same
        # optional features to eliminate a combination.
        covers = [
            combo
            for combo, names, edges, optionals in candidates
            if not any(
                other_names < names
                and other_edges >= edges
                and other_optionals >= optionals
                for _, other_names, other_edges, other_optionals in candidates
            )
        ]
        if not covers:
            provided_union: Set[IRI] = set()
            for view in applicable:
                provided_union |= set(view.feature_attributes)
            raise NoCoverError(concept, required - provided_union or required)
        return covers

    def _view_plan(
        self,
        view: MappingView,
        relevant: Set[IRI],
        columns: Mapping[IRI, str],
    ) -> Tuple[PlanNode, FrozenSet[str]]:
        """The per-wrapper plan: rename attributes to feature columns and
        project the relevant ones.  Returns (plan, produced column names).
        """
        rename: Dict[str, str] = {}
        produced: List[str] = []
        for feature, attribute in sorted(
            view.feature_attributes.items(), key=lambda kv: kv[0].value
        ):
            if feature not in relevant:
                continue
            column = columns[feature]
            produced.append(column)
            if attribute != column:
                rename[attribute] = column
        if not produced:
            raise RewritingError(
                f"wrapper {view.wrapper_name} provides no relevant feature"
            )
        plan: PlanNode = Scan(view.wrapper_name)
        if rename:
            plan = Rename.from_dict(plan, rename)
        produced_sorted = tuple(sorted(set(produced)))
        plan = Project(plan, produced_sorted)
        return plan, frozenset(produced_sorted)

    def _cover_plan(
        self,
        cover: Tuple[MappingView, ...],
        relevant: Set[IRI],
        columns: Mapping[IRI, str],
    ) -> Tuple[PlanNode, FrozenSet[str]]:
        """Join the cover's views (natural join on shared identifier cols)."""
        plans = [self._view_plan(v, relevant, columns) for v in cover]
        plan, cols = plans[0]
        for other_plan, other_cols in plans[1:]:
            plan = NaturalJoin(plan, other_plan)
            cols = cols | other_cols
        return plan, cols

    # ------------------------------------------------------------------ #
    # phase (c): inter-concept generation
    # ------------------------------------------------------------------ #

    def _combine(
        self,
        walk: Walk,
        identifiers: Dict[IRI, List[IRI]],
        concept_covers: Dict[IRI, List[Tuple[MappingView, ...]]],
        columns: Mapping[IRI, str],
        relevant: Set[IRI],
    ) -> List[ConjunctiveQuery]:
        """Enumerate concept-cover combinations and join them over edges."""
        concepts = walk.sorted_concepts()
        queries: List[ConjunctiveQuery] = []
        for combo in itertools.product(*(concept_covers[c] for c in concepts)):
            assignment = dict(zip(concepts, combo))
            if not self._edges_supported(walk, identifiers, assignment):
                continue
            assembled = self._assemble(walk, concepts, assignment, columns, relevant)
            if assembled is None:
                continue
            plan, produced = assembled
            covers = tuple(
                (concept, tuple(sorted(v.wrapper_name for v in assignment[concept])))
                for concept in concepts
            )
            queries.append(
                ConjunctiveQuery(covers=covers, plan=plan, columns=produced)
            )
        return queries

    def _edges_supported(
        self,
        walk: Walk,
        identifiers: Dict[IRI, List[IRI]],
        assignment: Mapping[IRI, Tuple[MappingView, ...]],
    ) -> bool:
        """Every walk edge must be witnessed by a wrapper of one endpoint
        that includes the edge in its named graph and populates an
        identifier of the *other* endpoint — that identifier column is the
        join key (the Figure 7 intersection at sc:SportsTeam's id)."""
        for edge in walk.sorted_edges():
            source = edge.subject
            target = edge.object
            source_ids = set(identifiers[source])  # type: ignore[index]
            target_ids = set(identifiers[target])  # type: ignore[index]
            witnessed = any(
                self._edge_witnessed_by(view, edge, target_ids)
                for view in assignment[source]  # type: ignore[index]
            ) or any(
                self._edge_witnessed_by(view, edge, source_ids)
                for view in assignment[target]  # type: ignore[index]
            )
            if not witnessed:
                return False
        return True

    def _assemble(
        self,
        walk: Walk,
        concepts: Sequence[IRI],
        assignment: Mapping[IRI, Tuple[MappingView, ...]],
        columns: Mapping[IRI, str],
        relevant: Set[IRI],
    ) -> Optional[Tuple[PlanNode, FrozenSet[str]]]:
        """Join the per-concept cover plans along the walk's edges.

        Concepts are attached BFS-style so each join shares at least one
        column (the identifier carried by the edge witness).  Returns the
        joined plan and the set of columns it produces.
        """
        cover_plans: Dict[IRI, Tuple[PlanNode, FrozenSet[str]]] = {
            c: self._cover_plan(assignment[c], relevant, columns) for c in concepts
        }
        adjacency: Dict[IRI, Set[IRI]] = {c: set() for c in concepts}
        for edge in walk.sorted_edges():
            adjacency[edge.subject].add(edge.object)  # type: ignore[index]
            adjacency[edge.object].add(edge.subject)  # type: ignore[index]
        start = concepts[0]
        plan, cols = cover_plans[start]
        attached = {start}
        # Fixpoint: attach any not-yet-joined concept that is adjacent to
        # the attached region *and* shares a join column with it.  One
        # pass may postpone a concept whose join key arrives later, so
        # iterate until no progress.
        progress = True
        while progress and attached != set(concepts):
            progress = False
            for concept in concepts:
                if concept in attached:
                    continue
                if not (adjacency[concept] & attached):
                    continue
                other_plan, other_cols = cover_plans[concept]
                if not (cols & other_cols):
                    continue
                plan = NaturalJoin(plan, other_plan)
                cols = cols | other_cols
                attached.add(concept)
                progress = True
        if attached != set(concepts):
            return None
        return plan, frozenset(cols)


def _dedupe(queries: List[ConjunctiveQuery]) -> List[ConjunctiveQuery]:
    """Drop only exact-duplicate cover assignments (no containment check)."""
    seen: Set[Tuple] = set()
    unique: List[ConjunctiveQuery] = []
    for query in queries:
        if query.covers not in seen:
            seen.add(query.covers)
            unique.append(query)
    return unique


def _filter_predicate(walk: Walk, columns: Mapping[IRI, str]) -> Optional[Expr]:
    """The conjunction of the walk's filter conditions as a row predicate."""
    if not walk.filters:
        return None
    predicate: Optional[Expr] = None
    for condition in walk.filters:
        clause = Cmp(condition.op, Col(columns[condition.feature]), Const(condition.value))
        predicate = clause if predicate is None else And(predicate, clause)
    return predicate


def _drop_redundant(queries: List[ConjunctiveQuery]) -> List[ConjunctiveQuery]:
    """Minimize the UCQ by conjunctive-query containment.

    A CQ whose per-concept cover is, concept by concept, a superset of
    another CQ's cover is *contained* in it: joining extra wrappers only
    adds conjuncts, so its answers are a subset of the smaller CQ's and it
    contributes nothing to the union.  Distinct wrapper choices that are
    not comparable — e.g. the v1 and v2 wrappers of an evolved source —
    are both kept, which is exactly how evolution governance unions the
    schema versions.
    """

    def cover_map(query: ConjunctiveQuery) -> Dict[IRI, FrozenSet[str]]:
        return {concept: frozenset(names) for concept, names in query.covers}

    maps = [cover_map(q) for q in queries]
    kept: List[ConjunctiveQuery] = []
    seen: Set[Tuple] = set()
    for i, query in enumerate(queries):
        if query.covers in seen:
            continue
        contained_in_other = any(
            j != i
            and all(maps[j][c] <= maps[i][c] for c in maps[i])
            and maps[j] != maps[i]
            # The smaller CQ must also produce every column this one
            # does — a CQ kept for an optional feature column is not
            # redundant even though its covers are a superset.
            and queries[j].columns >= queries[i].columns
            for j in range(len(queries))
        )
        if contained_in_other:
            continue
        seen.add(query.covers)
        kept.append(query)
    return kept
