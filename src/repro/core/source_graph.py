"""The source graph: data sources, wrappers and attributes (paper §2.2).

"New wrappers are introduced either because we want to consider data from
a new data source, or because the schema of an existing source has
evolved. Nevertheless, in both cases the procedure ... is the same."

Registration takes a wrapper signature ``w(a1, ..., an)`` and produces the
RDF representation: ``S:DataSource --S:hasWrapper--> S:Wrapper
--S:hasAttribute--> S:Attribute``.  Attribute IRIs are **reused across
wrappers of the same source** when names match — "MDM will try to reuse
as many attributes as possible from the previous wrappers for that data
source. However, this is not possible among different data sources as the
semantics of attributes might differ."  The reuse report is surfaced so
the steward sees what was shared (the semi-automatic accommodation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import IRI, Literal
from .errors import SourceGraphError
from .vocabulary import M, S, mdm_namespace_manager, mint_local

__all__ = ["SourceGraph", "WrapperRegistration"]


@dataclass(frozen=True)
class WrapperRegistration:
    """Outcome of registering one wrapper: the minted/reused IRIs."""

    source: IRI
    wrapper: IRI
    wrapper_name: str
    attributes: Tuple[Tuple[str, IRI], ...]
    reused_attributes: Tuple[str, ...]

    def attribute_iri(self, name: str) -> IRI:
        """The attribute IRI for signature attribute ``name``."""
        for attr_name, iri in self.attributes:
            if attr_name == name:
                return iri
        raise KeyError(name)

    @property
    def signature(self) -> str:
        """The paper's notation ``w(a1, ..., an)``."""
        return f"{self.wrapper_name}({', '.join(n for n, _ in self.attributes)})"


class SourceGraph:
    """A validated wrapper around the RDF source graph."""

    def __init__(self, graph: Optional[Graph] = None):
        self.graph = graph if graph is not None else Graph(
            namespaces=mdm_namespace_manager()
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_data_source(self, name: str, label: Optional[str] = None) -> IRI:
        """Declare a data source (idempotent); returns its IRI."""
        if not name:
            raise SourceGraphError("data source name must be non-empty")
        source = mint_local(M, "dataSource", name)
        self.graph.add((source, RDF.type, S.DataSource))
        self.graph.add((source, RDFS.label, Literal(label or name)))
        return source

    def register_wrapper(
        self,
        source: IRI,
        wrapper_name: str,
        attributes: Sequence[str],
    ) -> WrapperRegistration:
        """Register a wrapper release under ``source``.

        Extracts the RDF representation of the signature, reusing
        attribute IRIs from previous wrappers of the *same* source when
        the attribute name matches.
        """
        if (source, RDF.type, S.DataSource) not in self.graph:
            raise SourceGraphError(f"{source} is not a registered data source")
        if not attributes:
            raise SourceGraphError(
                f"wrapper {wrapper_name!r} needs at least one attribute"
            )
        if len(set(attributes)) != len(attributes):
            raise SourceGraphError(
                f"wrapper {wrapper_name!r} has duplicate attributes: {list(attributes)}"
            )
        wrapper = mint_local(M, "wrapper", wrapper_name)
        if (wrapper, RDF.type, S.Wrapper) in self.graph:
            raise SourceGraphError(f"wrapper {wrapper_name!r} already registered")
        existing = self._attributes_by_name(source)
        self.graph.add((wrapper, RDF.type, S.Wrapper))
        self.graph.add((wrapper, RDFS.label, Literal(wrapper_name)))
        self.graph.add((source, S.hasWrapper, wrapper))
        minted: List[Tuple[str, IRI]] = []
        reused: List[str] = []
        source_local = source.local_name()
        for attr_name in attributes:
            attr_iri = existing.get(attr_name)
            if attr_iri is not None:
                reused.append(attr_name)
            else:
                attr_iri = mint_local(M, "attribute", source_local, attr_name)
                self.graph.add((attr_iri, RDF.type, S.Attribute))
                self.graph.add((attr_iri, RDFS.label, Literal(attr_name)))
            self.graph.add((wrapper, S.hasAttribute, attr_iri))
            minted.append((attr_name, attr_iri))
        return WrapperRegistration(
            source=source,
            wrapper=wrapper,
            wrapper_name=wrapper_name,
            attributes=tuple(minted),
            reused_attributes=tuple(reused),
        )

    def _attributes_by_name(self, source: IRI) -> Dict[str, IRI]:
        """Attribute name → IRI over all wrappers of ``source``."""
        out: Dict[str, IRI] = {}
        for wrapper in self.wrappers_of(source):
            for attr in self.attributes_of(wrapper):
                label = self.attribute_name(attr)
                if label is not None:
                    out.setdefault(label, attr)
        return out

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def data_sources(self) -> List[IRI]:
        """All data sources, sorted by IRI."""
        return sorted(
            (s for s in self.graph.subjects(RDF.type, S.DataSource) if isinstance(s, IRI)),
            key=lambda i: i.value,
        )

    def wrappers(self) -> List[IRI]:
        """All wrappers, sorted by IRI."""
        return sorted(
            (s for s in self.graph.subjects(RDF.type, S.Wrapper) if isinstance(s, IRI)),
            key=lambda i: i.value,
        )

    def wrappers_of(self, source: IRI) -> List[IRI]:
        """The wrappers registered under ``source``, sorted."""
        return sorted(
            (o for o in self.graph.objects(source, S.hasWrapper) if isinstance(o, IRI)),
            key=lambda i: i.value,
        )

    def source_of(self, wrapper: IRI) -> Optional[IRI]:
        """The data source owning ``wrapper``."""
        for s in self.graph.subjects(S.hasWrapper, wrapper):
            if isinstance(s, IRI):
                return s
        return None

    def attributes_of(self, wrapper: IRI) -> List[IRI]:
        """The attributes of ``wrapper``, sorted."""
        return sorted(
            (o for o in self.graph.objects(wrapper, S.hasAttribute) if isinstance(o, IRI)),
            key=lambda i: i.value,
        )

    def attribute_name(self, attribute: IRI) -> Optional[str]:
        """The signature name of an attribute (its rdfs:label)."""
        label = self.graph.value(attribute, RDFS.label)
        return label.lexical if isinstance(label, Literal) else None

    def wrapper_name(self, wrapper: IRI) -> Optional[str]:
        """The registered name of a wrapper (its rdfs:label)."""
        label = self.graph.value(wrapper, RDFS.label)
        return label.lexical if isinstance(label, Literal) else None

    def wrapper_by_name(self, name: str) -> Optional[IRI]:
        """The wrapper IRI registered under ``name``."""
        candidate = mint_local(M, "wrapper", name)
        if (candidate, RDF.type, S.Wrapper) in self.graph:
            return candidate
        return None

    def signature_of(self, wrapper: IRI) -> str:
        """The ``w(a1, ..., an)`` rendering of a registered wrapper."""
        name = self.wrapper_name(wrapper) or wrapper.local_name()
        attrs = [self.attribute_name(a) or a.local_name() for a in self.attributes_of(wrapper)]
        return f"{name}({', '.join(sorted(attrs))})"

    def validate(self) -> List[str]:
        """Structural issues, empty when the graph is well-formed."""
        issues: List[str] = []
        for wrapper in self.wrappers():
            if self.source_of(wrapper) is None:
                issues.append(f"wrapper {wrapper} belongs to no data source")
            if not self.attributes_of(wrapper):
                issues.append(f"wrapper {wrapper} has no attributes")
        # Attribute IRIs must not be shared across different sources.
        owner: Dict[IRI, IRI] = {}
        for source in self.data_sources():
            for wrapper in self.wrappers_of(source):
                for attr in self.attributes_of(wrapper):
                    previous = owner.get(attr)
                    if previous is None:
                        owner[attr] = source
                    elif previous != source:
                        issues.append(
                            f"attribute {attr} is shared by sources "
                            f"{previous} and {source}"
                        )
        return issues

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        return (
            f"<SourceGraph {len(self.data_sources())} sources, "
            f"{len(self.wrappers())} wrappers, {len(self.graph)} triples>"
        )
