"""SPARQL front-end: accept OMQs written as SPARQL text.

"The current de-facto standard to query ontologies is the SPARQL query
language" (paper §1) — the graphical walk interface exists for non-expert
analysts, but expert analysts write SPARQL directly.  This module closes
the loop: a SPARQL SELECT of the shape MDM generates (and the obvious
hand-written variants) is parsed back into a :class:`Walk`, so the same
LAV rewriting serves both front-ends.

Recognized shape::

    SELECT ?playerName ?teamName WHERE {
        ?p rdf:type ex:Player .
        ?p ex:playerName ?playerName .
        ?p ex:hasTeam ?t .
        ?t rdf:type sc:SportsTeam .
        ?t ex:teamName ?teamName .
        FILTER(?playerName != "N/A")
    }

Rules:

- every subject variable must be typed (``rdf:type``) with a concept of
  the global graph;
- a pattern ``?c <feature> ?v`` selects a feature of ?c's concept;
- a pattern ``?c <property> ?d`` between two typed variables selects a
  relation edge (which must exist in the global graph);
- ``FILTER(?v op literal)`` becomes a :class:`FilterCondition` on the
  feature bound to ``?v``;
- ``OPTIONAL { ?c <feature> ?v }`` blocks select *optional* features
  (NULL where no wrapper provides them);
- ``DISTINCT`` is accepted (the rewriting applies set semantics anyway);
  other SPARQL constructs (UNION, GRAPH, BIND, …) are outside the OMQ
  fragment and rejected with a clear error.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..rdf.namespaces import RDF
from ..rdf.terms import IRI, Literal, Variable
from ..sparql.ast import (
    Comparison,
    FilterPattern,
    GroupPattern,
    OptionalPattern,
    Pattern,
    SelectQuery,
    TermExpr,
    TriplesBlock,
)
from ..sparql.parser import parse_query
from .errors import WalkError
from .global_graph import GlobalGraph
from .walks import FilterCondition, Walk

__all__ = ["walk_from_sparql"]


def _collect_patterns(pattern: Pattern) -> Tuple[List, List, List]:
    """Split the WHERE clause into (triples, filters, optional triples)."""
    triples: List = []
    filters: List = []
    optional_triples: List = []
    if isinstance(pattern, TriplesBlock):
        triples.extend(pattern.triples)
    elif isinstance(pattern, GroupPattern):
        for member in pattern.members:
            if isinstance(member, TriplesBlock):
                triples.extend(member.triples)
            elif isinstance(member, FilterPattern):
                filters.append(member.expression)
            elif isinstance(member, OptionalPattern):
                optional_triples.extend(_optional_block_triples(member))
            else:
                raise WalkError(
                    f"SPARQL construct {type(member).__name__} is outside "
                    "the OMQ fragment (triple patterns, FILTER comparisons "
                    "and feature-only OPTIONAL blocks are allowed)"
                )
    elif isinstance(pattern, FilterPattern):
        filters.append(pattern.expression)
    elif isinstance(pattern, OptionalPattern):
        raise WalkError("a query cannot consist of only an OPTIONAL block")
    else:
        raise WalkError(
            f"SPARQL construct {type(pattern).__name__} is outside the OMQ "
            "fragment"
        )
    return triples, filters, optional_triples


def _optional_block_triples(member: OptionalPattern) -> List:
    """The triple patterns inside an OPTIONAL block (no nesting allowed)."""
    inner = member.pattern
    if isinstance(inner, TriplesBlock):
        return list(inner.triples)
    if isinstance(inner, GroupPattern) and all(
        isinstance(m, TriplesBlock) for m in inner.members
    ):
        out: List = []
        for block in inner.members:
            out.extend(block.triples)  # type: ignore[attr-defined]
        return out
    raise WalkError(
        "OPTIONAL blocks in the OMQ fragment may contain only feature "
        "triple patterns"
    )


def walk_from_sparql(global_graph: GlobalGraph, text: str) -> Walk:
    """Parse SPARQL ``text`` into a validated :class:`Walk`.

    Raises :class:`WalkError` when the query falls outside the OMQ
    fragment or references terms missing from the global graph.
    """
    query = parse_query(text, global_graph.graph.namespaces)
    if not isinstance(query, SelectQuery):
        raise WalkError("only SELECT queries can be interpreted as walks")
    triples, filter_expressions, optional_triples = _collect_patterns(query.where)

    concept_of_var: Dict[Variable, IRI] = {}
    for triple in triples:
        if triple.predicate == RDF.type:
            if not isinstance(triple.subject, Variable) or not isinstance(
                triple.object, IRI
            ):
                raise WalkError(
                    f"type pattern must be '?var rdf:type <Concept>': "
                    f"{triple.n3()}"
                )
            if not global_graph.is_concept(triple.object):
                raise WalkError(
                    f"{triple.object} is not a concept of the global graph"
                )
            existing = concept_of_var.get(triple.subject)
            if existing is not None and existing != triple.object:
                raise WalkError(
                    f"variable ?{triple.subject.name} typed with two "
                    f"concepts: {existing} and {triple.object}"
                )
            concept_of_var[triple.subject] = triple.object

    features: Set[IRI] = set()
    feature_of_var: Dict[Variable, IRI] = {}
    edges: Set[Tuple[IRI, IRI, IRI]] = set()
    for triple in triples:
        if triple.predicate == RDF.type:
            continue
        if not isinstance(triple.subject, Variable):
            raise WalkError(f"subject must be a variable: {triple.n3()}")
        subject_concept = concept_of_var.get(triple.subject)
        if subject_concept is None:
            raise WalkError(
                f"variable ?{triple.subject.name} is not typed with a "
                "concept (add '?var rdf:type <Concept>')"
            )
        if not isinstance(triple.predicate, IRI):
            raise WalkError(
                f"variable predicates are outside the OMQ fragment: "
                f"{triple.n3()}"
            )
        if isinstance(triple.object, Variable) and triple.object in concept_of_var:
            # concept-to-concept relation
            object_concept = concept_of_var[triple.object]
            if triple.predicate not in global_graph.relations_between(
                subject_concept, object_concept
            ):
                raise WalkError(
                    f"{triple.predicate} does not relate {subject_concept} "
                    f"to {object_concept} in the global graph"
                )
            edges.add((subject_concept, triple.predicate, object_concept))
            continue
        # feature selection
        if not global_graph.is_feature(triple.predicate):
            raise WalkError(
                f"{triple.predicate} is neither a feature nor a relation of "
                "the global graph"
            )
        owner = global_graph.concept_of(triple.predicate)
        if owner != subject_concept:
            raise WalkError(
                f"feature {triple.predicate} belongs to {owner}, but "
                f"?{triple.subject.name} is a {subject_concept}"
            )
        features.add(triple.predicate)
        if isinstance(triple.object, Variable):
            feature_of_var[triple.object] = triple.predicate
        elif not isinstance(triple.object, Literal):
            raise WalkError(
                f"feature object must be a variable or literal: {triple.n3()}"
            )

    optional_features: Set[IRI] = set()
    for triple in optional_triples:
        if not (
            isinstance(triple.subject, Variable)
            and isinstance(triple.predicate, IRI)
            and isinstance(triple.object, Variable)
        ):
            raise WalkError(
                f"OPTIONAL pattern must be '?concept <feature> ?var': "
                f"{triple.n3()}"
            )
        subject_concept = concept_of_var.get(triple.subject)
        if subject_concept is None:
            raise WalkError(
                f"OPTIONAL subject ?{triple.subject.name} is not typed with "
                "a concept"
            )
        if not global_graph.is_feature(triple.predicate):
            raise WalkError(
                f"{triple.predicate} in OPTIONAL is not a feature"
            )
        owner = global_graph.concept_of(triple.predicate)
        if owner != subject_concept:
            raise WalkError(
                f"optional feature {triple.predicate} belongs to {owner}, "
                f"but ?{triple.subject.name} is a {subject_concept}"
            )
        optional_features.add(triple.predicate)
        feature_of_var[triple.object] = triple.predicate

    conditions: List[FilterCondition] = []
    for expression in filter_expressions:
        conditions.append(
            _interpret_filter(expression, feature_of_var)
        )

    # Projection restricts the walk's features when explicit; filter-only
    # features stay as filters (the rewriting fetches them anyway).
    if not query.is_star:
        projected: Set[IRI] = set()
        for variable in query.variables:
            feature = feature_of_var.get(variable)
            if feature is None:
                raise WalkError(
                    f"projected variable ?{variable.name} is not bound to a "
                    "feature"
                )
            if feature not in optional_features:
                projected.add(feature)
        walk_features = projected
    else:
        walk_features = features

    walk = Walk.build(
        concepts=set(concept_of_var.values()),
        features=walk_features,
        edges=edges,
        filters=conditions,
        optional_features=optional_features,
    )
    walk.validate(global_graph)
    return walk


def _interpret_filter(
    expression, feature_of_var: Dict[Variable, IRI]
) -> FilterCondition:
    if not isinstance(expression, Comparison):
        raise WalkError(
            "only simple comparisons (?var op literal) are supported in "
            "OMQ filters"
        )
    left, right, op = expression.left, expression.right, expression.op
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(right, TermExpr) and isinstance(right.term, Variable):
        left, right = right, left
        op = flipped[op]
    if not (
        isinstance(left, TermExpr)
        and isinstance(left.term, Variable)
        and isinstance(right, TermExpr)
        and isinstance(right.term, Literal)
    ):
        raise WalkError(
            "OMQ filters must compare a feature variable with a literal"
        )
    feature = feature_of_var.get(left.term)
    if feature is None:
        raise WalkError(
            f"filter variable ?{left.term.name} is not bound to a feature"
        )
    return FilterCondition(feature, op, right.term.to_python())
