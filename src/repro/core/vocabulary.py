"""The BDI-ontology metamodel vocabulary (paper §2, Figure 4).

Two RDF vocabularies structure MDM's metadata:

- the **global graph** vocabulary, prefix ``G`` — concepts, features and
  the ``hasFeature`` edge that groups features under a concept;
- the **source graph** vocabulary, prefix ``S`` — data sources, wrappers
  and attributes.

Plus the externally reused terms: ``sc:identifier`` (the feature class
whose subclasses gate joins, §2.3), ``owl:sameAs`` (attribute→feature
links), ``rdfs:subClassOf`` (taxonomies).
"""

from __future__ import annotations

import re

from ..rdf.namespaces import Namespace, NamespaceManager, SC, default_namespace_manager
from ..rdf.terms import IRI

__all__ = ["G", "S", "M", "IDENTIFIER", "mdm_namespace_manager", "mint_local"]

#: Global-graph metamodel: ``G:Concept``, ``G:Feature``, ``G:hasFeature``.
G = Namespace("http://www.essi.upc.edu/mdm/globalGraph#")

#: Source-graph metamodel: ``S:DataSource``, ``S:Wrapper``, ``S:Attribute``,
#: ``S:hasWrapper``, ``S:hasAttribute``.
S = Namespace("http://www.essi.upc.edu/mdm/sourceGraph#")

#: MDM system namespace (graph names, releases, minted resources).
M = Namespace("http://www.essi.upc.edu/mdm/system#")

#: The feature superclass that marks identifiers: joins between concepts
#: are "only restricted to elements that inherit from sc:identifier".
IDENTIFIER = SC.identifier


def mdm_namespace_manager() -> NamespaceManager:
    """The default prefixes plus ``G``, ``S`` and ``mdm``."""
    manager = default_namespace_manager()
    manager.bind("G", G)
    manager.bind("S", S)
    manager.bind("mdm", M)
    return manager


_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_]")


def mint_local(base: Namespace, *parts: str) -> IRI:
    """Deterministically mint an IRI under ``base`` from name parts.

    Each part is sanitized to ``[A-Za-z0-9_]``; parts join with ``/``.
    Used for source/wrapper/attribute IRIs so re-running a registration
    yields the same identifiers (idempotence matters for releases).
    """
    cleaned = [_SANITIZE_RE.sub("_", p) for p in parts if p]
    if not cleaned:
        raise ValueError("mint_local needs at least one non-empty part")
    return base["/".join(cleaned)]
