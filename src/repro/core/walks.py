"""Walks: graphically posed ontology-mediated queries (paper §2.4).

"The analyst can graphically select a set of nodes of the global graph
representing such pattern, we refer to it as a walk."  A
:class:`Walk` is that selection: concepts, features and concept-relation
edges of the global graph.  MDM translates walks to SPARQL automatically
(the right-hand side of Figure 8); the LAV rewriting in
:mod:`repro.core.rewriting` consumes walks directly.

``Walk.from_nodes`` reproduces the contour gesture: given the node set the
analyst circled, it pulls in each feature's concept, every ``hasFeature``
edge, and every relation between two selected concepts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, Union

from ..rdf.terms import IRI, Triple
from .errors import DisconnectedWalkError, WalkError
from .global_graph import GlobalGraph

__all__ = ["Walk", "feature_column_names", "concept_variable_names"]

_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(text: str) -> str:
    cleaned = _SANITIZE_RE.sub("_", text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "n" + cleaned
    return cleaned


def _lower_first(text: str) -> str:
    return text[:1].lower() + text[1:] if text else text


def feature_column_names(
    global_graph: GlobalGraph, features: Iterable[IRI]
) -> Dict[IRI, str]:
    """Deterministic, collision-free column/variable names for features.

    A feature's local name is used when unique among the given features;
    otherwise it is prefixed with its concept's local name.  The same
    naming is shared by the SPARQL translation and the relational
    rewriting, so the algebra's columns line up with the SPARQL variables.
    """
    features = sorted(set(features), key=lambda i: i.value)
    by_local: Dict[str, List[IRI]] = {}
    for feature in features:
        by_local.setdefault(_sanitize(feature.local_name()), []).append(feature)
    names: Dict[IRI, str] = {}
    for local, group in by_local.items():
        if len(group) == 1:
            names[group[0]] = local
            continue
        for feature in group:
            concept = global_graph.concept_of(feature)
            prefix = _sanitize(concept.local_name()) if concept is not None else "x"
            names[feature] = f"{_lower_first(prefix)}_{local}"
    return names


def concept_variable_names(concepts: Iterable[IRI]) -> Dict[IRI, str]:
    """Deterministic SPARQL variable names for concept instances."""
    names: Dict[IRI, str] = {}
    used: Set[str] = set()
    for concept in sorted(set(concepts), key=lambda i: i.value):
        base = _lower_first(_sanitize(concept.local_name()))
        candidate = base
        counter = 2
        while candidate in used:
            candidate = f"{base}{counter}"
            counter += 1
        used.add(candidate)
        names[concept] = candidate
    return names


_FILTER_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class FilterCondition:
    """A selection condition on one feature, e.g. ``height > 180``.

    Filters extend walks with the exploratory predicates the demo invites
    participants to pose; they translate to SPARQL ``FILTER`` clauses and
    are pushed into the rewritten UCQ as relational selections.
    """

    feature: IRI
    op: str
    value: Union[int, float, str, bool]

    def __post_init__(self):
        if self.op not in _FILTER_OPS:
            raise WalkError(
                f"unsupported filter operator {self.op!r}; "
                f"use one of {_FILTER_OPS}"
            )
        if not isinstance(self.value, (int, float, str, bool)):
            raise WalkError(
                f"filter value must be a scalar, got {type(self.value).__name__}"
            )

    def sparql_literal(self) -> str:
        """The SPARQL rendering of the comparison value."""
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, (int, float)):
            return repr(self.value)
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'

    def describe(self) -> str:
        """Human rendering, e.g. ``ex:height > 180``."""
        return f"{self.feature.local_name()} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Walk:
    """An analyst's subgraph selection over the global graph."""

    concepts: FrozenSet[IRI]
    features: FrozenSet[IRI]
    edges: FrozenSet[Triple]
    filters: Tuple[FilterCondition, ...] = ()
    #: Features projected when available but not required for coverage
    #: (SPARQL OPTIONAL semantics; NULL where no wrapper provides them).
    optional_features: FrozenSet[IRI] = frozenset()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        concepts: Iterable[IRI] = (),
        features: Iterable[IRI] = (),
        edges: Iterable[Tuple[IRI, IRI, IRI]] = (),
        filters: Iterable[FilterCondition] = (),
        optional_features: Iterable[IRI] = (),
    ) -> "Walk":
        """Explicit constructor from plain collections."""
        return cls(
            concepts=frozenset(concepts),
            features=frozenset(features),
            edges=frozenset(Triple(s, p, o) for s, p, o in edges),
            filters=tuple(
                sorted(filters, key=lambda f: (f.feature.value, f.op, str(f.value)))
            ),
            optional_features=frozenset(optional_features),
        )

    def with_optional(self, *features: IRI) -> "Walk":
        """A copy of this walk with extra optional features."""
        return Walk.build(
            concepts=self.concepts,
            features=self.features,
            edges=[(e.subject, e.predicate, e.object) for e in self.edges],
            filters=self.filters,
            optional_features=set(self.optional_features) | set(features),
        )

    def with_filters(self, *conditions: FilterCondition) -> "Walk":
        """A copy of this walk with extra filter conditions."""
        return Walk.build(
            concepts=self.concepts,
            features=self.features,
            edges=[(e.subject, e.predicate, e.object) for e in self.edges],
            filters=list(self.filters) + list(conditions),
            optional_features=self.optional_features,
        )

    # ------------------------------------------------------------------ #
    # (de)serialization — saved analyst queries
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-serializable representation (for the query registry)."""
        return {
            "concepts": sorted(c.value for c in self.concepts),
            "features": sorted(f.value for f in self.features),
            "edges": sorted(
                [e.subject.value, e.predicate.value, e.object.value]  # type: ignore[union-attr]
                for e in self.edges
            ),
            "filters": [
                {
                    "feature": c.feature.value,
                    "op": c.op,
                    "value": c.value,
                }
                for c in self.filters
            ],
            "optional_features": sorted(
                f.value for f in self.optional_features
            ),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "Walk":
        """Rebuild a walk from :meth:`to_json_dict` output."""
        return cls.build(
            concepts=[IRI(c) for c in payload.get("concepts", [])],  # type: ignore[union-attr]
            features=[IRI(f) for f in payload.get("features", [])],  # type: ignore[union-attr]
            edges=[
                (IRI(s), IRI(p), IRI(o))
                for s, p, o in payload.get("edges", [])  # type: ignore[union-attr]
            ],
            filters=[
                FilterCondition(IRI(f["feature"]), f["op"], f["value"])  # type: ignore[index]
                for f in payload.get("filters", [])  # type: ignore[union-attr]
            ],
            optional_features=[
                IRI(f) for f in payload.get("optional_features", [])  # type: ignore[union-attr]
            ],
        )

    @classmethod
    def from_nodes(cls, global_graph: GlobalGraph, nodes: Iterable[IRI]) -> "Walk":
        """The contour gesture: complete a node selection into a walk.

        Features pull in their owning concept; all relations between two
        selected concepts are included.
        """
        node_set = set(nodes)
        concepts: Set[IRI] = set()
        features: Set[IRI] = set()
        for node in node_set:
            if global_graph.is_concept(node):
                concepts.add(node)
            elif global_graph.is_feature(node):
                features.add(node)
                owner = global_graph.concept_of(node)
                if owner is None:
                    raise WalkError(f"feature {node} belongs to no concept")
                concepts.add(owner)
            else:
                raise WalkError(
                    f"{node} is neither a concept nor a feature of the "
                    "global graph"
                )
        edges: Set[Triple] = set()
        for relation in global_graph.relations():
            if (
                relation.subject in concepts
                and relation.object in concepts
                # Self-loops are outside the walk fragment (see validate).
                and relation.subject != relation.object
            ):
                edges.add(relation)
        return cls(
            concepts=frozenset(concepts),
            features=frozenset(features),
            edges=frozenset(edges),
        )

    # ------------------------------------------------------------------ #
    # validation & expansion
    # ------------------------------------------------------------------ #

    def validate(self, global_graph: GlobalGraph) -> None:
        """Raise :class:`WalkError` on any structural problem."""
        if not self.concepts:
            raise WalkError("a walk must include at least one concept")
        for concept in self.concepts:
            if not global_graph.is_concept(concept):
                raise WalkError(f"{concept} is not a concept of the global graph")
        for feature in self.features:
            if not global_graph.is_feature(feature):
                raise WalkError(f"{feature} is not a feature of the global graph")
            owner = global_graph.concept_of(feature)
            if owner not in self.concepts:
                raise WalkError(
                    f"feature {feature} belongs to {owner}, which is not in "
                    "the walk"
                )
        for edge in self.edges:
            if edge not in global_graph.graph:
                raise WalkError(f"edge {edge.n3()} is not in the global graph")
            if edge.subject not in self.concepts or edge.object not in self.concepts:
                raise WalkError(
                    f"edge {edge.n3()} touches concepts outside the walk"
                )
            if edge.subject == edge.object:
                raise WalkError(
                    f"self-referencing relation {edge.n3()} is outside the "
                    "walk fragment: the rewriting joins concepts on their "
                    "identifiers and cannot distinguish the two roles of a "
                    "self-join"
                )
        for condition in self.filters:
            if not global_graph.is_feature(condition.feature):
                raise WalkError(
                    f"filter on {condition.feature}, which is not a feature"
                )
            owner = global_graph.concept_of(condition.feature)
            if owner not in self.concepts:
                raise WalkError(
                    f"filter on {condition.feature} whose concept {owner} is "
                    "not in the walk"
                )
        for feature in self.optional_features:
            if not global_graph.is_feature(feature):
                raise WalkError(
                    f"optional feature {feature} is not a feature of the "
                    "global graph"
                )
            owner = global_graph.concept_of(feature)
            if owner not in self.concepts:
                raise WalkError(
                    f"optional feature {feature} belongs to {owner}, which "
                    "is not in the walk"
                )
            if feature in self.features:
                raise WalkError(
                    f"{feature} is selected both as required and optional"
                )
        self._check_connected()

    def _check_connected(self) -> None:
        if len(self.concepts) <= 1:
            return
        adjacency: Dict[IRI, Set[IRI]] = {c: set() for c in self.concepts}
        for edge in self.edges:
            adjacency[edge.subject].add(edge.object)  # type: ignore[index]
            adjacency[edge.object].add(edge.subject)  # type: ignore[index]
        start = next(iter(self.concepts))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        if seen != set(self.concepts):
            missing = sorted(str(c) for c in set(self.concepts) - seen)
            raise DisconnectedWalkError(
                f"walk concepts not reachable from {start}: {missing}; "
                "select relations connecting them"
            )

    def expand(self, global_graph: GlobalGraph) -> "Walk":
        """Phase (a) of the rewriting: add implicit concept identifiers.

        "the walk is automatically expanded to include concept identifiers
        that have not been explicitly stated."  Features referenced only
        by filter conditions are pulled in too (they must be fetched to
        evaluate the predicate, even though they are not projected).
        """
        extra: Set[IRI] = set()
        for concept in self.concepts:
            identifiers = global_graph.identifiers_of(concept)
            if not (set(identifiers) & set(self.features)):
                extra.update(identifiers[:1])  # the canonical identifier
        for condition in self.filters:
            if condition.feature not in self.features:
                extra.add(condition.feature)
        return Walk(
            concepts=self.concepts,
            features=self.features | frozenset(extra),
            edges=self.edges,
            filters=self.filters,
            optional_features=self.optional_features - frozenset(extra),
        )

    # ------------------------------------------------------------------ #
    # derived info
    # ------------------------------------------------------------------ #

    def features_of(self, global_graph: GlobalGraph, concept: IRI) -> List[IRI]:
        """The walk's features belonging to ``concept``, sorted."""
        return sorted(
            (
                f
                for f in self.features
                if global_graph.concept_of(f) == concept
            ),
            key=lambda i: i.value,
        )

    def sorted_concepts(self) -> List[IRI]:
        """Concepts in deterministic order."""
        return sorted(self.concepts, key=lambda i: i.value)

    def sorted_features(self) -> List[IRI]:
        """Features in deterministic order."""
        return sorted(self.features, key=lambda i: i.value)

    def sorted_edges(self) -> List[Triple]:
        """Edges in deterministic order."""
        return sorted(
            self.edges, key=lambda t: (t.subject.value, t.predicate.value, t.object.value)  # type: ignore[union-attr]
        )

    # ------------------------------------------------------------------ #
    # SPARQL translation (Figure 8, right-hand side)
    # ------------------------------------------------------------------ #

    def to_sparql(self, global_graph: GlobalGraph) -> str:
        """The equivalent SPARQL SELECT over the domain vocabulary.

        One instance variable per concept, one value variable per feature;
        features become predicates from instance to value, relations
        become predicates between instances.
        """
        self.validate(global_graph)
        concept_vars = concept_variable_names(self.concepts)
        pattern_features = set(self.features) | {
            condition.feature for condition in self.filters
        }
        column_names = feature_column_names(
            global_graph, pattern_features | set(self.optional_features)
        )
        ns = global_graph.graph.namespaces

        def qname(iri: IRI) -> str:
            compact = ns.compact(iri)
            return compact if compact is not None else iri.n3()

        projected = sorted(
            set(self.features) | set(self.optional_features),
            key=lambda i: i.value,
        )
        projection = " ".join(f"?{column_names[f]}" for f in projected) or "*"
        patterns: List[str] = []
        for concept in self.sorted_concepts():
            var = concept_vars[concept]
            patterns.append(f"?{var} rdf:type {qname(concept)} .")
            for feature in sorted(pattern_features, key=lambda i: i.value):
                if global_graph.concept_of(feature) == concept:
                    patterns.append(
                        f"?{var} {qname(feature)} ?{column_names[feature]} ."
                    )
            for feature in sorted(self.optional_features, key=lambda i: i.value):
                if global_graph.concept_of(feature) == concept:
                    patterns.append(
                        f"OPTIONAL {{ ?{var} {qname(feature)} "
                        f"?{column_names[feature]} }}"
                    )
        for edge in self.sorted_edges():
            s_var = concept_vars[edge.subject]  # type: ignore[index]
            o_var = concept_vars[edge.object]  # type: ignore[index]
            patterns.append(f"?{s_var} {qname(edge.predicate)} ?{o_var} .")  # type: ignore[arg-type]
        for condition in self.filters:
            column = column_names[condition.feature]
            patterns.append(
                f"FILTER(?{column} {condition.op} {condition.sparql_literal()})"
            )
        prefixes = sorted(
            {qname(t).split(":", 1)[0] for t in self._qname_terms(ns)}
        )
        prefix_lines = []
        for prefix in prefixes + ["rdf"]:
            namespace = ns.namespace(prefix)
            if namespace is not None and prefix not in [
                line.split()[1].rstrip(":") for line in prefix_lines
            ]:
                prefix_lines.append(f"PREFIX {prefix}: <{namespace.base}>")
        body = "\n    ".join(patterns)
        return (
            "\n".join(sorted(set(prefix_lines)))
            + f"\nSELECT {projection} WHERE {{\n    {body}\n}}"
        )

    def _qname_terms(self, ns) -> List[IRI]:
        terms: List[IRI] = list(self.concepts) + list(self.features)
        for edge in self.edges:
            terms.append(edge.predicate)  # type: ignore[arg-type]
        return [t for t in terms if ns.compact(t) is not None]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def to_dot(self, global_graph: GlobalGraph) -> str:
        """GraphViz DOT rendering (concepts as boxes, features as ellipses)."""
        ns = global_graph.graph.namespaces

        def label(iri: IRI) -> str:
            compact = ns.compact(iri)
            return compact if compact is not None else iri.local_name()

        lines = ["digraph walk {", "  rankdir=LR;"]
        for concept in self.sorted_concepts():
            lines.append(
                f'  "{label(concept)}" [shape=box, style=filled, fillcolor=lightblue];'
            )
        for feature in self.sorted_features():
            lines.append(
                f'  "{label(feature)}" [shape=ellipse, style=filled, fillcolor=lightyellow];'
            )
            owner = global_graph.concept_of(feature)
            if owner is not None and owner in self.concepts:
                lines.append(
                    f'  "{label(owner)}" -> "{label(feature)}" [label="hasFeature", style=dashed];'
                )
        for edge in self.sorted_edges():
            lines.append(
                f'  "{label(edge.subject)}" -> "{label(edge.object)}" '  # type: ignore[arg-type]
                f'[label="{label(edge.predicate)}"];'  # type: ignore[arg-type]
            )
        lines.append("}")
        return "\n".join(lines)

    def describe(self, global_graph: GlobalGraph) -> str:
        """One-line human description for logs and the demo narration."""
        ns = global_graph.graph.namespaces

        def label(iri: IRI) -> str:
            compact = ns.compact(iri)
            return compact if compact is not None else iri.local_name()

        concepts = ", ".join(label(c) for c in self.sorted_concepts())
        features = ", ".join(label(f) for f in self.sorted_features())
        text = f"walk over concepts [{concepts}] fetching [{features}]"
        if self.optional_features:
            optionals = ", ".join(
                label(f)
                for f in sorted(self.optional_features, key=lambda i: i.value)
            )
            text += f" optionally [{optionals}]"
        if self.filters:
            conditions = " ∧ ".join(c.describe() for c in self.filters)
            text += f" where {conditions}"
        return text
