"""A generation-keyed LRU of fetched wrapper *relations*.

One level below the result cache (:mod:`repro.core.result_cache`): where
that cache stores finished query outcomes, this one stores the typed
relation a single wrapper returned for a single canonical
:class:`~repro.sources.fetch.FetchRequest`, keyed by::

    (wrapper name, canonical request, metadata generation)

Generation keying reuses the write-lock generation counter: any metadata
mutation bumps it and every cached payload becomes unreachable, which is
exactly the invalidation semantics the rewrite and result caches already
follow.  Between generations the cache assumes *source stability* — the
same freshness trade the result cache makes, so it is likewise opt-in
(capacity 0 by default, enabled via ``MDM(wrapper_cache_size=…)``,
``$MDM_WRAPPER_CACHE`` or ``POST /config/execution``).

A lookup for a pushed request that misses may still be served from a
cached *full* fetch of the same wrapper at the same generation: the
request is applied mediator-side with executor semantics, so the derived
relation is byte-identical to what the source would have returned.
Relations are immutable (tuple-backed rows), so entries are shared
without copying.

Hits, misses and evictions flow into the process metrics registry
(``mdm_wrapper_cache_*``); per-query hits surface as ``wrapper-cache``
spans tagged ``cache=hit`` and in the ``EXPLAIN ANALYZE`` pushdown
section.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..chaos.failpoints import fire as _failpoint
from ..obs import get_metrics
from ..relational.relation import Relation
from ..sources.fetch import FULL_FETCH, FetchRequest, apply_fetch_request

__all__ = ["WrapperCache"]

_Key = Tuple[str, str, int]


class WrapperCache:
    """Bounded LRU of ``(wrapper, request, generation) -> Relation``.

    Thread-safe; capacity 0 disables the cache entirely.
    """

    def __init__(self, capacity: int = 0):
        if capacity < 0:
            raise ValueError("wrapper cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[_Key, Relation]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    @staticmethod
    def key_for(wrapper: str, request: FetchRequest, generation: int) -> _Key:
        """The canonical cache key for one wrapper fetch at a generation."""
        return (wrapper, request.canonical(), generation)

    def lookup(
        self, wrapper: str, request: FetchRequest, generation: int
    ) -> Optional[Relation]:
        """The relation answering ``request``, or None (one hit OR miss).

        Probes the exact request key first, then — for a pushed request —
        the wrapper's full-fetch entry at the same generation, deriving
        the pushed relation locally.  The derived relation is stored
        under the exact key so later probes hit directly.
        """
        if not self.enabled:
            return None
        _failpoint("cache.wrapper", key=wrapper)
        key = self.key_for(wrapper, request, generation)
        metrics = get_metrics()
        with self._lock:
            relation = self._entries.get(key)
            if relation is None and not request.is_full:
                full = self._entries.get((wrapper, FULL_FETCH.canonical(), generation))
                if full is not None:
                    relation = apply_fetch_request(full, request)
                    self._store_locked(key, relation)
            if relation is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                metrics.counter(
                    "mdm_wrapper_cache_hits_total",
                    "Wrapper fetches served from the wrapper data cache.",
                ).inc()
                return relation
            self.misses += 1
            metrics.counter(
                "mdm_wrapper_cache_misses_total",
                "Wrapper-cache probes that fell through to a source fetch.",
            ).inc()
            return None

    def put(
        self, wrapper: str, request: FetchRequest, generation: int, relation: Relation
    ) -> None:
        """Cache one fetched relation (LRU-evicting)."""
        if not self.enabled:
            return
        with self._lock:
            self._store_locked(self.key_for(wrapper, request, generation), relation)

    def _store_locked(self, key: _Key, relation: Relation) -> None:
        self._entries[key] = relation
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            get_metrics().counter(
                "mdm_wrapper_cache_evictions_total",
                "Wrapper-cache LRU evictions.",
            ).inc()
        get_metrics().gauge(
            "mdm_wrapper_cache_size",
            "Entries currently held by the wrapper data cache.",
        ).set(len(self._entries))

    def resize(self, capacity: int) -> None:
        """Change the capacity in place (trimming LRU-first; 0 clears)."""
        if capacity < 0:
            raise ValueError("wrapper cache capacity must be >= 0")
        with self._lock:
            self.capacity = capacity
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            get_metrics().gauge(
                "mdm_wrapper_cache_size",
                "Entries currently held by the wrapper data cache.",
            ).set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (stats are kept — they are cumulative)."""
        with self._lock:
            self._entries.clear()
            get_metrics().gauge(
                "mdm_wrapper_cache_size",
                "Entries currently held by the wrapper data cache.",
            ).set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-shaped cumulative statistics (reports, benchmarks)."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "enabled": self.enabled,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __repr__(self) -> str:
        return (
            f"<WrapperCache {len(self)}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )
