"""Embedded document store (MongoDB substitute) for MDM system metadata."""

from .matching import FilterError, matches, resolve_path
from .store import Collection, DocumentStore, DuplicateKeyError

__all__ = [
    "DocumentStore",
    "Collection",
    "DuplicateKeyError",
    "matches",
    "resolve_path",
    "FilterError",
]
