"""Mongo-style filter evaluation for the document store.

Supports the operator subset MDM's metadata layer needs:

- implicit equality: ``{"kind": "wrapper"}``
- comparison: ``$eq $ne $gt $gte $lt $lte``
- membership: ``$in $nin``
- existence: ``$exists``
- regex: ``$regex`` (string pattern, optional ``$options`` with ``i``)
- boolean combinators: ``$and $or $nor $not``
- dot paths into nested documents and lists: ``"release.version"``

List semantics follow MongoDB: a query on a list field matches if *any*
element matches.
"""

from __future__ import annotations

import re
from typing import Any, List, Mapping

__all__ = ["matches", "resolve_path", "FilterError"]


class FilterError(ValueError):
    """Raised for malformed filter documents."""


_MISSING = object()


def resolve_path(document: Any, path: str) -> List[Any]:
    """All values at ``path`` (dot-separated) inside ``document``.

    Lists fan out; a missing segment contributes nothing.  The result is a
    list because Mongo path resolution is one-to-many through arrays.
    """
    values = [document]
    for segment in path.split("."):
        next_values: List[Any] = []
        for value in values:
            if isinstance(value, Mapping):
                if segment in value:
                    next_values.append(value[segment])
            elif isinstance(value, list):
                if segment.isdigit():
                    index = int(segment)
                    if 0 <= index < len(value):
                        next_values.append(value[index])
                else:
                    for element in value:
                        if isinstance(element, Mapping) and segment in element:
                            next_values.append(element[segment])
        values = next_values
        if not values:
            break
    return values


def _compare(op: str, actual: Any, expected: Any) -> bool:
    try:
        if op == "$eq":
            return actual == expected
        if op == "$ne":
            return actual != expected
        if op == "$gt":
            return actual is not None and actual > expected
        if op == "$gte":
            return actual is not None and actual >= expected
        if op == "$lt":
            return actual is not None and actual < expected
        if op == "$lte":
            return actual is not None and actual <= expected
    except TypeError:
        return False
    raise FilterError(f"unknown comparison operator {op!r}")


def _match_condition(values: List[Any], condition: Any) -> bool:
    """Match the resolved values of one path against one condition."""
    if isinstance(condition, Mapping) and any(
        k.startswith("$") for k in condition
    ):
        for op, expected in condition.items():
            if op == "$options":
                continue
            if op == "$exists":
                if bool(values) != bool(expected):
                    return False
            elif op == "$in":
                if not isinstance(expected, (list, tuple)):
                    raise FilterError("$in expects a list")
                if not any(
                    v in expected
                    or (isinstance(v, list) and any(e in expected for e in v))
                    for v in values
                ):
                    return False
            elif op == "$nin":
                if not isinstance(expected, (list, tuple)):
                    raise FilterError("$nin expects a list")
                if any(v in expected for v in values):
                    return False
            elif op == "$regex":
                flags = 0
                options = condition.get("$options", "")
                if "i" in options:
                    flags |= re.IGNORECASE
                pattern = re.compile(expected, flags)
                if not any(
                    isinstance(v, str) and pattern.search(v) for v in values
                ):
                    return False
            elif op == "$not":
                if _match_condition(values, expected):
                    return False
            elif op in ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte"):
                if op == "$ne":
                    # $ne is a for-all: no value may equal.
                    if any(v == expected for v in values):
                        return False
                    # A list value containing the element also fails $ne.
                    if any(
                        isinstance(v, list) and expected in v for v in values
                    ):
                        return False
                else:
                    hit = False
                    for v in values:
                        candidates = v if isinstance(v, list) else [v]
                        if any(_compare(op, c, expected) for c in candidates):
                            hit = True
                            break
                    if not hit:
                        return False
            else:
                raise FilterError(f"unknown operator {op!r}")
        return True
    # Implicit equality: match the value itself or any list element.
    for v in values:
        if v == condition:
            return True
        if isinstance(v, list) and condition in v:
            return True
    return False


def matches(document: Mapping[str, Any], query: Mapping[str, Any]) -> bool:
    """Whether ``document`` satisfies the Mongo-style ``query``."""
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise FilterError(f"unknown top-level operator {key!r}")
        else:
            values = resolve_path(document, key)
            if not values and not (
                isinstance(condition, Mapping) and "$exists" in condition
            ):
                if isinstance(condition, Mapping) and any(
                    k.startswith("$") for k in condition
                ):
                    if "$ne" in condition or "$nin" in condition or "$not" in condition:
                        # vacuously true for missing fields, like Mongo
                        continue
                return False
            if not _match_condition(values, condition):
                return False
    return True
