"""An embedded document store (MongoDB substitute).

MDM persists its system metadata — data sources, wrapper registrations,
releases, query logs — in MongoDB (paper §2.5).  :class:`DocumentStore`
provides the same document/collection model with Mongo-style filters
(:mod:`repro.docstore.matching`), update operators, and JSON-lines
persistence so a store survives process restarts.

Documents are plain dicts.  Every inserted document gets a string ``_id``
(caller-provided or auto-minted, unique per collection).

Collections are thread-safe: the multi-client service records a query
document per ``execute()`` and concurrent inserts would otherwise race
on the id counter and the backing dict.  Reads return deep copies, so a
caller never holds a reference a concurrent writer could mutate.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

from ..chaos.failpoints import fire as _failpoint
from .matching import FilterError, matches, resolve_path

__all__ = ["Collection", "DocumentStore", "DuplicateKeyError"]


class DuplicateKeyError(ValueError):
    """Raised when inserting a document whose ``_id`` already exists."""


class Collection:
    """An ordered set of documents with unique ``_id`` values."""

    def __init__(self, name: str):
        self.name = name
        self._documents: Dict[str, Dict[str, Any]] = {}
        self._counter = 0
        self._lock = threading.RLock()

    def _mint_id(self) -> str:
        while True:
            self._counter += 1
            candidate = f"{self.name}-{self._counter:06d}"
            if candidate not in self._documents:
                return candidate

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def insert_one(self, document: Mapping[str, Any]) -> str:
        """Insert a copy of ``document``; returns its ``_id``."""
        doc = _failpoint("docstore.write", payload=copy.deepcopy(dict(document)),
                         key=self.name)
        with self._lock:
            doc_id = doc.get("_id")
            if doc_id is None:
                doc_id = self._mint_id()
                doc["_id"] = doc_id
            elif not isinstance(doc_id, str):
                raise TypeError("_id must be a string")
            if doc_id in self._documents:
                raise DuplicateKeyError(
                    f"duplicate _id {doc_id!r} in {self.name!r}"
                )
            self._documents[doc_id] = doc
            return doc_id

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> List[str]:
        """Insert several documents; returns their ids."""
        return [self.insert_one(d) for d in documents]

    def replace_one(self, query: Mapping[str, Any], document: Mapping[str, Any]) -> int:
        """Replace the first match wholesale (keeping its ``_id``)."""
        _failpoint("docstore.write", key=self.name)
        with self._lock:
            for doc_id, existing in self._documents.items():
                if matches(existing, query):
                    replacement = copy.deepcopy(dict(document))
                    replacement["_id"] = doc_id
                    self._documents[doc_id] = replacement
                    return 1
            return 0

    def update_one(self, query: Mapping[str, Any], update: Mapping[str, Any]) -> int:
        """Apply ``$set``/``$unset``/``$push``/``$inc`` to the first match."""
        with self._lock:
            for document in self._documents.values():
                if matches(document, query):
                    self._apply_update(document, update)
                    return 1
            return 0

    def update_many(self, query: Mapping[str, Any], update: Mapping[str, Any]) -> int:
        """Apply an update to every match; returns the count."""
        with self._lock:
            count = 0
            for document in self._documents.values():
                if matches(document, query):
                    self._apply_update(document, update)
                    count += 1
            return count

    @staticmethod
    def _apply_update(document: Dict[str, Any], update: Mapping[str, Any]) -> None:
        recognised = {"$set", "$unset", "$push", "$inc"}
        unknown = set(update) - recognised
        if unknown:
            raise FilterError(f"unknown update operators {sorted(unknown)}")
        for path, value in update.get("$set", {}).items():
            _set_path(document, path, copy.deepcopy(value))
        for path in update.get("$unset", {}):
            _unset_path(document, path)
        for path, value in update.get("$push", {}).items():
            target = _get_path_container(document, path, create=True)
            key = path.split(".")[-1]
            existing = target.get(key)
            if existing is None:
                target[key] = [copy.deepcopy(value)]
            elif isinstance(existing, list):
                existing.append(copy.deepcopy(value))
            else:
                raise FilterError(f"$push target {path!r} is not a list")
        for path, amount in update.get("$inc", {}).items():
            target = _get_path_container(document, path, create=True)
            key = path.split(".")[-1]
            target[key] = target.get(key, 0) + amount

    def delete_one(self, query: Mapping[str, Any]) -> int:
        """Delete the first match; returns 0 or 1."""
        with self._lock:
            for doc_id, document in self._documents.items():
                if matches(document, query):
                    del self._documents[doc_id]
                    return 1
            return 0

    def delete_many(self, query: Mapping[str, Any]) -> int:
        """Delete every match; returns the count."""
        with self._lock:
            victims = [
                doc_id
                for doc_id, document in self._documents.items()
                if matches(document, query)
            ]
            for doc_id in victims:
                del self._documents[doc_id]
            return len(victims)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def find(
        self,
        query: Optional[Mapping[str, Any]] = None,
        sort: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Copies of all matching documents (insertion order by default).

        ``sort`` is a dot path; documents missing it sort first.
        """
        query = query or {}
        with self._lock:
            results = [
                copy.deepcopy(document)
                for document in self._documents.values()
                if matches(document, query)
            ]
        if sort is not None:
            def sort_key(document: Dict[str, Any]):
                values = resolve_path(document, sort)
                if not values:
                    return (0, "")
                value = values[0]
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    return (1, float(value))
                return (2, str(value))

            results.sort(key=sort_key, reverse=descending)
        if limit is not None:
            results = results[:limit]
        return results

    def find_one(self, query: Optional[Mapping[str, Any]] = None) -> Optional[Dict[str, Any]]:
        """The first matching document (copy) or None."""
        found = self.find(query, limit=1)
        return found[0] if found else None

    def get(self, doc_id: str) -> Optional[Dict[str, Any]]:
        """Fetch by ``_id`` (copy) or None."""
        with self._lock:
            document = self._documents.get(doc_id)
            return copy.deepcopy(document) if document is not None else None

    def count(self, query: Optional[Mapping[str, Any]] = None) -> int:
        """Number of matching documents."""
        with self._lock:
            if not query:
                return len(self._documents)
            return sum(
                1 for d in self._documents.values() if matches(d, query)
            )

    def distinct(self, path: str, query: Optional[Mapping[str, Any]] = None) -> List[Any]:
        """Distinct values at ``path`` across matching documents."""
        seen: List[Any] = []
        for document in self.find(query):
            for value in resolve_path(document, path):
                candidates = value if isinstance(value, list) else [value]
                for candidate in candidates:
                    if candidate not in seen:
                        seen.append(candidate)
        return seen

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.find())


def _set_path(document: Dict[str, Any], path: str, value: Any) -> None:
    container = _get_path_container(document, path, create=True)
    container[path.split(".")[-1]] = value


def _unset_path(document: Dict[str, Any], path: str) -> None:
    container = _get_path_container(document, path, create=False)
    if container is not None:
        container.pop(path.split(".")[-1], None)


def _get_path_container(
    document: Dict[str, Any], path: str, create: bool
) -> Optional[Dict[str, Any]]:
    segments = path.split(".")
    current: Any = document
    for segment in segments[:-1]:
        if not isinstance(current, dict):
            return None
        if segment not in current:
            if not create:
                return None
            current[segment] = {}
        current = current[segment]
    return current if isinstance(current, dict) else None


class DocumentStore:
    """A set of named collections with optional JSONL persistence."""

    def __init__(self, path: Optional[os.PathLike] = None):
        self._collections: Dict[str, Collection] = {}
        self._lock = threading.Lock()
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load()

    def collection(self, name: str) -> Collection:
        """Get or create the collection called ``name``."""
        with self._lock:
            existing = self._collections.get(name)
            if existing is None:
                existing = Collection(name)
                self._collections[name] = existing
            return existing

    def drop_collection(self, name: str) -> bool:
        """Delete a collection entirely; True if it existed."""
        return self._collections.pop(name, None) is not None

    def collection_names(self) -> List[str]:
        """Sorted names of existing collections."""
        return sorted(self._collections)

    def copy(self) -> "DocumentStore":
        """An in-memory deep copy (no persistence path attached).

        The impact analyzer clones the metadata store alongside the RDF
        dataset so a shadow MDM can replay releases/registrations without
        the originals ever observing them — and without a ``save()`` on
        the clone clobbering the real store's file.
        """
        clone = DocumentStore()
        for name in self.collection_names():
            source = self._collections[name]
            target = clone.collection(name)
            with source._lock:
                target._documents = copy.deepcopy(source._documents)
                target._counter = source._counter
        return clone

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: Optional[os.PathLike] = None) -> Path:
        """Write all collections as JSON lines; atomic via temp + rename."""
        _failpoint("docstore.save")
        target = Path(path) if path is not None else self._path
        if target is None:
            raise ValueError("no persistence path configured")
        lines = []
        for name in self.collection_names():
            for document in self._collections[name].find():
                lines.append(json.dumps({"collection": name, "document": document},
                                        sort_keys=True))
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
            os.replace(temp_name, target)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        return target

    def _load(self) -> None:
        assert self._path is not None
        with open(self._path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                self.collection(record["collection"]).insert_one(record["document"])

    def __repr__(self) -> str:
        sizes = {n: len(c) for n, c in sorted(self._collections.items())}
        return f"<DocumentStore {sizes}>"
