"""Observability for the MDM pipeline: tracing, metrics, one timing path.

The governance story of the paper — stewards understanding what the
system did to their data — needs a measurement substrate.  This package
provides it without any third-party dependency:

- :mod:`repro.obs.trace` — hierarchical :class:`Span`s with explicit
  ``trace_id``/``span_id``/``parent_id``, contextvars-based current-span
  tracking (safe across ThreadPoolExecutor workers), probabilistic +
  always-on-slow sampling, and pluggable sinks (ring buffer, JSONL);
- :mod:`repro.obs.querylog` — one structured :class:`QueryLogRecord`
  per ``MDM.execute`` (correlation id, phase timings, row counts, cache
  reuse, failure status) in a ring plus optional JSONL mirror;
- :mod:`repro.obs.profile` — the per-query :class:`ResourceProfile`
  attached to ``QueryOutcome`` (phase wall times, rows, peak memory,
  per-operator self time);
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with Prometheus text exposition and
  p50/p95/p99 summaries;
- :mod:`repro.obs.timing` — the :func:`timed` decorator, the single
  timing code path used by scenarios and benchmarks;
- :mod:`repro.obs.selfcheck` — ``python -m repro.obs.selfcheck`` smoke
  command asserting the instrumentation end-to-end.

Tracing is zero-overhead by default: the process tracer starts disabled
and its ``span()`` returns a shared no-op singleton.  Metrics are always
on (cheap dict updates) so ``GET /metrics`` is populated after one query.

:func:`capture` swaps in a fresh enabled tracer plus empty registry for
the duration of a block — the isolation primitive tests and benchmark
harnesses use::

    with capture() as (tracer, registry):
        mdm.execute(walk, analyze=True)
    print(tracer.recent()[-1].tree())
    print(registry.render_prometheus())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from .profile import ResourceProfile
from .querylog import (
    QueryLog,
    QueryLogRecord,
    configure_query_log,
    get_query_log,
    reset_query_log,
    set_query_log,
)
from .timing import time_block, timed
from .trace import (
    JsonlSink,
    NOOP_SPAN,
    RingSink,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "RingSink",
    "JsonlSink",
    "NOOP_SPAN",
    "current_span",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "QueryLog",
    "QueryLogRecord",
    "get_query_log",
    "set_query_log",
    "reset_query_log",
    "configure_query_log",
    "ResourceProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "timed",
    "time_block",
    "capture",
]


@contextmanager
def capture(
    jsonl: Optional[str] = None, ring_capacity: int = 256
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Fresh enabled tracer + empty registry for the duration of a block.

    The previous process-local tracer and registry are restored on exit,
    so captures nest and never leak state into unrelated code.  The
    capture tracer samples at rate 1.0 regardless of environment
    configuration — a capture exists to observe, not to sample.
    """
    previous_tracer = get_tracer()
    previous_metrics = get_metrics()
    tracer = Tracer(
        enabled=True,
        ring_capacity=ring_capacity,
        sample_rate=1.0,
        slow_threshold_ms=None,
    )
    if jsonl:
        tracer.add_sink(JsonlSink(jsonl))
    registry = MetricsRegistry()
    set_tracer(tracer)
    set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)
