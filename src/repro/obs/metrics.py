"""Counters, gauges and fixed-bucket histograms with Prometheus exposition.

The profiling-style metadata the governance literature asks for (per-source
fetch latency, per-phase rewrite cost, request rates) is aggregated here in
a :class:`MetricsRegistry`.  Metric objects are get-or-create by name so
instrumented call sites stay one-liners::

    get_metrics().counter("mdm_queries_total", "OMQ executions.").inc()

:meth:`MetricsRegistry.render_prometheus` emits the text exposition format
(``# HELP`` / ``# TYPE`` / sample lines, cumulative ``_bucket`` series with
``le`` labels) so the ``GET /metrics`` endpoint is scrape-compatible.

Standard library only; no imports from the rest of :mod:`repro`.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets in seconds — the pipeline's hot operations run
#: in the microsecond-to-millisecond range, so the ladder starts at 10µs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00001,
    0.00005,
    0.0001,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class Metric:
    """Shared bookkeeping: name, help text, label names, series map."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise ValueError(f"duplicate label names in {tuple(labelnames)}")
        self.name = name
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], Any] = {}
        # Parallel wrapper fetches record retries/latency from worker
        # threads; read-modify-write on a series is not atomic under the
        # GIL, so every mutation takes this lock.
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _render_labels(self, key: Tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def labels_of(self, key: Tuple[str, ...]) -> Dict[str, str]:
        """The label dict a series key stands for."""
        return dict(zip(self.labelnames, key))

    def series_keys(self) -> List[Tuple[str, ...]]:
        """All label-value tuples observed so far, sorted."""
        return sorted(self._series)

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.type_name}",
        ]

    def render(self) -> List[str]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing sum (per label combination)."""

    type_name = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (must be >= 0) to the labeled series."""
        if value < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of the labeled series (0.0 if never incremented)."""
        return self._series.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self.header_lines()
        for key in self.series_keys():
            lines.append(
                f"{self.name}{self._render_labels(key)} "
                f"{_format_value(self._series[key])}"
            )
        return lines

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "help": self.help_text,
            "series": [
                {"labels": self.labels_of(key), "value": self._series[key]}
                for key in self.series_keys()
            ],
        }


class Gauge(Counter):
    """A value that can go up and down (set/inc/dec)."""

    type_name = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the labeled series to ``value``."""
        with self._lock:
            self._series[self._key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        self.inc(-value, **labels)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "overflow", "count", "total")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.overflow = 0  # observations above the last finite bucket
        self.count = 0
        self.total = 0.0


class Histogram(Metric):
    """Fixed-bucket histogram with cumulative Prometheus exposition.

    Buckets are upper bounds (``le`` semantics): an observation equal to a
    boundary lands in that boundary's bucket; observations above the last
    finite bucket count only toward ``+Inf``.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be strictly increasing: {bounds}")
        self.buckets: Tuple[float, ...] = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labeled series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                series.bucket_counts[index] += 1
            else:
                series.overflow += 1
            series.count += 1
            series.total += value

    def count(self, **labels: Any) -> int:
        """Number of observations of the labeled series."""
        series = self._series.get(self._key(labels))
        return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observed values of the labeled series."""
        series = self._series.get(self._key(labels))
        return series.total if series else 0.0

    def cumulative_buckets(self, **labels: Any) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        series = self._series.get(self._key(labels))
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(
            self.buckets, series.bucket_counts if series else [0] * len(self.buckets)
        ):
            running += n
            out.append((bound, running))
        out.append((float("inf"), series.count if series else 0))
        return out

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimated ``q``-th percentile (0–100) of the labeled series.

        Linear interpolation over the cumulative bucket counts — the
        standard scrape-side estimate (à la ``histogram_quantile``), so
        the resolution is bounded by the bucket ladder.  Observations in
        the ``+Inf`` bucket clamp to the last finite bound; an empty
        (or unknown) series yields ``None`` — "no data" must not be
        confusable with "p99 of zero seconds" in dashboards and
        benchmark gates.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        series = self._series.get(self._key(labels))
        if series is None or series.count == 0:
            return None
        target = (q / 100.0) * series.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.buckets, series.bucket_counts):
            if running + n >= target and n > 0:
                fraction = (target - running) / n
                return lower + (bound - lower) * max(0.0, min(1.0, fraction))
            running += n
            lower = bound
        # Target falls in the +Inf bucket: the honest answer is "at
        # least the last finite bound".
        return self.buckets[-1]

    def percentiles(
        self, qs: Sequence[float] = (50.0, 95.0, 99.0), **labels: Any
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ...}`` (``None`` per empty series)."""
        return {
            f"p{int(q) if float(q).is_integer() else q}": self.percentile(
                q, **labels
            )
            for q in qs
        }

    def render(self) -> List[str]:
        lines = self.header_lines()
        for key in self.series_keys():
            series = self._series[key]
            running = 0
            for bound, n in zip(self.buckets, series.bucket_counts):
                running += n
                le = self._render_labels(key, f'le="{_format_value(bound)}"')
                lines.append(f"{self.name}_bucket{le} {running}")
            le = self._render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{le} {series.count}")
            labels = self._render_labels(key)
            lines.append(f"{self.name}_sum{labels} {_format_value(series.total)}")
            lines.append(f"{self.name}_count{labels} {series.count}")
        return lines

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "help": self.help_text,
            "series": [
                {
                    "labels": self.labels_of(key),
                    "count": series.count,
                    "sum": series.total,
                    "mean": (series.total / series.count) if series.count else None,
                    **self.percentiles(**self.labels_of(key)),
                }
                for key, series in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """Named metrics with idempotent get-or-create registration."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.type_name}, not {cls.type_name}"
                )
            if tuple(labelnames) != existing.labelnames:
                raise ValueError(
                    f"metric {name!r} registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help_text, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create a histogram (buckets fixed at first creation)."""
        return self._get_or_create(
            Histogram,
            name,
            help_text,
            labelnames,
            buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
        )

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names in registration order."""
        return list(self._metrics)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-shaped dump of every metric (reports, BENCH artifacts)."""
        return {name: metric.snapshot() for name, metric in self._metrics.items()}

    def summary(self) -> Dict[str, Any]:
        """Latency summary: per-histogram-series count/mean/p50/p95/p99.

        The at-a-glance view ``report --metrics`` and
        ``GET /metrics/summary`` serve — only histograms appear, since
        percentile summaries are meaningless for counters and gauges.
        """
        out: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if not isinstance(metric, Histogram):
                continue
            out[name] = {
                "help": metric.help_text,
                "series": [
                    {
                        "labels": metric.labels_of(key),
                        "count": metric.count(**metric.labels_of(key)),
                        "mean": (
                            metric.sum(**metric.labels_of(key))
                            / metric.count(**metric.labels_of(key))
                            if metric.count(**metric.labels_of(key))
                            else None
                        ),
                        **metric.percentiles(**metric.labels_of(key)),
                    }
                    for key in metric.series_keys()
                ],
            }
        return out

    def reset(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()


#: The process-local default registry all instrumented paths write to.
_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-local metrics registry."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-local registry; returns it for chaining."""
    global _registry
    _registry = registry
    return registry


def reset_metrics() -> MetricsRegistry:
    """Install a fresh empty registry (test isolation helper)."""
    return set_metrics(MetricsRegistry())
