"""Per-query resource profiles: where one OMQ spent its time and memory.

A :class:`ResourceProfile` is attached to every
:class:`~repro.core.mdm.QueryOutcome` and answers the operational
questions a steward asks about a single query: how long each pipeline
phase took (rewrite / fetch / optimize / validate / execute / finalize —
the phases cover the whole wall time, with the unattributed remainder in
``other``), how many rows were fetched from the wrappers and scanned by
the executor, how much memory the query peaked at (when
:mod:`tracemalloc` is tracing), and which relational operators dominated
(rolled up from the EXPLAIN ANALYZE stats when the run was analyzed).

Standard library only; imports nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["ResourceProfile", "PhaseTimer", "MemoryWatch", "rollup_operators"]


class PhaseTimer:
    """Accumulates named phase durations against one wall clock.

    Usage::

        timer = PhaseTimer()
        with timer.phase("rewrite"):
            ...
        phases_ms = timer.finish()   # includes the "other" remainder

    Phases may repeat (durations accumulate) but must not overlap.
    """

    def __init__(self, clock=None):
        import time

        self._clock = clock if clock is not None else time.perf_counter
        self._started = self._clock()
        self._phases: Dict[str, float] = {}
        self.total_s = 0.0

    def phase(self, name: str):
        """Context manager timing one phase occurrence."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._phases[name] = self._phases.get(name, 0.0) + seconds

    def finish(self) -> Dict[str, float]:
        """Stop the wall clock; phase → milliseconds, plus ``other``.

        The ``other`` bucket absorbs wall time outside any phase, so the
        per-phase milliseconds always sum to the total (within float
        noise) — the invariant the acceptance contract checks.
        """
        self.total_s = self._clock() - self._started
        attributed = sum(self._phases.values())
        other = max(0.0, self.total_s - attributed)
        phases_ms = {name: s * 1000.0 for name, s in self._phases.items()}
        phases_ms["other"] = other * 1000.0
        return phases_ms


class _Phase:
    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_Phase":
        self._t0 = self._timer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.add(self._name, self._timer._clock() - self._t0)
        return False


class MemoryWatch:
    """Peak-memory observation scoped to one query.

    When :mod:`tracemalloc` is already tracing (the operator started it,
    or ``start=True`` asked us to), the watch resets the peak counter on
    entry and reads the traced peak on exit; otherwise it reports None
    rather than paying the global cost of turning allocation tracing on
    behind the operator's back.
    """

    def __init__(self, start: bool = False):
        self._started_here = False
        self.peak_bytes: Optional[int] = None
        if start and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True

    def __enter__(self) -> "MemoryWatch":
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if tracemalloc.is_tracing():
            self.peak_bytes = tracemalloc.get_traced_memory()[1]
        if self._started_here:
            tracemalloc.stop()
        return False


def rollup_operators(stats) -> Dict[str, float]:
    """Per-operator-label *self* milliseconds from an OperatorStats tree.

    Accepts any node exposing ``iter_nodes()`` / ``label`` / ``self_s``
    (duck-typed so this module stays import-free); returns a label →
    accumulated-self-time-ms mapping, largest first.
    """
    if stats is None:
        return {}
    totals: Dict[str, float] = {}
    for node in stats.iter_nodes():
        totals[node.label] = totals.get(node.label, 0.0) + node.self_s * 1000.0
    return dict(
        sorted(totals.items(), key=lambda item: item[1], reverse=True)
    )


@dataclass(frozen=True)
class ResourceProfile:
    """What one query cost: time by phase/operator, rows, peak memory."""

    total_ms: float
    phase_ms: Mapping[str, float] = field(default_factory=dict)
    rows_fetched: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    peak_memory_bytes: Optional[int] = None
    operator_ms: Mapping[str, float] = field(default_factory=dict)
    #: Rows that actually crossed the wrapper boundary this query
    #: (0 for wrapper-cache hits; < rows_fetched when filters/limits
    #: were applied source-side).
    rows_transferred: int = 0
    #: Rows the sources filtered out before transfer — the saving the
    #: federated pushdown bought (only counted where the source knows
    #: its full cardinality).
    rows_pushed_down: int = 0

    @property
    def phase_total_ms(self) -> float:
        """Sum of the per-phase milliseconds (≈ :attr:`total_ms`)."""
        return sum(self.phase_ms.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped rendering (query log enrichment, APIs)."""
        return {
            "total_ms": round(self.total_ms, 6),
            "phase_ms": {k: round(v, 6) for k, v in self.phase_ms.items()},
            "rows_fetched": self.rows_fetched,
            "rows_scanned": self.rows_scanned,
            "rows_returned": self.rows_returned,
            "rows_transferred": self.rows_transferred,
            "rows_pushed_down": self.rows_pushed_down,
            "peak_memory_bytes": self.peak_memory_bytes,
            "operator_ms": {
                k: round(v, 6) for k, v in self.operator_ms.items()
            },
        }

    def render(self) -> str:
        """Human rendering for EXPLAIN ANALYZE / the trace CLI."""
        parts = [
            f"{name}={ms:.3f}ms"
            for name, ms in self.phase_ms.items()
            if name != "other" or ms > 0.0
        ]
        lines = [
            f"Resources: total {self.total_ms:.3f}ms ({', '.join(parts)})",
            f"  rows: fetched={self.rows_fetched} "
            f"scanned={self.rows_scanned} returned={self.rows_returned}",
        ]
        if self.rows_transferred != self.rows_fetched or self.rows_pushed_down:
            lines.append(
                f"  pushdown: transferred={self.rows_transferred} "
                f"pushed_down={self.rows_pushed_down}"
            )
        if self.peak_memory_bytes is not None:
            lines.append(
                f"  peak memory: {self.peak_memory_bytes / 1024.0:.1f} KiB"
            )
        if self.operator_ms:
            top = list(self.operator_ms.items())[:5]
            ops = ", ".join(f"{label} {ms:.3f}ms" for label, ms in top)
            lines.append(f"  top operators (self time): {ops}")
        return "\n".join(lines)
