"""The structured query log: one record per end-to-end OMQ execution.

Metadata-profiling work in data ecosystems argues governance needs
*continuously collected operational metadata*, not one-off debug dumps.
The query log is that stream for MDM: every :meth:`repro.core.mdm.MDM.execute`
call — traced or not, successful or not — appends exactly one
:class:`QueryLogRecord` carrying a correlation id (the trace_id of the
query's trace, whether or not the trace was sampled), per-phase wall
times, row counts, cache/memo reuse, partial/failure status and wrapper
attempt counts.

Records land in a bounded in-memory ring (served by
``GET /querylog/recent``) and, when a path is configured
(``MDM_QUERYLOG`` env var or :func:`configure_query_log`), in an
append-only JSONL file that ``repro trace --follow`` can tail.

Standard library only; imports nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "QueryLogRecord",
    "QueryLog",
    "get_query_log",
    "set_query_log",
    "reset_query_log",
    "configure_query_log",
]


@dataclass(frozen=True)
class QueryLogRecord:
    """One executed (or failed) OMQ, shaped for machines.

    ``correlation_id`` equals the ``trace_id`` of the query's trace, so a
    log record can be joined to its span tree via ``GET /traces/<id>``
    whenever the trace was sampled; ``trace_decision`` records what the
    sampler did ("sampled" / "slow" / "dropped" / "off").
    """

    correlation_id: str
    started_at: float
    duration_ms: float
    status: str  # "ok" | "partial" | "error"
    walk: str
    ucq_size: int
    rows_fetched: int
    rows_returned: int
    rewrite_cache: str  # "hit" | "miss" | "bypass"
    subplan_hits: int
    subplan_misses: int
    phase_ms: Mapping[str, float] = field(default_factory=dict)
    fetch_attempts: Mapping[str, int] = field(default_factory=dict)
    skipped_wrappers: Tuple[str, ...] = ()
    trace_decision: str = "off"
    error: Optional[str] = None
    result_cache: str = "off"  # "hit" | "miss" | "bypass" | "off"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryLogRecord":
        """Rebuild a record from its :meth:`to_dict` shape (JSONL tailing)."""
        return cls(
            correlation_id=str(data.get("correlation_id", "")),
            started_at=float(data.get("started_at", 0.0)),
            duration_ms=float(data.get("duration_ms", 0.0)),
            status=str(data.get("status", "ok")),
            walk=str(data.get("walk", "")),
            ucq_size=int(data.get("ucq_size", 0)),
            rows_fetched=int(data.get("rows_fetched", 0)),
            rows_returned=int(data.get("rows_returned", 0)),
            rewrite_cache=str(data.get("rewrite_cache", "bypass")),
            subplan_hits=int(data.get("subplan_hits", 0)),
            subplan_misses=int(data.get("subplan_misses", 0)),
            phase_ms=dict(data.get("phase_ms") or {}),
            fetch_attempts=dict(data.get("fetch_attempts") or {}),
            skipped_wrappers=tuple(data.get("skipped_wrappers") or ()),
            trace_decision=str(data.get("trace_decision", "off")),
            error=data.get("error"),
            result_cache=str(data.get("result_cache", "off")),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped rendering (JSONL lines, the /querylog endpoint)."""
        return {
            "correlation_id": self.correlation_id,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_ms, 6),
            "status": self.status,
            "walk": self.walk,
            "ucq_size": self.ucq_size,
            "rows_fetched": self.rows_fetched,
            "rows_returned": self.rows_returned,
            "rewrite_cache": self.rewrite_cache,
            "subplan_hits": self.subplan_hits,
            "subplan_misses": self.subplan_misses,
            "phase_ms": {k: round(v, 6) for k, v in self.phase_ms.items()},
            "fetch_attempts": dict(self.fetch_attempts),
            "skipped_wrappers": list(self.skipped_wrappers),
            "trace_decision": self.trace_decision,
            "error": self.error,
            "result_cache": self.result_cache,
        }

    def summary_line(self) -> str:
        """One human-readable line (``trace --follow`` output)."""
        extra = ""
        if self.status == "error":
            extra = f"  error={self.error}"
        elif self.skipped_wrappers:
            extra = f"  skipped={','.join(self.skipped_wrappers)}"
        return (
            f"{self.correlation_id[:12]}  {self.status:<7} "
            f"{self.duration_ms:8.3f}ms  ucq={self.ucq_size} "
            f"rows={self.rows_returned} cache={self.rewrite_cache} "
            f"walk={self.walk}{extra}"
        )


class QueryLog:
    """Bounded ring of recent records plus an optional JSONL mirror.

    Thread-safe: concurrent queries through the service layer (or pool
    workers finishing out of order) may record simultaneously.
    """

    def __init__(self, capacity: int = 512, jsonl_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("query log capacity must be >= 1")
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.jsonl_path = str(jsonl_path) if jsonl_path else None
        self._fh: Optional[Any] = None
        #: Total records ever logged (survives ring eviction).
        self.total = 0

    def record(self, record: QueryLogRecord) -> QueryLogRecord:
        """Append one record (and mirror it to the JSONL file, if any)."""
        line = None
        if self.jsonl_path:
            line = json.dumps(record.to_dict(), sort_keys=True, default=str)
        with self._lock:
            self._ring.append(record)
            self.total += 1
            if line is not None:
                if self._fh is None:
                    self._fh = open(self.jsonl_path, "a", encoding="utf-8")
                self._fh.write(line + "\n")
                self._fh.flush()
        return record

    def recent(self, n: int = 20) -> List[QueryLogRecord]:
        """The last ``n`` records, oldest first."""
        with self._lock:
            items = list(self._ring)
        return items[-n:] if n >= 0 else items

    def clear(self) -> None:
        """Drop buffered records (the JSONL file is left untouched)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Flush and close the JSONL mirror (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


#: The process-local query log all MDM instances record into.  A JSONL
#: mirror can be preconfigured through the environment.
_query_log = QueryLog(jsonl_path=os.environ.get("MDM_QUERYLOG") or None)


def get_query_log() -> QueryLog:
    """The process-local query log."""
    return _query_log


def set_query_log(log: QueryLog) -> QueryLog:
    """Replace the process-local query log; returns it for chaining."""
    global _query_log
    _query_log = log
    return log


def reset_query_log() -> QueryLog:
    """Install a fresh empty query log (test isolation helper)."""
    return set_query_log(QueryLog())


def configure_query_log(
    capacity: int = 512, jsonl_path: Optional[str] = None
) -> QueryLog:
    """Install a query log with the given ring size / JSONL mirror."""
    return set_query_log(QueryLog(capacity=capacity, jsonl_path=jsonl_path))
