"""Smoke-check the observability wiring end-to-end.

``python -m repro.obs.selfcheck`` builds the paper's football scenario,
executes the Figure 8 OMQ under a captured tracer/registry, and asserts
that every instrumentation point fired: the three rewriting-phase spans,
wrapper fetch spans, per-operator executor stats, and the Prometheus
exposition series.  Exit code 0 on success — wired into the tier-1 test
run so a PR cannot silently unplug the instrumentation.
"""

from __future__ import annotations

import sys
from typing import List

from . import capture

__all__ = ["main"]

REQUIRED_SPANS = (
    "execute",
    "rewrite",
    "phase:expansion",
    "phase:intra-concept",
    "phase:inter-concept",
)

REQUIRED_SERIES = (
    "mdm_rewrite_phase_seconds_bucket",
    "mdm_rewrite_total",
    "mdm_wrapper_fetch_seconds_bucket",
    "mdm_executor_operator_seconds_bucket",
    "mdm_execute_seconds_bucket",
)


def main(argv=None) -> int:
    """Run the smoke check; prints a verdict and returns the exit code."""
    from ..scenarios.football import FootballScenario

    failures: List[str] = []
    with capture() as (tracer, registry):
        scenario = FootballScenario.build(anchors_only=True)
        walk = scenario.walk_league_nationality()
        outcome = scenario.mdm.execute(walk, analyze=True)
        roots = tracer.recent()

    if not roots:
        failures.append("no root span was recorded")
    else:
        root = roots[-1]
        names = {span.name for span in root.iter_spans()}
        for required in REQUIRED_SPANS:
            if required not in names:
                failures.append(f"missing span {required!r}")
        if not any(name.startswith("fetch:") for name in names):
            failures.append("no wrapper fetch span was recorded")
        if not any(name.startswith("op:") for name in names):
            failures.append("no executor operator span was recorded")

    if outcome.operator_stats is None:
        failures.append("execute(analyze=True) returned no operator stats")
    elif outcome.operator_stats.rows_out != len(outcome.relation):
        failures.append(
            f"root operator rows_out={outcome.operator_stats.rows_out} "
            f"!= result rows={len(outcome.relation)}"
        )

    exposition = registry.render_prometheus()
    for series in REQUIRED_SERIES:
        if series not in exposition:
            failures.append(f"missing metric series {series!r} in /metrics")

    if failures:
        for failure in failures:
            print(f"obs selfcheck: FAIL — {failure}")
        return 1
    print(
        "obs selfcheck: OK "
        f"(spans={sum(1 for _ in roots[-1].iter_spans())}, "
        f"metrics={len(registry.names())}, rows={len(outcome.relation)})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
