"""Smoke-check the observability wiring end-to-end.

``python -m repro.obs.selfcheck`` builds the paper's football scenario,
executes the Figure 8 OMQ under a captured tracer/registry, and asserts
that every instrumentation point fired: the three rewriting-phase spans,
wrapper fetch spans, per-operator executor stats, the Prometheus
exposition series (including the trace-sampling counter), the query-log
record, and the tracer's thread-safety invariants (a multi-threaded span
storm must yield unique span ids all parented to their thread's root).
Exit code 0 on success — wired into the tier-1 test run so a PR cannot
silently unplug the instrumentation.
"""

from __future__ import annotations

import sys
import threading
from typing import List

from . import capture
from .querylog import get_query_log, reset_query_log, set_query_log
from .trace import Tracer

__all__ = ["main"]

REQUIRED_SPANS = (
    "execute",
    "rewrite-cache",
    "rewrite",
    "phase:expansion",
    "phase:intra-concept",
    "phase:inter-concept",
)

REQUIRED_SERIES = (
    "mdm_rewrite_phase_seconds_bucket",
    "mdm_rewrite_total",
    "mdm_wrapper_fetch_seconds_bucket",
    "mdm_executor_operator_seconds_bucket",
    "mdm_execute_seconds_bucket",
    "mdm_traces_sampled_total",
)


def _check_thread_safety(failures: List[str], threads: int = 8) -> None:
    """Span-storm the tracer from several threads at once.

    Each thread opens its own root with a nested child; afterwards every
    span id must be unique, every child parented to its own thread's
    root, and the ring must hold one root per thread — the invariants
    the contextvars design guarantees.
    """
    tracer = Tracer(enabled=True, ring_capacity=threads * 2, sample_rate=1.0)
    barrier = threading.Barrier(threads)

    def storm(index: int) -> None:
        barrier.wait()
        with tracer.span(f"storm-{index}", thread=index):
            with tracer.span(f"storm-{index}-child"):
                pass

    workers = [
        threading.Thread(target=storm, args=(i,)) for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    roots = tracer.recent(threads)
    if len(roots) != threads:
        failures.append(
            f"span storm recorded {len(roots)} roots, expected {threads}"
        )
        return
    span_ids = [s.span_id for root in roots for s in root.iter_spans()]
    if len(span_ids) != len(set(span_ids)):
        failures.append("span storm produced duplicate span ids")
    for root in roots:
        if len(root.children) != 1:
            failures.append(
                f"root {root.name!r} has {len(root.children)} children, "
                "expected exactly its own thread's child"
            )
            continue
        child = root.children[0]
        if child.parent_id != root.span_id or child.trace_id != root.trace_id:
            failures.append(
                f"child of {root.name!r} parented across threads "
                f"(parent_id={child.parent_id}, trace_id={child.trace_id})"
            )


def main(argv=None) -> int:
    """Run the smoke check; prints a verdict and returns the exit code."""
    from ..scenarios.football import FootballScenario

    failures: List[str] = []
    previous_log = get_query_log()
    query_log = reset_query_log()
    try:
        with capture() as (tracer, registry):
            scenario = FootballScenario.build(anchors_only=True)
            walk = scenario.walk_league_nationality()
            outcome = scenario.mdm.execute(walk, analyze=True)
            roots = tracer.recent()
    finally:
        set_query_log(previous_log)

    if not roots:
        failures.append("no root span was recorded")
    else:
        root = roots[-1]
        names = {span.name for span in root.iter_spans()}
        for required in REQUIRED_SPANS:
            if required not in names:
                failures.append(f"missing span {required!r}")
        if not any(name.startswith("fetch:") for name in names):
            failures.append("no wrapper fetch span was recorded")
        if not any(name.startswith("op:") for name in names):
            failures.append("no executor operator span was recorded")

    if outcome.operator_stats is None:
        failures.append("execute(analyze=True) returned no operator stats")
    elif outcome.operator_stats.rows_out != len(outcome.relation):
        failures.append(
            f"root operator rows_out={outcome.operator_stats.rows_out} "
            f"!= result rows={len(outcome.relation)}"
        )

    exposition = registry.render_prometheus()
    for series in REQUIRED_SERIES:
        if series not in exposition:
            failures.append(f"missing metric series {series!r} in /metrics")

    records = query_log.recent()
    if len(records) != 1:
        failures.append(
            f"query log holds {len(records)} records after one execute, "
            "expected exactly 1"
        )
    elif roots and records[0].correlation_id != roots[-1].trace_id:
        failures.append(
            "query-log correlation id does not match the trace id "
            f"({records[0].correlation_id} != {roots[-1].trace_id})"
        )

    summary = registry.summary()
    if "mdm_execute_seconds" not in summary:
        failures.append("registry.summary() is missing mdm_execute_seconds")
    elif not all(
        key in summary["mdm_execute_seconds"]["series"][0]
        for key in ("p50", "p95", "p99")
    ):
        failures.append("registry.summary() series lack p50/p95/p99")

    with capture():  # scratch registry for the storm's sampling counters
        _check_thread_safety(failures)

    if failures:
        for failure in failures:
            print(f"obs selfcheck: FAIL — {failure}")
        return 1
    print(
        "obs selfcheck: OK "
        f"(spans={sum(1 for _ in roots[-1].iter_spans())}, "
        f"metrics={len(registry.names())}, rows={len(outcome.relation)})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
