"""The one timing code path: a decorator funnelling into metrics + traces.

Instead of ad-hoc ``time.perf_counter()`` pairs scattered across scenarios
and benchmarks, wrap the callable::

    @timed("mdm_scenario_step_seconds", step="supersede_build")
    def build(...): ...

Every call observes its latency into a histogram of the given name (label
names are the sorted keys of the static labels) and, when the process
tracer is enabled, emits a span named after the wrapped function.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Optional

from .metrics import MetricsRegistry, get_metrics
from .trace import Tracer, get_tracer

__all__ = ["timed", "time_block"]


def timed(
    metric: str,
    help_text: str = "",
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **labels: Any,
):
    """Decorator timing each call into histogram ``metric`` (+ a span).

    ``labels`` are static label values attached to every observation;
    pass ``registry``/``tracer`` to pin the destinations, otherwise the
    process-local ones are resolved at call time (so tests that swap the
    globals see the observations).
    """
    labelnames = tuple(sorted(labels))

    def decorate(fn: Callable) -> Callable:
        span_name = f"timed:{fn.__qualname__}"
        doc = help_text or f"Latency of {fn.__qualname__} calls."

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            reg = registry if registry is not None else get_metrics()
            trc = tracer if tracer is not None else get_tracer()
            histogram = reg.histogram(metric, doc, labelnames=labelnames)
            with trc.span(span_name, **labels):
                started = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    histogram.observe(time.perf_counter() - started, **labels)

        return wrapper

    return decorate


@contextmanager
def time_block(
    metric: str,
    help_text: str = "",
    registry: Optional[MetricsRegistry] = None,
    **labels: Any,
):
    """Context-manager form of :func:`timed` for inline blocks."""
    reg = registry if registry is not None else get_metrics()
    histogram = reg.histogram(metric, help_text, labelnames=tuple(sorted(labels)))
    started = time.perf_counter()
    try:
        yield histogram
    finally:
        histogram.observe(time.perf_counter() - started, **labels)
