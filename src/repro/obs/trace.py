"""Hierarchical tracing for the OMQ pipeline.

Governance is observability: a steward must be able to see *what the
system did* to a query — which rewriting phase produced which conjunctive
queries, which wrappers were hit and how long each relational operator
took.  This module is the substrate: a process-local :class:`Tracer`
handing out :class:`Span` context managers that nest, carry tags, and are
delivered to pluggable sinks (an in-memory ring buffer and an append-only
JSONL file) when their root completes.

Zero overhead by default: a disabled tracer's :meth:`Tracer.span` returns
a shared no-op singleton — no allocation, no clock reads — so the
instrumented hot paths (rewriting phases, executor operators, wrapper
fetches) cost one attribute check when tracing is off.

Everything here is standard library only; nothing in :mod:`repro.obs`
imports the rest of the package, so any layer may import it freely.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "RingSink",
    "JsonlSink",
    "NOOP_SPAN",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
]


class Span:
    """One timed, tagged node of a trace tree.

    Use as a context manager obtained from :meth:`Tracer.span`; entering
    starts the clock and pushes the span on the tracer's stack, exiting
    stops it and attaches the span to its parent (or ships the finished
    root to the tracer's sinks).
    """

    __slots__ = (
        "name",
        "tags",
        "children",
        "span_id",
        "parent_id",
        "started_at",
        "duration_s",
        "status",
        "_tracer",
        "_t0",
    )

    def __init__(self, name: str, tags: Dict[str, Any], tracer: "Tracer"):
        self.name = name
        self.tags: Dict[str, Any] = tags
        self.children: List["Span"] = []
        self.span_id: int = 0
        self.parent_id: Optional[int] = None
        self.started_at: float = 0.0
        self.duration_s: Optional[float] = None
        self.status: str = "ok"
        self._tracer = tracer
        self._t0: float = 0.0

    # -- context manager ------------------------------------------------ #

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.tags.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._exit(self)
        return False

    # -- tagging & inspection ------------------------------------------- #

    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; chainable."""
        self.tags[key] = value
        return self

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (0.0 while the span is still open)."""
        return (self.duration_s or 0.0) * 1000.0

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """The first descendant (or self) with ``name``, depth-first."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped rendering of the subtree (for sinks and APIs)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.started_at,
            "duration_ms": round(self.duration_ms, 6),
            "status": self.status,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def tree(self) -> str:
        """ASCII rendering of the span tree with durations and tags."""
        lines: List[str] = []

        def render(span: "Span", prefix: str, connector: str, child_prefix: str):
            tags = " ".join(f"{k}={v}" for k, v in span.tags.items())
            line = f"{prefix}{connector}{span.name}  [{span.duration_ms:.3f}ms]"
            if span.status != "ok":
                line += f"  !{span.status}"
            if tags:
                line += f"  {tags}"
            lines.append(line)
            for index, child in enumerate(span.children):
                last = index == len(span.children) - 1
                render(
                    child,
                    child_prefix,
                    "└─ " if last else "├─ ",
                    child_prefix + ("   " if last else "│  "),
                )

        render(self, "", "", "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} {self.duration_ms:.3f}ms "
            f"children={len(self.children)}>"
        )


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> "_NoopSpan":
        return self


#: The singleton no-op span — the entire cost of tracing-while-disabled.
NOOP_SPAN = _NoopSpan()


class RingSink:
    """In-memory sink keeping the most recent completed root spans."""

    def __init__(self, capacity: int = 256):
        self._ring: deque = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        self._ring.append(span)

    def recent(self, n: int = 10) -> List[Span]:
        """The last ``n`` root spans, oldest first."""
        items = list(self._ring)
        return items[-n:] if n >= 0 else items

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink:
    """Appends one JSON line per completed root span to a file."""

    def __init__(self, path):
        self.path = str(path)

    def emit(self, span: Span) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(span.to_dict(), sort_keys=True, default=str))
            fh.write("\n")


class Tracer:
    """Process-local tracer: a span stack plus sinks for finished roots.

    Not thread-safe by design — the pipeline is single-threaded and the
    paper's interactivity targets are met without locks.  Embedders that
    shard work across threads should give each thread its own tracer.
    """

    def __init__(self, enabled: bool = False, ring_capacity: int = 256):
        self.enabled = enabled
        self.ring = RingSink(ring_capacity)
        self._sinks: List[Any] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, **tags: Any):
        """A new span context manager (the no-op singleton when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(name, tags, self)

    def add_sink(self, sink) -> None:
        """Register an extra sink (``emit(span)``) for finished roots."""
        self._sinks.append(sink)

    # -- span lifecycle (called by Span.__enter__/__exit__) ------------- #

    def _enter(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        span.started_at = time.time()
        self._stack.append(span)
        span._t0 = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span._t0
        # Pop up to and including this span; tolerate mismatched exits so a
        # swallowed exception inside a span cannot corrupt the stack.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.ring.emit(span)
            for sink in self._sinks:
                sink.emit(span)

    # -- inspection ----------------------------------------------------- #

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def recent(self, n: int = 10) -> List[Span]:
        """The last ``n`` completed root spans, oldest first."""
        return self.ring.recent(n)

    def clear(self) -> None:
        """Drop buffered roots and any dangling stack state."""
        self.ring.clear()
        self._stack.clear()


#: The process-local default tracer — disabled until someone opts in.
_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-local tracer used by all instrumented code paths."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-local tracer; returns it for chaining."""
    global _tracer
    _tracer = tracer
    return tracer


def enable_tracing(
    jsonl: Optional[str] = None, ring_capacity: int = 256
) -> Tracer:
    """Install a fresh enabled tracer (optionally mirroring to JSONL)."""
    tracer = Tracer(enabled=True, ring_capacity=ring_capacity)
    if jsonl:
        tracer.add_sink(JsonlSink(jsonl))
    return set_tracer(tracer)


def disable_tracing() -> Tracer:
    """Install a fresh disabled tracer (instrumentation short-circuits)."""
    return set_tracer(Tracer(enabled=False))
