"""Hierarchical, concurrency-safe tracing for the OMQ pipeline.

Governance is observability: a steward must be able to see *what the
system did* to a query — which rewriting phase produced which conjunctive
queries, which wrappers were hit and how long each relational operator
took.  This module is the substrate: a process-local :class:`Tracer`
handing out :class:`Span` context managers that nest, carry tags, and are
delivered to pluggable sinks (an in-memory ring buffer and an append-only
JSONL file) when their root completes.

The current span is tracked through a :mod:`contextvars` variable, not a
mutable stack, so the tracer is safe under the federated fetch pool:
:meth:`~repro.core.mdm.MDM._fetch_wrappers` copies the caller's context
into each worker (``contextvars.copy_context().run``), and the wrapper
fetch spans opened inside the workers parent correctly to the ``execute``
root even when eight fetches overlap.  Every span carries an explicit
``trace_id`` (shared by the whole tree), ``span_id`` and ``parent_id``.

Tracing is designed to stay on in production.  Two mechanisms bound its
cost:

- *zero overhead while disabled*: a disabled tracer's :meth:`Tracer.span`
  returns a shared no-op singleton — no allocation, no clock reads;
- *sampling while enabled*: each new trace is kept with probability
  ``sample_rate``; unsampled traces either record nothing (when no slow
  threshold is set) or are recorded but only shipped to the sinks when
  their root exceeds ``slow_threshold_ms`` (always-on-slow sampling, so
  tail latency is never invisible).  Decisions are counted in the
  ``mdm_traces_sampled_total{decision}`` metric.

Everything here is standard library only; :mod:`repro.obs` imports
nothing from the rest of the package, so any layer may import it freely.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

from .metrics import get_metrics

__all__ = [
    "Span",
    "Tracer",
    "RingSink",
    "JsonlSink",
    "NOOP_SPAN",
    "current_span",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
]


#: The context-local current span: None outside any trace, a :class:`Span`
#: inside a recorded trace, a :class:`_DroppedSpan` inside an unsampled one.
#: Shared across tracers — exactly one process tracer is active at a time,
#: and spans carry their owning tracer so stale entries are ignored.
_current_span: "contextvars.ContextVar[Optional[object]]" = contextvars.ContextVar(
    "mdm_current_span", default=None
)


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def current_span() -> Optional["Span"]:
    """The innermost open *recording* span in this context, if any."""
    span = _current_span.get()
    if isinstance(span, Span) and not span.finished:
        return span
    return None


class Span:
    """One timed, tagged node of a trace tree.

    Use as a context manager obtained from :meth:`Tracer.span`; entering
    starts the clock and installs the span as the context-local current
    span, exiting stops it and attaches the span to its parent (or ships
    the finished root to the tracer's sinks, subject to sampling).
    """

    __slots__ = (
        "name",
        "tags",
        "children",
        "trace_id",
        "span_id",
        "parent_id",
        "started_at",
        "duration_s",
        "status",
        "sampled",
        "decision",
        "_tracer",
        "_parent",
        "_t0",
        "_token",
        "_finished",
        "_lock",
    )

    #: Recording spans contribute to the trace tree (vs the no-op/dropped
    #: stand-ins, whose ``is_recording`` is False).
    is_recording = True

    def __init__(self, name: str, tags: Dict[str, Any], tracer: "Tracer"):
        self.name = name
        self.tags: Dict[str, Any] = tags
        self.children: List["Span"] = []
        self.trace_id: str = ""
        self.span_id: str = _new_span_id()
        self.parent_id: Optional[str] = None
        self.started_at: float = 0.0
        self.duration_s: Optional[float] = None
        self.status: str = "ok"
        #: Probabilistic sampling verdict taken at root creation (children
        #: inherit it); roots may still be *kept* as "slow" when False.
        self.sampled: bool = True
        #: Final sampling decision for a finished root ("sampled" /
        #: "slow" / "dropped"); None for children and open spans.
        self.decision: Optional[str] = None
        self._tracer = tracer
        self._parent: Optional["Span"] = None
        self._t0: float = 0.0
        self._token: Optional[contextvars.Token] = None
        self._finished = False
        # Children may be appended from pool workers concurrently.
        self._lock = threading.Lock()

    # -- context manager ------------------------------------------------ #

    def __enter__(self) -> "Span":
        parent = _current_span.get()
        if (
            isinstance(parent, Span)
            and not parent._finished
            and parent._tracer is self._tracer
        ):
            self._parent = parent
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        elif not self.trace_id:
            self.trace_id = _new_trace_id()
        self._token = _current_span.set(self)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.tags.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._finished = True
        if self._token is not None:
            try:
                _current_span.reset(self._token)
            except ValueError:  # token from another context (defensive)
                _current_span.set(None)
            self._token = None
        parent = self._parent
        if parent is not None and not parent._finished:
            parent._add_child(self)
        else:
            # Root (or orphaned by a mismatched exit): hand to the tracer,
            # which applies the sampling decision and ships to sinks.
            self._tracer._finish_root(self)
        return False

    def _add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    # -- tagging & inspection ------------------------------------------- #

    @property
    def finished(self) -> bool:
        """Whether the span has exited (duration is final)."""
        return self._finished

    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; chainable."""
        self.tags[key] = value
        return self

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (0.0 while the span is still open)."""
        return (self.duration_s or 0.0) * 1000.0

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """The first descendant (or self) with ``name``, depth-first."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped rendering of the subtree (for sinks and APIs)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.started_at,
            "duration_ms": round(self.duration_ms, 6),
            "status": self.status,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def tree(self) -> str:
        """ASCII rendering of the span tree with durations and tags."""
        lines: List[str] = []

        def render(span: "Span", prefix: str, connector: str, child_prefix: str):
            tags = " ".join(f"{k}={v}" for k, v in span.tags.items())
            line = f"{prefix}{connector}{span.name}  [{span.duration_ms:.3f}ms]"
            if span.status != "ok":
                line += f"  !{span.status}"
            if tags:
                line += f"  {tags}"
            lines.append(line)
            for index, child in enumerate(span.children):
                last = index == len(span.children) - 1
                render(
                    child,
                    child_prefix,
                    "└─ " if last else "├─ ",
                    child_prefix + ("   " if last else "│  "),
                )

        render(self, "", "", "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} {self.duration_ms:.3f}ms "
            f"children={len(self.children)}>"
        )


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    is_recording = False
    trace_id: Optional[str] = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> "_NoopSpan":
        return self


#: The singleton no-op span — the entire cost of tracing-while-disabled.
NOOP_SPAN = _NoopSpan()


class _DroppedSpan:
    """Root stand-in for a trace the sampler decided not to record.

    Unlike :data:`NOOP_SPAN` it still owns a ``trace_id`` (so the query
    log keeps a correlation id even for unsampled queries) and installs
    itself as the context-local current span, so descendants — including
    ones opened in pool workers under a copied context — know they belong
    to a dropped trace and short-circuit to the no-op singleton.
    """

    __slots__ = ("trace_id", "_tracer", "_token", "_finished")

    is_recording = False

    def __init__(self, tracer: "Tracer"):
        self.trace_id = _new_trace_id()
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None
        self._finished = False

    def __enter__(self) -> "_DroppedSpan":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._finished = True
        if self._token is not None:
            try:
                _current_span.reset(self._token)
            except ValueError:
                _current_span.set(None)
            self._token = None
        return False

    def set_tag(self, key: str, value: Any) -> "_DroppedSpan":
        return self


class RingSink:
    """In-memory sink keeping the most recent completed root spans."""

    def __init__(self, capacity: int = 256):
        self._ring: deque = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        self._ring.append(span)

    def recent(self, n: int = 10) -> List[Span]:
        """The last ``n`` root spans, oldest first."""
        items = list(self._ring)
        return items[-n:] if n >= 0 else items

    def find_trace(self, trace_id: str) -> Optional[Span]:
        """The buffered root span of ``trace_id``, or None."""
        for span in reversed(list(self._ring)):
            if span.trace_id == trace_id:
                return span
        return None

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink:
    """Appends one JSON line per completed root span to a file.

    The file handle is opened lazily on first emit and kept open (the
    sink may receive roots from pool workers, so writes take a lock);
    call :meth:`close` — or use the sink as a context manager — to flush
    and release it.  Emitting after ``close()`` reopens the file.
    """

    def __init__(self, path):
        self.path = str(path)
        self._fh: Optional[Any] = None
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True, default=str)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _env_sample_rate() -> float:
    return float(os.environ.get("MDM_TRACE_SAMPLE_RATE", "1.0"))


def _env_slow_threshold_ms() -> Optional[float]:
    raw = os.environ.get("MDM_TRACE_SLOW_MS", "").strip()
    return float(raw) if raw else None


class Tracer:
    """Process-local tracer: contextvar span tracking plus root sinks.

    Concurrency-safe by design: the current span lives in a
    :mod:`contextvars` variable (copy the context into worker threads to
    parent their spans correctly), children attach under a per-span lock,
    and span/trace ids are process-unique.  One tracer may therefore be
    shared by the service layer, the fetch pool and background work.

    ``sample_rate`` (0.0–1.0) is the probability a new trace is kept;
    ``slow_threshold_ms`` additionally keeps any unsampled trace whose
    root ran at least that long (and forces unsampled traces to be
    *recorded*, since their duration cannot be known otherwise).  Both
    default from ``MDM_TRACE_SAMPLE_RATE`` / ``MDM_TRACE_SLOW_MS``.
    """

    def __init__(
        self,
        enabled: bool = False,
        ring_capacity: int = 256,
        sample_rate: Optional[float] = None,
        slow_threshold_ms: Optional[float] = "env",  # type: ignore[assignment]
        rng=None,
    ):
        self.enabled = enabled
        self.ring = RingSink(ring_capacity)
        self._sinks: List[Any] = []
        if sample_rate is None:
            sample_rate = _env_sample_rate()
        if slow_threshold_ms == "env":
            slow_threshold_ms = _env_slow_threshold_ms()
        self.configure_sampling(sample_rate, slow_threshold_ms)
        #: Uniform [0,1) source for the sampling coin (injectable so tests
        #: can pin the decision sequence).
        self._rng = rng if rng is not None else random.random

    def configure_sampling(
        self, sample_rate: Optional[float] = None, slow_threshold_ms: Any = "keep"
    ) -> None:
        """Adjust sampling knobs in place (None/"keep" leave a knob as is)."""
        if sample_rate is not None:
            rate = float(sample_rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("sample_rate must be within [0.0, 1.0]")
            self.sample_rate = rate
        if slow_threshold_ms != "keep":
            if slow_threshold_ms is not None:
                slow_threshold_ms = float(slow_threshold_ms)
                if slow_threshold_ms < 0:
                    raise ValueError("slow_threshold_ms must be >= 0")
            self.slow_threshold_ms = slow_threshold_ms

    def span(self, name: str, **tags: Any):
        """A new span context manager.

        Disabled tracer → the shared no-op singleton.  Enabled: a child
        span when a recording span is current in this context; inside a
        dropped trace → the no-op singleton; otherwise a *root*, where
        the sampling coin is flipped — unsampled roots become
        :class:`_DroppedSpan` stand-ins unless a slow threshold demands
        recording them anyway.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = _current_span.get()
        if isinstance(parent, Span):
            if not parent._finished and parent._tracer is self:
                return Span(name, tags, self)
            parent = None
        elif isinstance(parent, _DroppedSpan):
            if not parent._finished and parent._tracer is self:
                return NOOP_SPAN
            parent = None
        # New root: take the probabilistic sampling decision up front.
        sampled = self.sample_rate >= 1.0 or (
            self.sample_rate > 0.0 and self._rng() < self.sample_rate
        )
        if not sampled and self.slow_threshold_ms is None:
            self._count_decision("dropped")
            return _DroppedSpan(self)
        span = Span(name, tags, self)
        span.sampled = sampled
        return span

    def add_sink(self, sink) -> None:
        """Register an extra sink (``emit(span)``) for finished roots."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> bool:
        """Detach a sink registered with :meth:`add_sink`; True if found."""
        try:
            self._sinks.remove(sink)
            return True
        except ValueError:
            return False

    # -- root completion (called by Span.__exit__) ----------------------- #

    def _finish_root(self, span: Span) -> None:
        if span.sampled:
            decision = "sampled"
        elif (
            self.slow_threshold_ms is not None
            and span.duration_ms >= self.slow_threshold_ms
        ):
            decision = "slow"
        else:
            decision = "dropped"
        span.decision = decision
        self._count_decision(decision)
        if decision == "dropped":
            return
        self.ring.emit(span)
        for sink in self._sinks:
            sink.emit(span)

    @staticmethod
    def _count_decision(decision: str) -> None:
        get_metrics().counter(
            "mdm_traces_sampled_total",
            "Trace sampling decisions at root completion.",
            labelnames=("decision",),
        ).inc(decision=decision)

    # -- inspection ----------------------------------------------------- #

    @property
    def current(self) -> Optional[Span]:
        """The innermost open recording span in this context, if any."""
        return current_span()

    def find_trace(self, trace_id: str) -> Optional[Span]:
        """The buffered root span with ``trace_id``, or None."""
        return self.ring.find_trace(trace_id)

    def recent(self, n: int = 10) -> List[Span]:
        """The last ``n`` completed root spans, oldest first."""
        return self.ring.recent(n)

    def clear(self) -> None:
        """Drop buffered roots (and detach this context's current span)."""
        self.ring.clear()
        _current_span.set(None)

    def sampling_config(self) -> Dict[str, Any]:
        """JSON-shaped sampling knobs (service/CLI echoes)."""
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "slow_threshold_ms": self.slow_threshold_ms,
        }


#: The process-local default tracer — disabled until someone opts in.
_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-local tracer used by all instrumented code paths."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-local tracer; returns it for chaining."""
    global _tracer
    _tracer = tracer
    return tracer


def enable_tracing(
    jsonl: Optional[str] = None,
    ring_capacity: int = 256,
    sample_rate: Optional[float] = None,
    slow_threshold_ms: Any = "env",
) -> Tracer:
    """Install a fresh enabled tracer (optionally mirroring to JSONL)."""
    tracer = Tracer(
        enabled=True,
        ring_capacity=ring_capacity,
        sample_rate=sample_rate,
        slow_threshold_ms=slow_threshold_ms,
    )
    if jsonl:
        tracer.add_sink(JsonlSink(jsonl))
    return set_tracer(tracer)


def disable_tracing() -> Tracer:
    """Install a fresh disabled tracer (instrumentation short-circuits)."""
    return set_tracer(Tracer(enabled=False))
