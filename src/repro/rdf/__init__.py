"""Pure-Python RDF substrate (Jena substitute) for the MDM reproduction.

Public surface::

    from repro.rdf import (
        IRI, BNode, Literal, Variable, Triple, Quad,
        Graph, Dataset,
        Namespace, NamespaceManager, RDF, RDFS, OWL, XSD, SC, EX,
        parse_turtle, serialize_turtle,
        parse_trig, serialize_trig,
        parse_ntriples, serialize_ntriples,
        parse_nquads, serialize_nquads,
    )
"""

from .dataset import Dataset
from .graph import Graph
from .namespaces import (
    EX,
    OWL,
    RDF,
    RDFS,
    SC,
    XSD,
    Namespace,
    NamespaceManager,
    default_namespace_manager,
)
from .ntriples import (
    NTriplesParseError,
    parse_nquads,
    parse_ntriples,
    serialize_nquads,
    serialize_ntriples,
)
from .reasoner import (
    instances_of,
    materialize_rdfs,
    same_as_closure,
    subclass_closure,
    subproperty_closure,
    superclass_closure,
    types_of,
)
from .terms import BNode, IRI, Literal, Quad, Term, Triple, Variable
from .trig import parse_trig, serialize_trig
from .turtle import TurtleParseError, parse_turtle, serialize_turtle

__all__ = [
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Term",
    "Triple",
    "Quad",
    "Graph",
    "Dataset",
    "Namespace",
    "NamespaceManager",
    "default_namespace_manager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "SC",
    "EX",
    "parse_turtle",
    "serialize_turtle",
    "TurtleParseError",
    "parse_trig",
    "serialize_trig",
    "parse_ntriples",
    "serialize_ntriples",
    "parse_nquads",
    "serialize_nquads",
    "NTriplesParseError",
    "subclass_closure",
    "superclass_closure",
    "subproperty_closure",
    "same_as_closure",
    "instances_of",
    "types_of",
    "materialize_rdfs",
]
