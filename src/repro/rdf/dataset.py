"""RDF datasets: a default graph plus any number of named graphs.

Named graphs are the mechanism MDM uses to store LAV mappings: each
wrapper's mapping is a named graph whose IRI *is* the wrapper IRI and whose
triples are a subgraph of the global graph (paper §2.3).  The
:class:`Dataset` therefore exposes both a graph-level API (``graph(iri)``)
and a quad-level API (``quads`` / ``add_quad``) used by the TriG and
N-Quads codecs and by SPARQL ``GRAPH`` clauses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from .graph import Graph
from .namespaces import NamespaceManager, default_namespace_manager
from .terms import IRI, Quad, Term, TermPattern, Triple

__all__ = ["Dataset"]

QuadPattern = Tuple[TermPattern, TermPattern, TermPattern, Optional[IRI]]


class Dataset:
    """A collection of one default graph and zero or more named graphs."""

    def __init__(self, namespaces: Optional[NamespaceManager] = None):
        self.namespaces = namespaces if namespaces is not None else default_namespace_manager()
        self._default = Graph(namespaces=self.namespaces)
        self._named: Dict[IRI, Graph] = {}

    # ------------------------------------------------------------------ #
    # graph access
    # ------------------------------------------------------------------ #

    @property
    def default_graph(self) -> Graph:
        """The unnamed default graph."""
        return self._default

    def graph(self, identifier: Optional[IRI] = None, create: bool = True) -> Graph:
        """The graph named ``identifier`` (default graph when ``None``).

        With ``create=True`` (the default) a missing named graph is created
        empty; otherwise :class:`KeyError` is raised.
        """
        if identifier is None:
            return self._default
        if not isinstance(identifier, IRI):
            raise TypeError("named graph identifier must be an IRI")
        existing = self._named.get(identifier)
        if existing is not None:
            return existing
        if not create:
            raise KeyError(f"no named graph {identifier.value!r}")
        fresh = Graph(identifier=identifier, namespaces=self.namespaces)
        self._named[identifier] = fresh
        return fresh

    def has_graph(self, identifier: IRI) -> bool:
        """Whether a named graph with that IRI exists (even if empty)."""
        return identifier in self._named

    def remove_graph(self, identifier: IRI) -> bool:
        """Drop a named graph entirely; True if it existed."""
        return self._named.pop(identifier, None) is not None

    def graph_names(self) -> Iterator[IRI]:
        """Iterate the named-graph IRIs in sorted order."""
        return iter(sorted(self._named, key=lambda iri: iri.value))

    def graphs(self) -> Iterator[Graph]:
        """Iterate named graphs in sorted-IRI order (default graph excluded)."""
        for name in self.graph_names():
            yield self._named[name]

    # ------------------------------------------------------------------ #
    # quad-level API
    # ------------------------------------------------------------------ #

    def add_quad(self, quad: Union[Quad, Tuple[Term, Term, Term, Optional[IRI]]]) -> bool:
        """Insert one quad; returns True if new."""
        s, p, o, g = quad
        return self.graph(g).add((s, p, o))

    def add_quads(self, quads: Iterable[Quad]) -> int:
        """Insert many quads; returns the number actually added."""
        return sum(1 for q in quads if self.add_quad(q))

    def remove_quad(self, quad: Union[Quad, Tuple[Term, Term, Term, Optional[IRI]]]) -> bool:
        """Remove one quad; True if it was present."""
        s, p, o, g = quad
        if g is not None and g not in self._named:
            return False
        return self.graph(g).remove((s, p, o))

    def quads(
        self, pattern: QuadPattern = (None, None, None, None)
    ) -> Iterator[Quad]:
        """Iterate quads matching ``pattern``.

        A ``None`` graph component is a wildcard over the default graph
        *and* every named graph, matching SPARQL dataset semantics for
        ``GRAPH ?g`` plus the default graph.
        """
        s, p, o, g = pattern
        if g is not None:
            if g in self._named:
                for t in self._named[g].triples((s, p, o)):
                    yield Quad(t.subject, t.predicate, t.object, g)
            return
        for t in self._default.triples((s, p, o)):
            yield Quad(t.subject, t.predicate, t.object, None)
        for name in self.graph_names():
            for t in self._named[name].triples((s, p, o)):
                yield Quad(t.subject, t.predicate, t.object, name)

    def graphs_containing(self, triple: Triple) -> Iterator[Optional[IRI]]:
        """Yield the graph names (None for default) that contain ``triple``."""
        if triple in self._default:
            yield None
        for name in self.graph_names():
            if triple in self._named[name]:
                yield name

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #

    def union_graph(self) -> Graph:
        """A fresh graph holding the union of all graphs (default + named)."""
        union = Graph(namespaces=self.namespaces.copy())
        union.add_all(iter(self._default))
        for g in self.graphs():
            union.add_all(iter(g))
        return union

    def __len__(self) -> int:
        """Total number of quads across all graphs."""
        return len(self._default) + sum(len(g) for g in self._named.values())

    def __contains__(self, quad) -> bool:
        s, p, o, g = quad
        if g is None:
            return (s, p, o) in self._default
        target = self._named.get(g)
        return target is not None and (s, p, o) in target

    def copy(self) -> "Dataset":
        """A deep structural copy."""
        clone = Dataset(namespaces=self.namespaces.copy())
        clone._default = self._default.copy()
        clone._named = {name: g.copy() for name, g in self._named.items()}
        return clone

    def clear(self) -> None:
        """Remove every triple and every named graph."""
        self._default.clear()
        self._named.clear()

    def __repr__(self) -> str:
        return (
            f"<Dataset default={len(self._default)} triples, "
            f"{len(self._named)} named graphs, {len(self)} quads>"
        )
