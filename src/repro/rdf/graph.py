"""An indexed, in-memory RDF graph.

:class:`Graph` is the workhorse triple store of the substrate.  It keeps
three nested hash indexes — SPO, POS and OSP — so any triple pattern with
at least one concrete component is answered through a dictionary lookup
rather than a scan.  This is the same indexing strategy Jena's in-memory
model uses and is what keeps MDM's query-rewriting and SPARQL evaluation
interactive on graphs of 10^5 triples.

Patterns use ``None`` as a wildcard::

    graph.triples((None, RDF.type, G.Concept))   # all concepts
    graph.triples((player, None, None))          # everything about player

Set-like operations (union ``|``, intersection ``&``, difference ``-``,
containment, equality as triple sets) make graph manipulation read like
ordinary Python.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

from .namespaces import NamespaceManager, default_namespace_manager
from .terms import IRI, Term, TermPattern, Triple, validate_triple

__all__ = ["Graph"]

_Index = Dict[Term, Dict[Term, Set[Term]]]
TriplePattern = Tuple[TermPattern, TermPattern, TermPattern]


def _index_add(index: _Index, a: Term, b: Term, c: Term) -> bool:
    """Add ``(a, b, c)`` to a nested index; True if it was new."""
    level2 = index.setdefault(a, {})
    level3 = level2.setdefault(b, set())
    if c in level3:
        return False
    level3.add(c)
    return True


def _index_remove(index: _Index, a: Term, b: Term, c: Term) -> bool:
    """Remove ``(a, b, c)`` from a nested index; True if it was present."""
    level2 = index.get(a)
    if level2 is None:
        return False
    level3 = level2.get(b)
    if level3 is None or c not in level3:
        return False
    level3.discard(c)
    if not level3:
        del level2[b]
        if not level2:
            del index[a]
    return True


class Graph:
    """A mutable set of RDF triples with SPO/POS/OSP hash indexes.

    Parameters
    ----------
    identifier:
        Optional IRI naming this graph (used when the graph lives inside a
        :class:`repro.rdf.dataset.Dataset` as a named graph).
    namespaces:
        A :class:`NamespaceManager`; defaults to the standard vocabularies
        plus ``ex:``.
    """

    def __init__(
        self,
        identifier: Optional[IRI] = None,
        namespaces: Optional[NamespaceManager] = None,
    ):
        self.identifier = identifier
        self.namespaces = namespaces if namespaces is not None else default_namespace_manager()
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        """Insert one triple; returns True if it was not already present."""
        s, p, o = triple
        validate_triple(s, p, o)
        if _index_add(self._spo, s, p, o):
            _index_add(self._pos, p, o, s)
            _index_add(self._osp, o, s, p)
            self._size += 1
            return True
        return False

    def add_all(self, triples: Iterable[Union[Triple, Tuple[Term, Term, Term]]]) -> int:
        """Insert many triples; returns the number actually added."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        """Remove one concrete triple; returns True if it was present."""
        s, p, o = triple
        if _index_remove(self._spo, s, p, o):
            _index_remove(self._pos, p, o, s)
            _index_remove(self._osp, o, s, p)
            self._size -= 1
            return True
        return False

    def remove_pattern(self, pattern: TriplePattern) -> int:
        """Remove every triple matching ``pattern``; returns how many."""
        victims = list(self.triples(pattern))
        for triple in victims:
            self.remove(triple)
        return len(victims)

    def clear(self) -> None:
        """Remove every triple."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        for s, level2 in self._spo.items():
            for p, objects in level2.items():
                for o in objects:
                    yield Triple(s, p, o)

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Iterate triples matching ``pattern`` (``None`` = wildcard).

        The most selective index available for the pattern shape is used;
        only the all-wildcard pattern scans everything.
        """
        s, p, o = pattern
        if s is not None:
            level2 = self._spo.get(s)
            if level2 is None:
                return
            if p is not None:
                objects = level2.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            for pred, objects in level2.items():
                if o is not None:
                    if o in objects:
                        yield Triple(s, pred, o)
                else:
                    for obj in objects:
                        yield Triple(s, pred, obj)
            return
        if p is not None:
            level2 = self._pos.get(p)
            if level2 is None:
                return
            if o is not None:
                for subj in level2.get(o, ()):
                    yield Triple(subj, p, o)
                return
            for obj, subjects in level2.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            level2 = self._osp.get(o)
            if level2 is None:
                return
            for subj, predicates in level2.items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        yield from iter(self)

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        """The number of triples matching ``pattern``."""
        s, p, o = pattern
        if s is None and p is None and o is None:
            return self._size
        return sum(1 for _ in self.triples(pattern))

    def subjects(
        self, predicate: TermPattern = None, obj: TermPattern = None
    ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        seen: Set[Term] = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(
        self, subject: TermPattern = None, obj: TermPattern = None
    ) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen: Set[Term] = set()
        for _, p, _ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(
        self, subject: TermPattern = None, predicate: TermPattern = None
    ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen: Set[Term] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def value(
        self, subject: TermPattern = None, predicate: TermPattern = None
    ) -> Optional[Term]:
        """The single object of ``(subject, predicate, ?)`` or None.

        Raises :class:`ValueError` when the pattern matches more than one
        distinct object — use :meth:`objects` for multi-valued properties.
        """
        values = list(self.objects(subject, predicate))
        if not values:
            return None
        if len(values) > 1:
            raise ValueError(
                f"value() is ambiguous: {len(values)} objects for "
                f"({subject}, {predicate})"
            )
        return values[0]

    def estimate(self, pattern: TriplePattern) -> int:
        """Cheap upper-bound cardinality estimate for join ordering.

        Exact for fully concrete or single-wildcard patterns reachable
        through an index level; otherwise falls back to index bucket sizes.
        """
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            return 1 if (s, p, o) in self else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #

    def copy(self) -> "Graph":
        """A structural copy (shares no index state, shares terms)."""
        clone = Graph(identifier=self.identifier, namespaces=self.namespaces.copy())
        clone.add_all(iter(self))
        return clone

    def __or__(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.add_all(iter(other))
        return result

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = Graph(namespaces=self.namespaces.copy())
        result.add_all(t for t in small if t in large)
        return result

    def __sub__(self, other: "Graph") -> "Graph":
        result = Graph(namespaces=self.namespaces.copy())
        result.add_all(t for t in self if t not in other)
        return result

    def __ior__(self, other: "Graph") -> "Graph":
        self.add_all(iter(other))
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(t in other for t in self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self):  # graphs are mutable
        raise TypeError("Graph is unhashable; compare with == or use id()")

    def issubgraph(self, other: "Graph") -> bool:
        """Whether every triple of this graph is in ``other``."""
        return all(t in other for t in self)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def diff(self, other: "Graph") -> Tuple["Graph", "Graph"]:
        """``(only_in_self, only_in_other)`` — a symmetric triple diff.

        Used by governance tooling to show a steward what changed between
        two versions of the global graph (or any metadata graph).
        """
        return self - other, other - self

    def terms(self) -> Set[Term]:
        """All distinct terms appearing in any position."""
        out: Set[Term] = set()
        for s, p, o in self:
            out.add(s)
            out.add(p)
            out.add(o)
        return out

    def nodes(self) -> Set[Term]:
        """All distinct subjects and objects (graph nodes)."""
        out: Set[Term] = set()
        for s, _, o in self:
            out.add(s)
            out.add(o)
        return out

    def qname(self, term: Term) -> str:
        """Human-friendly rendering of ``term`` using bound prefixes."""
        if isinstance(term, IRI):
            compact = self.namespaces.compact(term)
            return compact if compact is not None else term.n3()
        return term.n3()

    def __repr__(self) -> str:
        name = self.identifier.value if self.identifier else "default"
        return f"<Graph {name!r} with {self._size} triples>"
