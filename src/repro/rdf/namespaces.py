"""Namespaces and prefix management for the RDF substrate.

A :class:`Namespace` is a convenience factory for IRIs sharing a common
prefix — ``SC.SportsTeam`` or ``SC["SportsTeam"]`` both yield
``IRI("http://schema.org/SportsTeam")``.  The :class:`NamespaceManager`
maps prefixes to namespaces and is used by the Turtle/TriG serializers and
the SPARQL parser to resolve and compact qualified names (QNames).

The module predeclares the vocabularies MDM uses: ``rdf:``, ``rdfs:``,
``owl:``, ``xsd:``, ``sc:`` (schema.org) and the example prefix ``ex:``
from the paper's motivational use case.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "SC",
    "EX",
    "default_namespace_manager",
]


class Namespace:
    """A factory for IRIs under a common base, e.g. ``Namespace("http://schema.org/")``."""

    __slots__ = ("_base",)

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        """The namespace base IRI string."""
        return self._base

    def term(self, local: str) -> IRI:
        """Return the IRI for ``local`` under this namespace."""
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __contains__(self, iri: object) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"

    def __str__(self) -> str:
        return self._base


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
#: schema.org, reused by the paper for e.g. ``sc:SportsTeam`` and ``sc:identifier``.
SC = Namespace("http://schema.org/")
#: The paper's custom example prefix for the football use case.
EX = Namespace("http://www.essi.upc.edu/example/")

_PREFIX_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")
# Local parts of QNames: permissive PN_LOCAL subset (no dots at the edges).
_LOCAL_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$|^$")


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry.

    Supports QName expansion (``expand("sc:SportsTeam")``) and IRI
    compaction (``compact(IRI(...)) -> "sc:SportsTeam"``), choosing the
    *longest* matching namespace base on compaction so nested namespaces
    behave predictably.
    """

    def __init__(self, bind_defaults: bool = True):
        self._by_prefix: Dict[str, str] = {}
        if bind_defaults:
            self.bind("rdf", RDF)
            self.bind("rdfs", RDFS)
            self.bind("owl", OWL)
            self.bind("xsd", XSD)
            self.bind("sc", SC)

    def bind(self, prefix: str, namespace) -> None:
        """Associate ``prefix`` with ``namespace`` (a Namespace, IRI or str).

        Rebinding an existing prefix replaces it; binding the same pair
        twice is a no-op.
        """
        if not _PREFIX_RE.match(prefix):
            raise ValueError(f"invalid prefix: {prefix!r}")
        if isinstance(namespace, Namespace):
            base = namespace.base
        elif isinstance(namespace, IRI):
            base = namespace.value
        elif isinstance(namespace, str):
            base = namespace
        else:
            raise TypeError("namespace must be Namespace, IRI or str")
        self._by_prefix[prefix] = base

    def namespace(self, prefix: str) -> Optional[Namespace]:
        """The Namespace bound to ``prefix``, or None."""
        base = self._by_prefix.get(prefix)
        return Namespace(base) if base is not None else None

    def prefixes(self) -> Iterator[Tuple[str, str]]:
        """Iterate ``(prefix, base)`` pairs in sorted prefix order."""
        return iter(sorted(self._by_prefix.items()))

    def expand(self, qname: str) -> IRI:
        """Expand a QName like ``"sc:SportsTeam"`` to an :class:`IRI`.

        Raises :class:`KeyError` for an unbound prefix and
        :class:`ValueError` for a string with no colon.
        """
        if ":" not in qname:
            raise ValueError(f"not a QName (missing colon): {qname!r}")
        prefix, local = qname.split(":", 1)
        if prefix not in self._by_prefix:
            raise KeyError(f"unbound prefix: {prefix!r}")
        return IRI(self._by_prefix[prefix] + local)

    def compact(self, iri: IRI) -> Optional[str]:
        """Compact ``iri`` to a QName using the longest matching base.

        Returns ``None`` when no bound namespace is a prefix of the IRI or
        the remainder is not a valid QName local part.
        """
        best: Optional[Tuple[str, str]] = None
        for prefix, base in self._by_prefix.items():
            if iri.value.startswith(base):
                if best is None or len(base) > len(best[1]):
                    best = (prefix, base)
        if best is None:
            return None
        prefix, base = best
        local = iri.value[len(base):]
        if not _LOCAL_RE.match(local) or "/" in local or "#" in local:
            return None
        return f"{prefix}:{local}"

    def copy(self) -> "NamespaceManager":
        """An independent copy of this manager."""
        clone = NamespaceManager(bind_defaults=False)
        clone._by_prefix = dict(self._by_prefix)
        return clone

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __len__(self) -> int:
        return len(self._by_prefix)


def default_namespace_manager() -> NamespaceManager:
    """A manager with the standard vocabularies plus the paper's ``ex:`` prefix."""
    manager = NamespaceManager()
    manager.bind("ex", EX)
    return manager
