"""N-Triples and N-Quads codecs.

The line-oriented formats are used as the lowest common denominator for
persistence, test fixtures and graph diffing.  The parser is strict about
term shapes but tolerant of surrounding whitespace and ``#`` comments.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Optional

from .dataset import Dataset
from .graph import Graph
from .terms import BNode, IRI, Literal, Quad, Term, Triple

__all__ = [
    "serialize_ntriples",
    "parse_ntriples",
    "serialize_nquads",
    "parse_nquads",
    "NTriplesParseError",
]


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples / N-Quads input, with line context."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to canonical N-Triples (sorted for determinism)."""
    lines = sorted(t.n3() for t in triples)
    return "\n".join(lines) + ("\n" if lines else "")


def serialize_nquads(quads: Iterable[Quad]) -> str:
    """Serialize quads to canonical N-Quads (sorted for determinism)."""
    lines = sorted(q.n3() for q in quads)
    return "\n".join(lines) + ("\n" if lines else "")


_IRI_RE = re.compile(r"<([^<>\"\s]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_][A-Za-z0-9_.-]*)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'  # lexical form with escapes
    r"(?:\^\^<([^<>\"\s]*)>|@([A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*))?"
)

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "b": "\b",
    "f": "\f",
    "'": "'",
}


def unescape_string(raw: str) -> str:
    """Resolve N-Triples string escapes including ``\\uXXXX``/``\\UXXXXXXXX``."""
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(raw):
            raise ValueError("dangling backslash in literal")
        nxt = raw[i + 1]
        if nxt in _ESCAPES:
            out.append(_ESCAPES[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(raw[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(raw[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValueError(f"unknown escape \\{nxt}")
    return "".join(out)


def _parse_term(text: str, pos: int, line_number: int, line: str):
    """Parse one term starting at ``pos``; returns ``(term, next_pos)``."""
    while pos < len(text) and text[pos] in " \t":
        pos += 1
    if pos >= len(text):
        raise NTriplesParseError("unexpected end of statement", line_number, line)
    ch = text[pos]
    if ch == "<":
        m = _IRI_RE.match(text, pos)
        if not m:
            raise NTriplesParseError("malformed IRI", line_number, line)
        return IRI(m.group(1)), m.end()
    if ch == "_":
        m = _BNODE_RE.match(text, pos)
        if not m:
            raise NTriplesParseError("malformed blank node", line_number, line)
        return BNode(m.group(1)), m.end()
    if ch == '"':
        m = _LITERAL_RE.match(text, pos)
        if not m:
            raise NTriplesParseError("malformed literal", line_number, line)
        lexical = unescape_string(m.group(1))
        datatype, lang = m.group(2), m.group(3)
        if lang is not None:
            return Literal(lexical, lang=lang), m.end()
        if datatype is not None:
            return Literal(lexical, datatype=datatype), m.end()
        return Literal(lexical), m.end()
    raise NTriplesParseError(f"unexpected character {ch!r}", line_number, line)


def _parse_statement_terms(
    line: str, line_number: int, max_terms: int
) -> List[Term]:
    """Parse up to ``max_terms`` terms followed by the terminating dot."""
    terms: List[Term] = []
    pos = 0
    while True:
        while pos < len(line) and line[pos] in " \t":
            pos += 1
        if pos < len(line) and line[pos] == ".":
            pos += 1
            remainder = line[pos:].strip()
            if remainder and not remainder.startswith("#"):
                raise NTriplesParseError("content after '.'", line_number, line)
            break
        if len(terms) >= max_terms:
            raise NTriplesParseError("too many terms in statement", line_number, line)
        term, pos = _parse_term(line, pos, line_number, line)
        terms.append(term)
    return terms


def parse_ntriples(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse N-Triples ``text`` into ``graph`` (a fresh one by default)."""
    target = graph if graph is not None else Graph()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        terms = _parse_statement_terms(line, number, max_terms=3)
        if len(terms) != 3:
            raise NTriplesParseError(
                f"expected 3 terms, got {len(terms)}", number, raw
            )
        target.add((terms[0], terms[1], terms[2]))
    return target


def parse_nquads(text: str, dataset: Optional[Dataset] = None) -> Dataset:
    """Parse N-Quads ``text`` into ``dataset`` (a fresh one by default)."""
    target = dataset if dataset is not None else Dataset()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        terms = _parse_statement_terms(line, number, max_terms=4)
        if len(terms) == 3:
            target.add_quad(Quad(terms[0], terms[1], terms[2], None))
        elif len(terms) == 4:
            if not isinstance(terms[3], IRI):
                raise NTriplesParseError("graph label must be an IRI", number, raw)
            target.add_quad(Quad(terms[0], terms[1], terms[2], terms[3]))
        else:
            raise NTriplesParseError(
                f"expected 3 or 4 terms, got {len(terms)}", number, raw
            )
    return target


def graph_to_nquads(dataset: Dataset) -> Iterator[Quad]:
    """Flatten a dataset into quads (default graph first, then named)."""
    yield from dataset.quads()
