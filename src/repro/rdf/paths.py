"""Graph-traversal helpers over RDF graphs.

These utilities treat an RDF graph as a (directed or undirected) labelled
graph of subject/object nodes.  MDM uses them for:

- connectivity checks when validating walks and LAV named graphs (an
  analyst's contour, projected onto the global graph, must be connected);
- neighbourhood expansion in the query-expansion phase of rewriting;
- shortest paths for user feedback ("these two concepts are linked via…").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .graph import Graph
from .terms import Literal, Term

__all__ = [
    "neighbours",
    "is_connected",
    "connected_components",
    "shortest_path",
    "edge_induced_subgraph_nodes",
]

EdgeFilter = Callable[[Term, Term, Term], bool]


def neighbours(
    graph: Graph,
    node: Term,
    undirected: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
    include_literals: bool = False,
) -> Set[Term]:
    """Nodes adjacent to ``node``; literals excluded unless requested."""
    out: Set[Term] = set()
    for s, p, o in graph.triples((node, None, None)):
        if edge_filter is not None and not edge_filter(s, p, o):
            continue
        if include_literals or not isinstance(o, Literal):
            out.add(o)
    if undirected:
        for s, p, o in graph.triples((None, None, node)):
            if edge_filter is not None and not edge_filter(s, p, o):
                continue
            out.add(s)
    out.discard(node)
    return out


def _node_universe(graph: Graph, include_literals: bool) -> Set[Term]:
    nodes: Set[Term] = set()
    for s, _, o in graph:
        nodes.add(s)
        if include_literals or not isinstance(o, Literal):
            nodes.add(o)
    return nodes


def connected_components(
    graph: Graph, include_literals: bool = False
) -> List[Set[Term]]:
    """The undirected connected components of the graph's nodes."""
    universe = _node_universe(graph, include_literals)
    remaining = set(universe)
    components: List[Set[Term]] = []
    while remaining:
        start = next(iter(remaining))
        component: Set[Term] = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for nxt in neighbours(
                graph, node, undirected=True, include_literals=include_literals
            ):
                if nxt in remaining and nxt not in component:
                    component.add(nxt)
                    frontier.append(nxt)
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph, include_literals: bool = False) -> bool:
    """True for the empty graph or a graph with exactly one component."""
    return len(connected_components(graph, include_literals)) <= 1


def shortest_path(
    graph: Graph,
    source: Term,
    target: Term,
    undirected: bool = True,
) -> Optional[List[Term]]:
    """BFS shortest node path from ``source`` to ``target`` or None."""
    if source == target:
        return [source]
    predecessor: Dict[Term, Term] = {}
    frontier = deque([source])
    visited: Set[Term] = {source}
    while frontier:
        node = frontier.popleft()
        for nxt in neighbours(graph, node, undirected=undirected):
            if nxt in visited:
                continue
            predecessor[nxt] = node
            if nxt == target:
                path = [target]
                while path[-1] != source:
                    path.append(predecessor[path[-1]])
                path.reverse()
                return path
            visited.add(nxt)
            frontier.append(nxt)
    return None


def edge_induced_subgraph_nodes(triples: Iterable[Tuple[Term, Term, Term]]) -> Set[Term]:
    """Subject and object nodes touched by an edge set (predicates excluded)."""
    nodes: Set[Term] = set()
    for s, _, o in triples:
        nodes.add(s)
        nodes.add(o)
    return nodes
