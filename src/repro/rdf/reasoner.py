"""Lightweight RDFS/OWL reasoning used by the MDM metamodel.

MDM does not require a full description-logic reasoner — that is precisely
the point of the vocabulary-based approach (paper §1).  What it does rely
on is a small, well-defined set of entailments:

- ``rdfs:subClassOf`` transitivity and type propagation (taxonomies of
  concepts and of features, in particular the ``rdfs:subClassOf
  sc:identifier`` marker that gates joins),
- ``rdfs:subPropertyOf`` transitivity,
- ``rdfs:domain`` / ``rdfs:range`` type inference,
- ``owl:sameAs`` symmetric-transitive closure (attribute-to-feature
  links in LAV mappings).

Both *materialization* (forward chaining into the graph) and on-demand
closure queries are provided; MDM uses the on-demand form so the stored
graphs stay exactly what the steward asserted.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from .graph import Graph
from .namespaces import OWL, RDF, RDFS
from .terms import IRI, Term, Triple

__all__ = [
    "subclass_closure",
    "superclass_closure",
    "subproperty_closure",
    "same_as_closure",
    "instances_of",
    "types_of",
    "materialize_rdfs",
]


def _reachable(graph: Graph, start: Term, predicate: IRI, forward: bool) -> Set[Term]:
    """Terms reachable from ``start`` over ``predicate`` edges (reflexive)."""
    seen: Set[Term] = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if forward:
            neighbours = graph.objects(node, predicate)
        else:
            neighbours = graph.subjects(predicate, node)
        for nxt in neighbours:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def superclass_closure(graph: Graph, cls: Term) -> Set[Term]:
    """``cls`` plus every direct/indirect superclass (rdfs:subClassOf*)."""
    return _reachable(graph, cls, RDFS.subClassOf, forward=True)


def subclass_closure(graph: Graph, cls: Term) -> Set[Term]:
    """``cls`` plus every direct/indirect subclass."""
    return _reachable(graph, cls, RDFS.subClassOf, forward=False)


def subproperty_closure(graph: Graph, prop: Term) -> Set[Term]:
    """``prop`` plus every direct/indirect subproperty."""
    return _reachable(graph, prop, RDFS.subPropertyOf, forward=False)


def same_as_closure(graph: Graph, term: Term) -> Set[Term]:
    """The owl:sameAs equivalence class of ``term`` (symmetric-transitive)."""
    seen: Set[Term] = {term}
    frontier = [term]
    while frontier:
        node = frontier.pop()
        for nxt in graph.objects(node, OWL.sameAs):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
        for nxt in graph.subjects(OWL.sameAs, node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def types_of(graph: Graph, node: Term) -> Set[Term]:
    """All types of ``node`` under RDFS semantics (asserted + inherited)."""
    out: Set[Term] = set()
    for asserted in graph.objects(node, RDF.type):
        out |= superclass_closure(graph, asserted)
    return out


def instances_of(graph: Graph, cls: Term) -> Set[Term]:
    """All instances of ``cls`` including instances of its subclasses."""
    out: Set[Term] = set()
    for sub in subclass_closure(graph, cls):
        out.update(graph.subjects(RDF.type, sub))
    return out


def _transitive_pairs(graph: Graph, predicate: IRI) -> Iterable[Triple]:
    """New triples closing ``predicate`` transitively."""
    adjacency: Dict[Term, Set[Term]] = {}
    for s, _, o in graph.triples((None, predicate, None)):
        adjacency.setdefault(s, set()).add(o)
    for start in list(adjacency):
        reachable = _reachable(graph, start, predicate, forward=True)
        for target in reachable:
            if target != start:
                yield Triple(start, predicate, target)


def materialize_rdfs(graph: Graph, max_rounds: int = 50) -> int:
    """Forward-chain the RDFS rules into ``graph``; returns triples added.

    Rules applied to fixpoint: subClassOf/subPropertyOf transitivity, type
    propagation along subClassOf, property propagation along
    subPropertyOf, and domain/range typing.  ``max_rounds`` bounds the
    fixpoint loop defensively (each round adds at least one triple or
    stops, so the bound is never hit on consistent inputs).
    """
    total_added = 0
    for _ in range(max_rounds):
        new_triples: Set[Triple] = set()
        new_triples.update(
            t for t in _transitive_pairs(graph, RDFS.subClassOf) if t not in graph
        )
        new_triples.update(
            t for t in _transitive_pairs(graph, RDFS.subPropertyOf) if t not in graph
        )
        # rdf:type propagation upward through subClassOf.
        for sub, _, sup in graph.triples((None, RDFS.subClassOf, None)):
            for instance in graph.subjects(RDF.type, sub):
                candidate = Triple(instance, RDF.type, sup)
                if candidate not in graph:
                    new_triples.add(candidate)
        # statement propagation upward through subPropertyOf.
        for sub_p, _, sup_p in graph.triples((None, RDFS.subPropertyOf, None)):
            if not isinstance(sup_p, IRI):
                continue
            for s, _, o in graph.triples((None, sub_p, None)):
                candidate = Triple(s, sup_p, o)
                if candidate not in graph:
                    new_triples.add(candidate)
        # domain / range typing.
        for prop, _, cls in graph.triples((None, RDFS.domain, None)):
            if not isinstance(prop, IRI):
                continue
            for s, _, _o in graph.triples((None, prop, None)):
                candidate = Triple(s, RDF.type, cls)
                if candidate not in graph:
                    new_triples.add(candidate)
        for prop, _, cls in graph.triples((None, RDFS.range, None)):
            if not isinstance(prop, IRI):
                continue
            for _s, _, o in graph.triples((None, prop, None)):
                if isinstance(o, (IRI,)) or o.__class__.__name__ == "BNode":
                    candidate = Triple(o, RDF.type, cls)
                    if candidate not in graph:
                        new_triples.add(candidate)
        if not new_triples:
            break
        for t in new_triples:
            graph.add(t)
        total_added += len(new_triples)
    return total_added
