"""RDF term model: IRIs, blank nodes, literals, variables, triples and quads.

This module is the foundation of the :mod:`repro.rdf` substrate, the
pure-Python replacement for Apache Jena used by the original MDM system.
All terms are immutable, hashable value objects so they can live in the
hash-indexed triple store (:mod:`repro.rdf.graph`) and in SPARQL solution
bindings without copying.

The type hierarchy mirrors the RDF 1.1 abstract syntax:

``Term``
    abstract base of everything that can appear in a triple.
``IRI``
    an absolute or relative IRI reference.
``BNode``
    a blank node with a (locally unique) label.
``Literal``
    a lexical form plus optional datatype IRI or language tag.
``Variable``
    a SPARQL query variable (never appears in stored triples, only in
    patterns).

Plus the two statement shapes:

``Triple``
    ``(subject, predicate, object)``.
``Quad``
    a triple plus the named graph it belongs to (``graph is None`` for the
    default graph).
"""

from __future__ import annotations

import itertools
import re
import threading
from decimal import Decimal, InvalidOperation
from typing import Any, NamedTuple, Optional, Union

__all__ = [
    "Term",
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Triple",
    "Quad",
    "TermPattern",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "RDF_LANGSTRING",
]

_XSD = "http://www.w3.org/2001/XMLSchema#"


class Term:
    """Abstract base class for all RDF terms.

    Concrete subclasses are :class:`IRI`, :class:`BNode`, :class:`Literal`
    and :class:`Variable`.  The class exists mainly for ``isinstance``
    checks and documentation; it carries no state.
    """

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples / Turtle serialization of this term."""
        raise NotImplementedError

    @property
    def is_concrete(self) -> bool:
        """Whether the term may be stored in a graph (i.e. not a variable)."""
        return True


class IRI(Term):
    """An IRI reference, e.g. ``IRI("http://schema.org/SportsTeam")``.

    Equality and hashing are by string value, so two ``IRI`` objects built
    from the same string are interchangeable.
    """

    __slots__ = ("_value",)

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must be non-empty")
        if any(c in value for c in ("<", ">", '"', " ", "\n", "\t")):
            raise ValueError(f"invalid character in IRI: {value!r}")
        self._value = value

    @property
    def value(self) -> str:
        """The IRI string."""
        return self._value

    def n3(self) -> str:
        return f"<{self._value}>"

    def local_name(self) -> str:
        """Heuristic local name: the part after the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self._value:
                tail = self._value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self._value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("IRI", self._value))

    def __repr__(self) -> str:
        return f"IRI({self._value!r})"

    def __str__(self) -> str:
        return self._value

    def __lt__(self, other: "Term") -> bool:
        return _term_sort_key(self) < _term_sort_key(other)


_bnode_counter = itertools.count()
_bnode_lock = threading.Lock()

_BNODE_LABEL_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")


class BNode(Term):
    """A blank node.

    ``BNode()`` mints a fresh process-unique label; ``BNode("b0")`` wraps an
    explicit label (used by the parsers).  Labels are compared textually, so
    blank-node identity is per-label, matching how a single parsed document
    behaves.
    """

    __slots__ = ("_label",)

    def __init__(self, label: Optional[str] = None):
        if label is None:
            with _bnode_lock:
                label = f"b{next(_bnode_counter)}"
        if not isinstance(label, str):
            raise TypeError("BNode label must be str")
        if not _BNODE_LABEL_RE.match(label):
            raise ValueError(f"invalid blank node label: {label!r}")
        self._label = label

    @property
    def label(self) -> str:
        """The blank node label (without the ``_:`` prefix)."""
        return self._label

    def n3(self) -> str:
        return f"_:{self._label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BNode) and other._label == self._label

    def __hash__(self) -> int:
        return hash(("BNode", self._label))

    def __repr__(self) -> str:
        return f"BNode({self._label!r})"

    def __str__(self) -> str:
        return f"_:{self._label}"

    def __lt__(self, other: "Term") -> bool:
        return _term_sort_key(self) < _term_sort_key(other)


XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        _XSD + "float",
        _XSD + "long",
        _XSD + "int",
        _XSD + "short",
        _XSD + "byte",
        _XSD + "nonNegativeInteger",
        _XSD + "positiveInteger",
        _XSD + "unsignedLong",
        _XSD + "unsignedInt",
    }
)

_LANG_TAG_RE = re.compile(r"^[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*$")


class Literal(Term):
    """An RDF literal: a lexical form with a datatype or language tag.

    Construction accepts either a string lexical form (with optional
    ``datatype`` / ``lang``) or a native Python value, whose datatype is
    inferred:

    >>> Literal(42).datatype
    'http://www.w3.org/2001/XMLSchema#integer'
    >>> Literal("hola", lang="es").language
    'es'

    ``to_python()`` converts back to the closest native type.
    """

    __slots__ = ("_lexical", "_datatype", "_language")

    def __init__(
        self,
        value: Union[str, int, float, bool, Decimal],
        datatype: Optional[str] = None,
        lang: Optional[str] = None,
    ):
        if datatype is not None and lang is not None:
            raise ValueError("a literal cannot have both a datatype and a language tag")
        if isinstance(datatype, IRI):
            datatype = datatype.value
        if isinstance(value, bool):  # bool before int: bool is an int subclass
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, Decimal):
            lexical = str(value)
            datatype = datatype or XSD_DECIMAL
        elif isinstance(value, str):
            lexical = value
        else:
            raise TypeError(f"unsupported literal value type: {type(value).__name__}")

        if lang is not None:
            if not _LANG_TAG_RE.match(lang):
                raise ValueError(f"invalid language tag: {lang!r}")
            self._language: Optional[str] = lang.lower()
            self._datatype = RDF_LANGSTRING
        else:
            self._language = None
            self._datatype = datatype or XSD_STRING
        self._lexical = lexical

    @property
    def lexical(self) -> str:
        """The lexical form, e.g. ``"170.18"``."""
        return self._lexical

    @property
    def datatype(self) -> str:
        """The datatype IRI string (``xsd:string`` when untyped)."""
        return self._datatype

    @property
    def language(self) -> Optional[str]:
        """The language tag (lowercased) or ``None``."""
        return self._language

    @property
    def is_numeric(self) -> bool:
        """Whether the datatype is one of the XSD numeric types."""
        return self._datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Any:
        """Convert to a native Python value; falls back to the lexical form.

        Invalid lexical forms for a numeric/boolean datatype degrade
        gracefully to the raw string rather than raising, mirroring how RDF
        stores treat ill-typed literals as opaque.
        """
        dt = self._datatype
        lex = self._lexical
        try:
            if dt == XSD_INTEGER or dt in _NUMERIC_DATATYPES and dt not in (
                XSD_DECIMAL,
                XSD_DOUBLE,
                _XSD + "float",
            ):
                return int(lex)
            if dt in (XSD_DOUBLE, _XSD + "float"):
                return float(lex)
            if dt == XSD_DECIMAL:
                return Decimal(lex)
            if dt == XSD_BOOLEAN:
                if lex in ("true", "1"):
                    return True
                if lex in ("false", "0"):
                    return False
                return lex
        except (ValueError, InvalidOperation):
            return lex
        return lex

    def n3(self) -> str:
        escaped = (
            self._lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # Remaining control characters and the exotic Unicode line breaks
        # (NEL, LS, PS, VT, FF -- all split by str.splitlines) must be
        # \\uXXXX-escaped so the line-oriented codecs stay line-oriented.
        escaped = "".join(
            f"\\u{ord(ch):04X}"
            if ord(ch) < 0x20 or ord(ch) in (0x85, 0x2028, 0x2029)
            else ch
            for ch in escaped
        )
        body = f'"{escaped}"'
        if self._language is not None:
            return f"{body}@{self._language}"
        if self._datatype != XSD_STRING:
            return f"{body}^^<{self._datatype}>"
        return body

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other._lexical == self._lexical
            and other._datatype == self._datatype
            and other._language == self._language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self._lexical, self._datatype, self._language))

    def __repr__(self) -> str:
        if self._language:
            return f"Literal({self._lexical!r}, lang={self._language!r})"
        if self._datatype != XSD_STRING:
            return f"Literal({self._lexical!r}, datatype={self._datatype!r})"
        return f"Literal({self._lexical!r})"

    def __str__(self) -> str:
        return self._lexical

    def __lt__(self, other: "Term") -> bool:
        return _term_sort_key(self) < _term_sort_key(other)


_VARIABLE_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Variable(Term):
    """A SPARQL variable such as ``?playerName``.

    Variables are *not* concrete: they may appear in triple patterns and
    query ASTs but never inside a stored :class:`Triple`.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not _VARIABLE_NAME_RE.match(name):
            raise ValueError(f"invalid variable name: {name!r}")
        self._name = name

    @property
    def name(self) -> str:
        """The variable name without the leading ``?``."""
        return self._name

    @property
    def is_concrete(self) -> bool:
        return False

    def n3(self) -> str:
        return f"?{self._name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other._name == self._name

    def __hash__(self) -> int:
        return hash(("Variable", self._name))

    def __repr__(self) -> str:
        return f"Variable({self._name!r})"

    def __str__(self) -> str:
        return f"?{self._name}"

    def __lt__(self, other: "Term") -> bool:
        return _term_sort_key(self) < _term_sort_key(other)


def _term_sort_key(term: Term) -> tuple:
    """Total order over terms: BNode < IRI < Literal < Variable, then text."""
    if isinstance(term, BNode):
        return (0, term.label)
    if isinstance(term, IRI):
        return (1, term.value)
    if isinstance(term, Literal):
        return (2, term.lexical, term.datatype, term.language or "")
    if isinstance(term, Variable):
        return (3, term.name)
    raise TypeError(f"not a Term: {term!r}")


#: A term or ``None`` wildcard, as accepted by graph pattern matching.
TermPattern = Optional[Term]


class Triple(NamedTuple):
    """An RDF statement ``(subject, predicate, object)``.

    Being a ``NamedTuple`` it unpacks naturally::

        for s, p, o in graph:
            ...
    """

    subject: Term
    predicate: Term
    object: Term

    def n3(self) -> str:
        """N-Triples serialization (without the trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def is_concrete(self) -> bool:
        """True when no component is a :class:`Variable`."""
        return (
            self.subject.is_concrete
            and self.predicate.is_concrete
            and self.object.is_concrete
        )

    def variables(self) -> set:
        """The set of :class:`Variable` components (possibly empty)."""
        return {t for t in self if isinstance(t, Variable)}


class Quad(NamedTuple):
    """A triple in a named graph; ``graph is None`` means the default graph."""

    subject: Term
    predicate: Term
    object: Term
    graph: Optional[IRI]

    @property
    def triple(self) -> Triple:
        """The graph-less view of this quad."""
        return Triple(self.subject, self.predicate, self.object)

    def n3(self) -> str:
        """N-Quads serialization (without the trailing newline)."""
        parts = [self.subject.n3(), self.predicate.n3(), self.object.n3()]
        if self.graph is not None:
            parts.append(self.graph.n3())
        return " ".join(parts) + " ."


def validate_triple(subject: Term, predicate: Term, obj: Term) -> Triple:
    """Check RDF well-formedness and return the :class:`Triple`.

    Subjects must be IRIs or blank nodes, predicates IRIs, and objects any
    concrete term.  Raises :class:`TypeError` otherwise.
    """
    if not isinstance(subject, (IRI, BNode)):
        raise TypeError(f"triple subject must be IRI or BNode, got {subject!r}")
    if not isinstance(predicate, IRI):
        raise TypeError(f"triple predicate must be IRI, got {predicate!r}")
    if not isinstance(obj, (IRI, BNode, Literal)):
        raise TypeError(f"triple object must be IRI, BNode or Literal, got {obj!r}")
    return Triple(subject, predicate, obj)
