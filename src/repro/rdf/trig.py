"""TriG codec: Turtle extended with named graph blocks.

TriG is the persistence format for MDM datasets (the substitute for Jena
TDB): the default graph plus one ``<graphIRI> { ... }`` block per named
graph.  Since LAV mappings are named graphs whose IRI is the wrapper IRI
(paper §2.3), a TriG snapshot captures the entire integration state.

Supported TriG fragment::

    @prefix ex: <...> .
    ex:s ex:p ex:o .                 # default graph
    GRAPH <http://.../wrapper1> {    # or bare  <...> { ... }
        ex:a ex:b ex:c .
    }
"""

from __future__ import annotations

from typing import List, Optional

from .dataset import Dataset
from .terms import IRI
from .turtle import TurtleParser, serialize_turtle

__all__ = ["parse_trig", "serialize_trig"]


class _TriGParser(TurtleParser):
    """Extends the Turtle parser with graph blocks writing into a Dataset."""

    def __init__(self, text: str, dataset: Optional[Dataset] = None):
        self.dataset = dataset if dataset is not None else Dataset()
        super().__init__(text, self.dataset.default_graph)
        # Directives must update the dataset-wide namespace manager, which
        # the default graph already shares.

    def parse_dataset(self) -> Dataset:
        while self.tokens.peek().kind != "EOF":
            token = self.tokens.peek()
            if token.kind == "KEYWORD" and token.value.lower() in (
                "@prefix",
                "prefix",
                "@base",
                "base",
            ):
                self._parse_directive()
                continue
            if token.kind == "KEYWORD" and token.value.upper() == "GRAPH":
                self.tokens.next()
                self._parse_graph_block()
                continue
            # A bare "<iri> {" also opens a graph block.
            if token.kind in ("IRIREF", "QNAME"):
                brace = self.tokens.peek(1)
                if brace.kind == "PUNCT" and brace.value == "{":
                    self._parse_graph_block()
                    continue
            self.parse_statement()
        return self.dataset

    def _parse_graph_block(self) -> None:
        name_term = self.parse_term(as_subject=True)
        if not isinstance(name_term, IRI):
            raise self.tokens.error("graph name must be an IRI")
        self.tokens.expect("PUNCT", "{")
        outer = self.graph
        self.graph = self.dataset.graph(name_term)
        try:
            while not (
                self.tokens.peek().kind == "PUNCT" and self.tokens.peek().value == "}"
            ):
                subject = self.parse_term(as_subject=True)
                self._parse_predicate_object_list(subject)
                nxt = self.tokens.peek()
                if nxt.kind == "PUNCT" and nxt.value == ".":
                    self.tokens.next()
        finally:
            self.graph = outer
        self.tokens.expect("PUNCT", "}")


def parse_trig(text: str, dataset: Optional[Dataset] = None) -> Dataset:
    """Parse a TriG document into ``dataset`` (a fresh one by default)."""
    return _TriGParser(text, dataset).parse_dataset()


def serialize_trig(dataset: Dataset) -> str:
    """Serialize ``dataset`` as deterministic TriG.

    Prefixes are emitted once at the top; the default graph is serialized
    first, followed by each named graph block in sorted-IRI order.
    """
    parts: List[str] = []
    prefix_lines = [
        f"@prefix {prefix}: <{base}> ."
        for prefix, base in dataset.namespaces.prefixes()
    ]
    if prefix_lines:
        parts.append("\n".join(prefix_lines))
    default_body = serialize_turtle(dataset.default_graph, include_prefixes=False)
    if default_body.strip():
        parts.append(default_body.rstrip())
    for name in dataset.graph_names():
        graph = dataset.graph(name)
        body = serialize_turtle(graph, include_prefixes=False)
        indented = "\n".join(
            "    " + line if line else "" for line in body.rstrip().split("\n")
        )
        parts.append(f"{name.n3()} {{\n{indented}\n}}")
    return "\n\n".join(parts) + ("\n" if parts else "")
