"""Turtle codec: tokenizer, recursive-descent parser and pretty serializer.

The supported fragment covers everything MDM itself emits and consumes:

- ``@prefix`` / SPARQL-style ``PREFIX`` directives and ``@base``
- IRIs, QNames, blank node labels and anonymous ``[...]`` nodes
- literals with datatype (``^^``), language tags, and the numeric /
  boolean shorthands
- ``a`` for ``rdf:type``
- predicate-object lists (``;``) and object lists (``,``)

RDF collections ``( ... )`` are parsed into the standard
``rdf:first``/``rdf:rest`` linked list.

The serializer groups triples by subject, uses ``;``/``,`` grouping and
compacts IRIs against the graph's namespace manager, producing stable,
diff-friendly output (subjects and predicates sorted).
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from .graph import Graph
from .namespaces import RDF, NamespaceManager
from .terms import BNode, IRI, Literal, Term, XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER
from .ntriples import unescape_string

__all__ = ["parse_turtle", "serialize_turtle", "TurtleParseError", "Tokenizer", "Token"]


class TurtleParseError(ValueError):
    """Raised on malformed Turtle/TriG input, with position context."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class Token(NamedTuple):
    """One lexical token: ``kind`` in the set below, plus source position."""

    kind: str
    value: str
    line: int
    column: int


_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("IRIREF", r"<[^<>\"\s{}|^`\\]*>"),
    # Longest literal openers first.
    ("STRING_LONG", r'"""(?:[^"\\]|\\.|"(?!""))*"""' + r"|'''(?:[^'\\]|\\.|'(?!''))*'''"),
    ("STRING", r'"(?:[^"\\\n]|\\.)*"' + r"|'(?:[^'\\\n]|\\.)*'"),
    ("BNODE", r"_:[A-Za-z0-9_][A-Za-z0-9_.-]*"),
    ("LANGTAG", r"@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*"),
    ("DOUBLE", r"[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+)"),
    ("DECIMAL", r"[+-]?\d*\.\d+"),
    ("INTEGER", r"[+-]?\d+"),
    ("HATHAT", r"\^\^"),
    ("QNAME", r"(?:[A-Za-z][A-Za-z0-9_-]*)?:(?:[A-Za-z0-9_](?:[A-Za-z0-9_.-]*[A-Za-z0-9_-])?)?"),
    ("KEYWORD", r"@?[A-Za-z][A-Za-z0-9_]*"),
    ("PUNCT", r"[.;,\[\]\(\)\{\}]"),
]
_MASTER_RE = re.compile("|".join(f"(?P<{k}>{p})" for k, p in _TOKEN_SPEC))


class Tokenizer:
    """Turns Turtle/TriG source into a peekable token stream."""

    def __init__(self, text: str):
        self._tokens: List[Token] = []
        line, line_start = 1, 0
        pos = 0
        while pos < len(text):
            match = _MASTER_RE.match(text, pos)
            if match is None:
                raise TurtleParseError(
                    f"unexpected character {text[pos]!r}", line, pos - line_start + 1
                )
            kind = match.lastgroup or ""
            value = match.group()
            # "@prefix"/"@base" lex like language tags; re-kind them.
            if kind == "LANGTAG" and value.lower() in ("@prefix", "@base"):
                kind = "KEYWORD"
            if kind not in ("WS", "COMMENT"):
                self._tokens.append(Token(kind, value, line, pos - line_start + 1))
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rfind("\n") + 1
            pos = match.end()
        self._index = 0
        self._eof = Token("EOF", "", line, pos - line_start + 1)

    def peek(self, ahead: int = 0) -> Token:
        """The token ``ahead`` positions from the cursor (EOF beyond end)."""
        index = self._index + ahead
        return self._tokens[index] if index < len(self._tokens) else self._eof

    def next(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        """Consume a token of ``kind`` (and ``value`` if given) or raise."""
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = f"{kind} {value!r}" if value else kind
            raise TurtleParseError(
                f"expected {wanted}, got {token.kind} {token.value!r}",
                token.line,
                token.column,
            )
        return token

    def error(self, message: str) -> TurtleParseError:
        token = self.peek()
        return TurtleParseError(message, token.line, token.column)


class TurtleParser:
    """Recursive-descent parser for the Turtle fragment described above.

    The same machinery is reused by :mod:`repro.rdf.trig`, which adds graph
    blocks on top.
    """

    def __init__(self, text: str, graph: Optional[Graph] = None):
        self.tokens = Tokenizer(text)
        self.graph = graph if graph is not None else Graph()
        self.namespaces: NamespaceManager = self.graph.namespaces
        self.base: str = ""

    # -- directives ------------------------------------------------------ #

    def _parse_directive(self) -> None:
        keyword = self.tokens.next().value.lower()
        if keyword in ("@prefix", "prefix"):
            qname = self.tokens.expect("QNAME")
            prefix = qname.value.rstrip(":")
            iriref = self.tokens.expect("IRIREF")
            if prefix:
                self.namespaces.bind(prefix, iriref.value[1:-1])
            else:
                # Empty prefix ":" — stored directly, bypassing prefix
                # validation which requires a leading letter.
                self.namespaces._by_prefix[""] = iriref.value[1:-1]  # noqa: SLF001
            if keyword == "@prefix":
                self.tokens.expect("PUNCT", ".")
        elif keyword in ("@base", "base"):
            iriref = self.tokens.expect("IRIREF")
            self.base = iriref.value[1:-1]
            if keyword == "@base":
                self.tokens.expect("PUNCT", ".")
        else:
            raise self.tokens.error(f"unknown directive {keyword!r}")

    # -- terms ------------------------------------------------------------ #

    def _resolve_iri(self, raw: str) -> IRI:
        body = raw[1:-1]
        if self.base and "://" not in body and not body.startswith("urn:"):
            return IRI(self.base + body)
        return IRI(body)

    def _expand_qname(self, qname: str, token: Token) -> IRI:
        prefix, _, local = qname.partition(":")
        base = self.namespaces._by_prefix.get(prefix)  # noqa: SLF001
        if base is None:
            raise TurtleParseError(f"unbound prefix {prefix!r}", token.line, token.column)
        return IRI(base + local)

    def parse_term(self, as_subject: bool = False) -> Term:
        """Parse one RDF term (possibly an anonymous bnode or collection)."""
        token = self.tokens.peek()
        if token.kind == "IRIREF":
            self.tokens.next()
            return self._resolve_iri(token.value)
        if token.kind == "QNAME":
            self.tokens.next()
            return self._expand_qname(token.value, token)
        if token.kind == "BNODE":
            self.tokens.next()
            return BNode(token.value[2:])
        if token.kind == "KEYWORD" and token.value == "a" and not as_subject:
            self.tokens.next()
            return RDF.type
        if token.kind == "KEYWORD" and token.value in ("true", "false"):
            self.tokens.next()
            return Literal(token.value, datatype=XSD_BOOLEAN)
        if token.kind in ("STRING", "STRING_LONG"):
            return self._parse_literal()
        if token.kind == "INTEGER":
            self.tokens.next()
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "DECIMAL":
            self.tokens.next()
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.kind == "DOUBLE":
            self.tokens.next()
            return Literal(token.value, datatype=XSD_DOUBLE)
        if token.kind == "PUNCT" and token.value == "[":
            return self._parse_anon_bnode()
        if token.kind == "PUNCT" and token.value == "(":
            return self._parse_collection()
        raise self.tokens.error(f"unexpected token {token.value!r} for a term")

    def _parse_literal(self) -> Literal:
        token = self.tokens.next()
        raw = token.value
        if token.kind == "STRING_LONG":
            body = raw[3:-3]
        else:
            body = raw[1:-1]
        lexical = unescape_string(body)
        nxt = self.tokens.peek()
        if nxt.kind == "LANGTAG":
            self.tokens.next()
            return Literal(lexical, lang=nxt.value[1:])
        if nxt.kind == "HATHAT":
            self.tokens.next()
            dt_token = self.tokens.peek()
            if dt_token.kind == "IRIREF":
                self.tokens.next()
                return Literal(lexical, datatype=dt_token.value[1:-1])
            if dt_token.kind == "QNAME":
                self.tokens.next()
                return Literal(lexical, datatype=self._expand_qname(dt_token.value, dt_token).value)
            raise self.tokens.error("expected datatype IRI after ^^")
        return Literal(lexical)

    def _parse_anon_bnode(self) -> BNode:
        self.tokens.expect("PUNCT", "[")
        node = BNode()
        if not (self.tokens.peek().kind == "PUNCT" and self.tokens.peek().value == "]"):
            self._parse_predicate_object_list(node)
        self.tokens.expect("PUNCT", "]")
        return node

    def _parse_collection(self) -> Term:
        self.tokens.expect("PUNCT", "(")
        items: List[Term] = []
        while not (self.tokens.peek().kind == "PUNCT" and self.tokens.peek().value == ")"):
            items.append(self.parse_term())
        self.tokens.expect("PUNCT", ")")
        if not items:
            return RDF.nil
        head = BNode()
        current = head
        for index, item in enumerate(items):
            self.graph.add((current, RDF.first, item))
            if index == len(items) - 1:
                self.graph.add((current, RDF.rest, RDF.nil))
            else:
                nxt = BNode()
                self.graph.add((current, RDF.rest, nxt))
                current = nxt
        return head

    # -- statements -------------------------------------------------------- #

    def _parse_predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self.parse_term()
            if not isinstance(predicate, IRI):
                raise self.tokens.error("predicate must be an IRI")
            while True:
                obj = self.parse_term()
                self.graph.add((subject, predicate, obj))
                if self.tokens.peek().kind == "PUNCT" and self.tokens.peek().value == ",":
                    self.tokens.next()
                    continue
                break
            if self.tokens.peek().kind == "PUNCT" and self.tokens.peek().value == ";":
                self.tokens.next()
                # A trailing ';' before '.' or ']' is legal Turtle.
                nxt = self.tokens.peek()
                if nxt.kind == "PUNCT" and nxt.value in (".", "]", "}"):
                    break
                continue
            break

    def parse_statement(self) -> None:
        """Parse one directive or triples statement."""
        token = self.tokens.peek()
        if token.kind == "KEYWORD" and token.value.lower() in (
            "@prefix",
            "prefix",
            "@base",
            "base",
        ):
            self._parse_directive()
            return
        subject = self.parse_term(as_subject=True)
        self._parse_predicate_object_list(subject)
        self.tokens.expect("PUNCT", ".")

    def parse(self) -> Graph:
        """Parse the whole document and return the populated graph."""
        while self.tokens.peek().kind != "EOF":
            self.parse_statement()
        return self.graph


def parse_turtle(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse a Turtle document into ``graph`` (a fresh one by default)."""
    return TurtleParser(text, graph).parse()


# ---------------------------------------------------------------------- #
# serialization
# ---------------------------------------------------------------------- #


def _render_term(term: Term, namespaces: NamespaceManager) -> str:
    if isinstance(term, IRI):
        if term == RDF.type:
            return "a"
        compact = namespaces.compact(term)
        return compact if compact is not None else term.n3()
    if isinstance(term, Literal):
        if term.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_BOOLEAN) and _is_plain(term):
            return term.lexical
        n3 = term.n3()
        if "^^<" in n3:
            lexical, _, dt = n3.partition("^^")
            compact = namespaces.compact(IRI(dt[1:-1]))
            if compact is not None:
                return f"{lexical}^^{compact}"
        return n3
    return term.n3()


def _is_plain(literal: Literal) -> bool:
    """Whether the lexical form is valid for numeric/boolean shorthand."""
    lex = literal.lexical
    if literal.datatype == XSD_INTEGER:
        return bool(re.fullmatch(r"[+-]?\d+", lex))
    if literal.datatype == XSD_DECIMAL:
        return bool(re.fullmatch(r"[+-]?\d*\.\d+", lex))
    if literal.datatype == XSD_BOOLEAN:
        return lex in ("true", "false")
    return False


def _used_prefixes(graph: Graph) -> List[Tuple[str, str]]:
    used = set()
    for term in graph.terms():
        if isinstance(term, IRI):
            compact = graph.namespaces.compact(term)
            if compact is not None:
                used.add(compact.split(":", 1)[0])
        elif isinstance(term, Literal):
            compact = graph.namespaces.compact(IRI(term.datatype))
            if compact is not None:
                used.add(compact.split(":", 1)[0])
    return [(p, b) for p, b in graph.namespaces.prefixes() if p in used]


def serialize_turtle(graph: Graph, include_prefixes: bool = True) -> str:
    """Serialize ``graph`` as deterministic, subject-grouped Turtle."""
    lines: List[str] = []
    if include_prefixes:
        for prefix, base in _used_prefixes(graph):
            lines.append(f"@prefix {prefix}: <{base}> .")
        if lines:
            lines.append("")
    by_subject: dict = {}
    for s, p, o in graph:
        by_subject.setdefault(s, {}).setdefault(p, []).append(o)
    ns = graph.namespaces
    for subject in sorted(by_subject, key=lambda t: (t.__class__.__name__, str(t))):
        subject_text = _render_term(subject, ns) if not isinstance(subject, BNode) else subject.n3()
        predicate_map = by_subject[subject]
        predicate_lines: List[str] = []
        # rdf:type first, then alphabetical — conventional Turtle style.
        ordered = sorted(predicate_map, key=lambda p: (p != RDF.type, str(p)))
        for predicate in ordered:
            objects = sorted(predicate_map[predicate], key=lambda t: (t.__class__.__name__, str(t)))
            objects_text = ", ".join(_render_term(o, ns) for o in objects)
            predicate_lines.append(f"    {_render_term(predicate, ns)} {objects_text}")
        lines.append(subject_text + "\n" + " ;\n".join(predicate_lines) + " .")
    return "\n".join(lines) + ("\n" if lines else "")
