"""Relational engine (SQLite-federation substitute) for the MDM reproduction.

Typical use::

    from repro.relational import Relation, Executor, Scan, Project, EquiJoin

    players = Relation.from_dicts([...], name="w1")
    executor = Executor({"w1": players})
    plan = Project(Scan("w1"), ("pName",))
    print(executor.execute(plan).to_table())
"""

from .algebra import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    Catalog,
    Extend,
    Distinct,
    EquiJoin,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    union_all,
)
from .executor import ExecutionError, Executor
from .expressions import (
    And,
    Cmp,
    Col,
    Const,
    Expr,
    IsNull,
    NotExpr,
    Or,
    conjoin,
    conjuncts,
    rename_columns,
)
from .optimizer import (
    CardinalityEstimator,
    OptimizationStats,
    PlanOptimizer,
    flatten_union,
    plan_key,
)
from .relation import Relation
from .schema import Attribute, RelationSchema, SchemaError
from .sql import to_sql
from .types import AttrType, coerce, common_type, infer_type

__all__ = [
    "Relation",
    "RelationSchema",
    "Attribute",
    "SchemaError",
    "AttrType",
    "infer_type",
    "coerce",
    "common_type",
    "PlanNode",
    "Scan",
    "Project",
    "Select",
    "NaturalJoin",
    "EquiJoin",
    "Rename",
    "Union",
    "Distinct",
    "Aggregate",
    "Extend",
    "AGGREGATE_FUNCTIONS",
    "union_all",
    "Catalog",
    "Executor",
    "ExecutionError",
    "Expr",
    "Col",
    "Const",
    "Cmp",
    "And",
    "Or",
    "NotExpr",
    "IsNull",
    "conjuncts",
    "conjoin",
    "rename_columns",
    "PlanOptimizer",
    "OptimizationStats",
    "CardinalityEstimator",
    "plan_key",
    "flatten_union",
    "to_sql",
]
