"""Relational-algebra operator trees.

The rewriting algorithm (paper §2.4, Figure 8) produces *relational
algebra expressions over the wrappers* — this module is that expression
language.  Operators:

``Scan(name)``
    a base relation (one wrapper's output).
``Project(child, names)``
    π — also reorders columns.
``Select(child, predicate)``
    σ with an :class:`repro.relational.expressions.Expr` predicate.
``NaturalJoin(left, right)``
    ⋈ on all shared attribute names.
``EquiJoin(left, right, pairs)``
    ⋈ on explicit ``(left_attr, right_attr)`` pairs, keeping both sides'
    columns (right-side join columns dropped when names collide).
``Rename(child, mapping)``
    ρ.
``Union(left, right)``
    ∪ over union-compatible children (bag union; wrap in Distinct for set).
``Distinct(child)``
    δ duplicate elimination.

``pretty()`` renders the tree in the paper's mathematical notation, e.g.::

    π_{name, pName} (w2 ⋈_{id=teamId} w1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .expressions import Expr
from .schema import RelationSchema, SchemaError

__all__ = [
    "PlanNode",
    "canonical_scan_filters",
    "Scan",
    "Project",
    "Select",
    "NaturalJoin",
    "EquiJoin",
    "Rename",
    "Union",
    "Distinct",
    "Catalog",
    "union_all",
]

#: Maps scan names to their schemas for static schema derivation.
Catalog = Dict[str, RelationSchema]


def canonical_scan_filters(
    filters: Sequence[Tuple[str, str, Any]],
) -> Tuple[Tuple[str, str, Any], ...]:
    """Sorted, de-duplicated pushed-filter conjuncts (canonical order).

    The sort key includes the value's type name so equal-but-distinct
    constants (``1`` vs ``True``) order deterministically.  Conjuncts
    form a set — applying one twice keeps the same rows — so duplicates
    are dropped.  Canonical order makes structurally equal pushed scans
    compare equal, share one ``plan_key``, one fetch, and one
    wrapper-cache entry.
    """
    unique = {tuple(f) for f in filters}
    return tuple(
        sorted(unique, key=lambda f: (f[0], f[1], type(f[2]).__name__, repr(f[2])))
    )


class PlanNode:
    """Base class of algebra operators."""

    __slots__ = ()

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        """The schema this operator produces given base-relation schemas."""
        raise NotImplementedError

    def pretty(self) -> str:
        """Mathematical rendering (π σ ⋈ ∪ ρ δ) like the paper's Figure 8."""
        raise NotImplementedError

    def children(self) -> Tuple["PlanNode", ...]:
        """Direct child operators."""
        raise NotImplementedError

    def scans(self) -> List[str]:
        """All base-relation names in the subtree, in left-to-right order."""
        if isinstance(self, Scan):
            return [self.relation_name]
        out: List[str] = []
        for child in self.children():
            out.extend(child.scans())
        return out

    def depth(self) -> int:
        """Height of the operator tree (a Scan has depth 1)."""
        kids = self.children()
        return 1 + (max(k.depth() for k in kids) if kids else 0)


@dataclass(frozen=True)
class Scan(PlanNode):
    """A base relation, by catalog name (= wrapper name in MDM).

    A scan may additionally carry *pushed-down* work extracted by the
    optimizer's pushdown pass (see ``PlanOptimizer.extract_pushdown``):

    ``filters``
        equality/comparison conjuncts ``(column, op, value)`` the source
        applies before rows cross the wrapper boundary.  Semantics are
        exactly those of an executor-side ``Select`` with the same
        conjunction — NULL comparisons are False, incomparable types
        fall back to string comparison for ``=``/``!=`` only.
    ``columns``
        the needed-column list (a projection the source applies), or
        ``None`` for all signature columns.
    ``limit``
        row cap the source applies *after* filtering, or ``None`` for
        all rows (mirrors ``FetchRequest.limit``; only meaningful for
        wrappers declaring the ``limit`` capability).

    A plain ``Scan(name)`` is a full fetch; ``is_pushed()`` tells the
    two apart and ``binding_name()`` gives the catalog name the fetched
    (filtered/projected) relation is registered under.
    """

    relation_name: str
    filters: Tuple[Tuple[str, str, Any], ...] = field(default=())
    columns: Optional[Tuple[str, ...]] = field(default=None)
    limit: Optional[int] = field(default=None)

    def is_pushed(self) -> bool:
        """Whether this scan carries pushed filters, columns or a limit."""
        return (
            bool(self.filters)
            or self.columns is not None
            or self.limit is not None
        )

    def binding_name(self) -> str:
        """Catalog/executor name for this scan's (possibly pushed) output.

        Deterministic in the canonical filter order, so structurally
        equal scans share one binding (and one wrapper fetch).
        """
        if not self.is_pushed():
            return self.relation_name
        parts = [self.relation_name]
        if self.filters:
            rendered = ",".join(f"{c}{op}{v!r}" for c, op, v in self.filters)
            parts.append(f"σ[{rendered}]")
        if self.columns is not None:
            parts.append(f"π[{','.join(self.columns)}]")
        if self.limit is not None:
            parts.append(f"limit[{self.limit}]")
        return "".join(parts)

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        if self.is_pushed():
            bound = catalog.get(self.binding_name())
            if bound is not None:
                return bound
        try:
            base = catalog[self.relation_name]
        except KeyError:
            raise SchemaError(f"unknown relation {self.relation_name!r}") from None
        for column, _op, _value in self.filters:
            base.index_of(column)  # existence check against the base schema
        if self.columns is not None:
            return base.project(self.columns)
        return base

    def pretty(self) -> str:
        if not self.is_pushed():
            return self.relation_name
        inner = []
        if self.filters:
            inner.append(
                "σ: " + " ∧ ".join(f"{c} {op} {v!r}" for c, op, v in self.filters)
            )
        if self.columns is not None:
            inner.append("π: " + ", ".join(self.columns))
        if self.limit is not None:
            inner.append(f"limit: {self.limit}")
        return f"{self.relation_name}⟨{'; '.join(inner)}⟩"

    def children(self) -> Tuple[PlanNode, ...]:
        return ()


@dataclass(frozen=True)
class Project(PlanNode):
    """π — keep (and reorder to) the listed attribute names."""

    child: PlanNode
    names: Tuple[str, ...]

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        return self.child.output_schema(catalog).project(self.names)

    def pretty(self) -> str:
        cols = ", ".join(self.names)
        return f"π_{{{cols}}}({self.child.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Select(PlanNode):
    """σ — filter rows by a predicate expression."""

    child: PlanNode
    predicate: Expr

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        return self.child.output_schema(catalog)

    def pretty(self) -> str:
        return f"σ_{{{self.predicate}}}({self.child.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class NaturalJoin(PlanNode):
    """⋈ — join on all shared attribute names (cross product if none)."""

    left: PlanNode
    right: PlanNode

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        _, combined = self.left.output_schema(catalog).join_split(
            self.right.output_schema(catalog)
        )
        return combined

    def pretty(self) -> str:
        return f"({self.left.pretty()} ⋈ {self.right.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class EquiJoin(PlanNode):
    """⋈ on explicit attribute pairs ``(left_name, right_name)``.

    The output keeps all left attributes and the right attributes whose
    names do not collide with a left name.
    """

    left: PlanNode
    right: PlanNode
    pairs: Tuple[Tuple[str, str], ...]

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        left_schema = self.left.output_schema(catalog)
        right_schema = self.right.output_schema(catalog)
        for l_name, r_name in self.pairs:
            left_schema.index_of(l_name)
            right_schema.index_of(r_name)
        combined = list(left_schema.attributes) + [
            a for a in right_schema.attributes if a.name not in left_schema
        ]
        return RelationSchema(combined)

    def pretty(self) -> str:
        condition = " ∧ ".join(f"{l}={r}" for l, r in self.pairs)
        return f"({self.left.pretty()} ⋈_{{{condition}}} {self.right.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Rename(PlanNode):
    """ρ — rename attributes per a mapping (stored as sorted pairs)."""

    child: PlanNode
    mapping: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_dict(cls, child: PlanNode, mapping: Dict[str, str]) -> "Rename":
        """Build from a dict (sorted for deterministic equality)."""
        return cls(child, tuple(sorted(mapping.items())))

    def mapping_dict(self) -> Dict[str, str]:
        """The rename mapping as a dict."""
        return dict(self.mapping)

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        return self.child.output_schema(catalog).rename(self.mapping_dict())

    def pretty(self) -> str:
        renames = ", ".join(f"{old}→{new}" for old, new in self.mapping)
        return f"ρ_{{{renames}}}({self.child.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Union(PlanNode):
    """∪ — bag union of two union-compatible children."""

    left: PlanNode
    right: PlanNode

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        left_schema = self.left.output_schema(catalog)
        right_schema = self.right.output_schema(catalog)
        return left_schema.widen(right_schema)

    def pretty(self) -> str:
        return f"({self.left.pretty()} ∪ {self.right.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Distinct(PlanNode):
    """δ — duplicate elimination."""

    child: PlanNode

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        return self.child.output_schema(catalog)

    def pretty(self) -> str:
        return f"δ({self.child.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Extend(PlanNode):
    """ε — append a constant column (used to NULL-pad optional features).

    UCQ branches must be union-compatible; a branch whose wrappers do not
    provide an optional feature is extended with a NULL column of that
    name so it lines up with branches that do.
    """

    child: PlanNode
    column: str
    value: object = None

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        from .schema import Attribute
        from .types import AttrType, infer_type

        child_schema = self.child.output_schema(catalog)
        if self.column in child_schema:
            raise SchemaError(
                f"extend column {self.column!r} already exists in "
                f"{list(child_schema.names)}"
            )
        attr_type = AttrType.ANY if self.value is None else infer_type(self.value)
        return RelationSchema(
            list(child_schema.attributes) + [Attribute(self.column, attr_type)]
        )

    def pretty(self) -> str:
        rendered = "NULL" if self.value is None else repr(self.value)
        return f"ε_{{{self.column}={rendered}}}({self.child.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


#: The aggregation functions :class:`Aggregate` supports.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """γ — grouped aggregation.

    ``metrics`` is a tuple of ``(function, column, alias)`` with function
    in :data:`AGGREGATE_FUNCTIONS`; ``column`` may be ``"*"`` for
    ``count``.  The output schema is the group-by columns followed by the
    aliases.  Not part of the paper's UCQ output (walks are conjunctive),
    but the analyst-facing tabular layer aggregates results the way any
    BI tool over MDM would.
    """

    child: PlanNode
    group_by: Tuple[str, ...]
    metrics: Tuple[Tuple[str, str, str], ...]

    def __post_init__(self):
        seen = set(self.group_by)
        for function, column, alias in self.metrics:
            if function not in AGGREGATE_FUNCTIONS:
                raise SchemaError(
                    f"unknown aggregate function {function!r}; "
                    f"use one of {AGGREGATE_FUNCTIONS}"
                )
            if column == "*" and function != "count":
                raise SchemaError(f"{function}(*) is not defined")
            if alias in seen:
                raise SchemaError(f"duplicate output column {alias!r}")
            seen.add(alias)

    def output_schema(self, catalog: Catalog) -> RelationSchema:
        from .schema import Attribute
        from .types import AttrType

        child_schema = self.child.output_schema(catalog)
        attributes = [child_schema.attribute(name) for name in self.group_by]
        for function, column, alias in self.metrics:
            if column != "*":
                child_schema.index_of(column)  # existence check
            if function == "count":
                attr_type = AttrType.INTEGER
            elif function == "avg":
                attr_type = AttrType.FLOAT
            elif column != "*":
                attr_type = child_schema.attribute(column).type
            else:
                attr_type = AttrType.ANY
            attributes.append(Attribute(alias, attr_type))
        return RelationSchema(attributes)

    def pretty(self) -> str:
        groups = ", ".join(self.group_by)
        metrics = ", ".join(
            f"{alias}={function}({column})" for function, column, alias in self.metrics
        )
        return f"γ_{{{groups}; {metrics}}}({self.child.pretty()})"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


def union_all(branches: Sequence[PlanNode]) -> PlanNode:
    """Left-deep union of one or more branches (identity for a single one)."""
    if not branches:
        raise ValueError("union_all needs at least one branch")
    result = branches[0]
    for branch in branches[1:]:
        result = Union(result, branch)
    return result
