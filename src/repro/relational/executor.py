"""Execution of relational-algebra plans over in-memory relations.

The :class:`Executor` plays the role of the paper's federated SQLite step:
wrapper outputs are registered as base relations, and the UCQ plan emitted
by the LAV rewriting executes against them.  Joins are hash joins; unions
widen schemas positionally and coerce rows to the common type so that two
schema versions of the same source (e.g. INTEGER ids vs stringified ids)
union cleanly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..obs import get_metrics, get_tracer
from .algebra import (
    Aggregate,
    Extend,
    Catalog,
    Distinct,
    EquiJoin,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from .expressions import Cmp, Col, Const, Expr, conjoin
from .optimizer import plan_key
from .relation import Relation
from .schema import RelationSchema, SchemaError

__all__ = [
    "Executor",
    "ExecutionError",
    "OperatorStats",
    "apply_pushdown",
    "pushdown_predicate",
]


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (unknown scan, bad schema...)."""


def pushdown_predicate(filters: Iterable[Tuple[str, str, Any]]) -> Expr:
    """The ``Select`` predicate equivalent to pushed filter conjuncts."""
    return conjoin([Cmp(op, Col(column), Const(value)) for column, op, value in filters])


def apply_pushdown(
    relation: Relation,
    filters: Tuple[Tuple[str, str, Any], ...] = (),
    columns: Optional[Tuple[str, ...]] = None,
    limit: Optional[int] = None,
) -> Relation:
    """Apply pushed scan work to a full relation, with executor semantics.

    This is the single definition of what a pushed filter/projection
    *means*: capable wrappers, the uncapable-wrapper fallback, and the
    executor's residual path all funnel through it, so pushdown can
    relocate the work without ever changing the rows.
    """
    result = relation
    if filters:
        predicate = pushdown_predicate(filters)
        names = result.schema.names
        kept = [
            row for row in result if predicate.evaluate(dict(zip(names, row)))
        ]
        result = Relation(result.schema, kept)
    if limit is not None:
        result = Relation(result.schema, list(result.rows)[:limit])
    if columns is not None:
        indices = [result.schema.index_of(n) for n in columns]
        schema = result.schema.project(columns)
        result = Relation(schema, [tuple(row[i] for i in indices) for row in result])
    return result


@dataclass(frozen=True)
class OperatorStats:
    """EXPLAIN ANALYZE facts for one executed operator node.

    ``elapsed_s`` is inclusive of children (wall time of the subtree);
    ``rows_in`` lists each child's output cardinality in child order.
    """

    label: str
    rows_in: Tuple[int, ...]
    rows_out: int
    elapsed_s: float
    children: Tuple["OperatorStats", ...] = ()
    #: True when this node's result came from the shared-subplan memo
    #: (the subtree was not re-executed; it has no children stats).
    memoized: bool = False

    @property
    def self_s(self) -> float:
        """Time spent in this operator excluding its children."""
        return max(0.0, self.elapsed_s - sum(c.elapsed_s for c in self.children))

    def iter_nodes(self) -> Iterable["OperatorStats"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped rendering of the subtree."""
        return {
            "label": self.label,
            "rows_in": list(self.rows_in),
            "rows_out": self.rows_out,
            "elapsed_ms": round(self.elapsed_s * 1000.0, 6),
            "memoized": self.memoized,
            "children": [child.to_dict() for child in self.children],
        }

    def pretty(self) -> str:
        """EXPLAIN ANALYZE-style indented tree rendering."""
        lines: List[str] = []

        def render(node: "OperatorStats", depth: int) -> None:
            rows_in = ",".join(str(r) for r in node.rows_in) or "-"
            memo = " [memoized]" if node.memoized else ""
            lines.append(
                f"{'  ' * depth}-> {node.label}  "
                f"(rows_in={rows_in} rows_out={node.rows_out} "
                f"time={node.elapsed_s * 1000.0:.3f}ms){memo}"
            )
            for child in node.children:
                render(child, depth + 1)

        render(self, 0)
        return "\n".join(lines)


def _count_union_branches(plan: Union) -> int:
    """Number of non-Union leaves under a (possibly nested) union."""
    count = 0
    stack: List[PlanNode] = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Union):
            stack.append(node.left)
            stack.append(node.right)
        else:
            count += 1
    return count


def _op_label(plan: PlanNode, catalog: Optional[Catalog] = None) -> str:
    """Short human label for one plan node (scan names, op arity hints).

    With a ``catalog``, joins and unions get structural detail — the join
    columns (or ``×`` for a cross product), the union's branch arity —
    so an EXPLAIN ANALYZE tree distinguishes e.g. the three different
    joins of a chain walk instead of printing ``NaturalJoin`` thrice.
    """
    if isinstance(plan, Scan):
        if plan.is_pushed():
            detail = []
            if plan.filters:
                rendered = " ∧ ".join(
                    f"{c} {op} {v!r}" for c, op, v in plan.filters
                )
                if len(rendered) > 40:
                    rendered = rendered[:37] + "..."
                detail.append(f"σ[{rendered}]")
            if plan.columns is not None:
                detail.append(f"π[{len(plan.columns)} cols]")
            if plan.limit is not None:
                detail.append(f"limit[{plan.limit}]")
            return f"Scan({plan.relation_name} {' '.join(detail)})"
        return f"Scan({plan.relation_name})"
    if isinstance(plan, Project):
        return f"Project[{len(plan.names)} cols]"
    if isinstance(plan, Rename):
        return f"Rename[{len(plan.mapping)}]"
    if isinstance(plan, Select):
        predicate = str(plan.predicate)
        if len(predicate) > 40:
            predicate = predicate[:37] + "..."
        return f"Select[{predicate}]"
    if isinstance(plan, Extend):
        return f"Extend[{plan.column}]"
    if isinstance(plan, NaturalJoin):
        if catalog is not None:
            try:
                shared, _ = plan.left.output_schema(catalog).join_split(
                    plan.right.output_schema(catalog)
                )
            except SchemaError:
                shared = None
            if shared is not None:
                condition = ",".join(shared) if shared else "×"
                return f"NaturalJoin[{condition}]"
        return "NaturalJoin"
    if isinstance(plan, EquiJoin):
        condition = ",".join(f"{l}={r}" for l, r in plan.pairs)
        return f"EquiJoin[{condition}]"
    if isinstance(plan, Union):
        return f"Union[{_count_union_branches(plan)} branches]"
    if isinstance(plan, Aggregate):
        groups = ",".join(plan.group_by) or "∅"
        metrics = ",".join(
            f"{function}({column})" for function, column, _ in plan.metrics
        )
        return f"Aggregate[by {groups}; {metrics}]"
    return type(plan).__name__


def _union_sort_key(row: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Canonical row sort key: per cell, NULLs first, then textual order.

    Flattened ``(not_null, str, not_null, str, ...)`` — within one union
    all rows have the same width, so lexicographic comparison of the
    flat tuples equals comparison of the nested per-cell pairs while
    building one tuple per row instead of one per cell.
    """
    return tuple(
        part for value in row for part in (value is not None, str(value))
    )


class Executor:
    """Executes plans against a registry of named base relations.

    ``execute`` is the hot path and stays uninstrumented; wrap a call in
    :meth:`execute_analyzed` to collect an :class:`OperatorStats` tree
    (rows-in / rows-out / elapsed per operator — EXPLAIN ANALYZE), which
    also emits per-operator spans when the process tracer is enabled.

    With ``memoize_shared`` (the default), each top-level ``execute``
    call keeps a memo keyed by the canonical structural hash of every
    non-Scan subtree it evaluates: sibling CQ branches of a UCQ that
    share a join subtree execute it once and reuse the result relation.
    The memo lives only for the duration of one top-level call, so base
    relations registered between calls are always observed.  Cumulative
    reuse counts are exposed as :attr:`subplan_hits` /
    :attr:`subplan_misses`.
    """

    def __init__(
        self,
        relations: Optional[Dict[str, Relation]] = None,
        memoize_shared: bool = True,
    ):
        self._relations: Dict[str, Relation] = {}
        #: Optional hook resolving a base relation that was never
        #: registered (pushdown registers filtered *bindings*; provenance
        #: re-executes naive per-CQ plans over base names).  Called with
        #: the missing name; may return None to decline.
        self.base_resolver: Optional[Any] = None
        #: While analyzing: a stack of child-stat accumulators, innermost
        #: last.  None in the unobserved fast path.
        self._analyze_stack: Optional[List[List[OperatorStats]]] = None
        #: Stats tree of the last ``execute_analyzed`` call.
        self.last_stats: Optional[OperatorStats] = None
        self.memoize_shared = memoize_shared
        #: Per-top-level-call memo (plan key → result); None when idle.
        self._memo: Optional[Dict[str, Relation]] = None
        self._memo_key_cache: Dict[int, str] = {}
        #: Cumulative shared-subplan reuse counters (across calls).
        self.subplan_hits = 0
        self.subplan_misses = 0
        if relations:
            for name, relation in relations.items():
                self.register(name, relation)

    def register(self, name: str, relation: Relation) -> None:
        """Register (or replace) a base relation under ``name``."""
        if not name:
            raise ValueError("relation name must be non-empty")
        self._relations[name] = relation

    def unregister(self, name: str) -> bool:
        """Drop a base relation; True if it existed."""
        return self._relations.pop(name, None) is not None

    @property
    def catalog(self) -> Catalog:
        """Scan-name → schema mapping for static plan checking."""
        return {name: rel.schema for name, rel in self._relations.items()}

    def relation(self, name: str) -> Relation:
        """The base relation registered under ``name``.

        Falls back to :attr:`base_resolver` (registering what it returns)
        so a pushdown-era executor can still serve naive base-name plans
        (provenance re-execution) by lazily fetching the full relation.
        """
        rel = self._relations.get(name)
        if rel is None and self.base_resolver is not None:
            fetched = self.base_resolver(name)
            if fetched is not None:
                self._relations[name] = fetched
                rel = fetched
        if rel is None:
            raise ExecutionError(
                f"unknown base relation {name!r}; registered: "
                f"{sorted(self._relations)}"
            )
        return rel

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def execute(self, plan: PlanNode) -> Relation:
        """Evaluate ``plan`` and return the result relation."""
        fresh_memo = self.memoize_shared and self._memo is None
        if fresh_memo:
            self._memo = {}
            self._memo_key_cache = {}
        try:
            if self._analyze_stack is None:
                return self._dispatch_memo(plan)
            return self._execute_instrumented(plan)
        finally:
            if fresh_memo:
                self._memo = None
                self._memo_key_cache = {}

    def _memo_lookup(self, plan: PlanNode) -> Tuple[Optional[str], Optional[Relation]]:
        """(memo key, cached relation) for ``plan``; (None, None) if unmemoizable."""
        if self._memo is None or isinstance(plan, Scan):
            # Scans are dictionary lookups already — not worth a hash.
            return None, None
        key = plan_key(plan, self._memo_key_cache)
        hit = self._memo.get(key)
        if hit is not None:
            self.subplan_hits += 1
        else:
            self.subplan_misses += 1
        return key, hit

    def _dispatch_memo(self, plan: PlanNode) -> Relation:
        key, hit = self._memo_lookup(plan)
        if hit is not None:
            return hit
        relation = self._dispatch(plan)
        if key is not None:
            self._memo[key] = relation
        return relation

    def execute_analyzed(self, plan: PlanNode) -> Tuple[Relation, OperatorStats]:
        """Evaluate ``plan`` collecting per-operator statistics.

        Returns ``(relation, stats)`` where ``stats`` is the root of an
        :class:`OperatorStats` tree mirroring the plan shape.  The tree is
        also kept on :attr:`last_stats`.  Nested/recursive calls restore
        the previous instrumentation state, so provenance re-execution of
        UCQ branches does not corrupt an outer analysis.
        """
        previous = self._analyze_stack
        root_frame: List[OperatorStats] = []
        self._analyze_stack = [root_frame]
        try:
            relation = self.execute(plan)
        finally:
            self._analyze_stack = previous
        stats = root_frame[0]
        self.last_stats = stats
        return relation, stats

    def _execute_instrumented(self, plan: PlanNode) -> Relation:
        """One analyzed operator: time it, record stats, emit a span."""
        assert self._analyze_stack is not None
        label = _op_label(plan, self.catalog)
        memo_key, hit = self._memo_lookup(plan)
        if hit is not None:
            stats = OperatorStats(
                label=label,
                rows_in=(),
                rows_out=len(hit),
                elapsed_s=0.0,
                children=(),
                memoized=True,
            )
            self._analyze_stack[-1].append(stats)
            return hit
        children: List[OperatorStats] = []
        self._analyze_stack.append(children)
        span = get_tracer().span(f"op:{label}")
        started = time.perf_counter()
        with span:
            try:
                relation = self._dispatch(plan)
            finally:
                self._analyze_stack.pop()
            elapsed = time.perf_counter() - started
            stats = OperatorStats(
                label=label,
                rows_in=tuple(child.rows_out for child in children),
                rows_out=len(relation),
                elapsed_s=elapsed,
                children=tuple(children),
            )
            span.set_tag("rows_in", list(stats.rows_in))
            span.set_tag("rows_out", stats.rows_out)
        self._analyze_stack[-1].append(stats)
        if memo_key is not None and self._memo is not None:
            self._memo[memo_key] = relation
        get_metrics().histogram(
            "mdm_executor_operator_seconds",
            "Inclusive latency of relational operators (analyzed runs).",
            labelnames=("op",),
        ).observe(elapsed, op=type(plan).__name__)
        return relation

    def _dispatch(self, plan: PlanNode) -> Relation:
        if isinstance(plan, Scan):
            return self._scan(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, Select):
            return self._select(plan)
        if isinstance(plan, NaturalJoin):
            return self._natural_join(plan)
        if isinstance(plan, EquiJoin):
            return self._equi_join(plan)
        if isinstance(plan, Rename):
            return self._rename(plan)
        if isinstance(plan, Union):
            return self._union(plan)
        if isinstance(plan, Distinct):
            return self.execute(plan.child).distinct()
        if isinstance(plan, Aggregate):
            return self._aggregate(plan)
        if isinstance(plan, Extend):
            child = self.execute(plan.child)
            schema = plan.output_schema({**self.catalog, "__child__": child.schema})
            rows = [row + (plan.value,) for row in child]
            return Relation(schema, rows)
        raise ExecutionError(f"unknown plan node {plan!r}")

    def _scan(self, plan: Scan) -> Relation:
        if not plan.is_pushed():
            return self.relation(plan.relation_name)
        binding = plan.binding_name()
        bound = self._relations.get(binding)
        if bound is not None:
            return bound
        # Residual fallback: the pushed binding was never fetched (e.g. a
        # hand-built plan, or a wrapper that declined) — derive it from
        # the full base relation with identical semantics, and register
        # it so repeated scans of the same binding reuse the result.
        base = self.relation(plan.relation_name)
        derived = apply_pushdown(base, plan.filters, plan.columns, plan.limit)
        self._relations[binding] = derived
        return derived

    def _aggregate(self, plan: Aggregate) -> Relation:
        child = self.execute(plan.child)
        schema = plan.output_schema({**self.catalog, "__child__": child.schema})
        group_indices = [child.schema.index_of(n) for n in plan.group_by]
        metric_indices = [
            None if column == "*" else child.schema.index_of(column)
            for _, column, _ in plan.metrics
        ]
        groups: Dict[Tuple, List[Tuple]] = {}
        order: List[Tuple] = []
        for row in child:
            key = tuple(row[i] for i in group_indices)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not plan.group_by and not groups:
            # Global aggregate over an empty input still yields one row.
            groups[()] = []
            order.append(())
        rows: List[Tuple] = []
        for key in order:
            members = groups[key]
            cells: List[Any] = list(key)
            for (function, column, _), index in zip(plan.metrics, metric_indices):
                if function == "count" and index is None:
                    cells.append(len(members))
                    continue
                values = [
                    row[index] for row in members if row[index] is not None
                ]
                if function == "count":
                    cells.append(len(values))
                elif not values:
                    cells.append(None)
                elif function == "sum":
                    cells.append(sum(values))
                elif function == "avg":
                    cells.append(sum(values) / len(values))
                elif function == "min":
                    cells.append(min(values))
                elif function == "max":
                    cells.append(max(values))
                else:  # unreachable: Aggregate validates its functions
                    raise ExecutionError(f"unknown aggregate {function!r}")
            rows.append(tuple(cells))
        return Relation(schema, rows)

    def _project(self, plan: Project) -> Relation:
        child = self.execute(plan.child)
        indices = [child.schema.index_of(n) for n in plan.names]
        schema = child.schema.project(plan.names)
        rows = [tuple(row[i] for i in indices) for row in child]
        return Relation(schema, rows)

    def _select(self, plan: Select) -> Relation:
        child = self.execute(plan.child)
        names = child.schema.names
        kept = [
            row
            for row in child
            if plan.predicate.evaluate(dict(zip(names, row)))
        ]
        return Relation(child.schema, kept)

    def _natural_join(self, plan: NaturalJoin) -> Relation:
        left = self.execute(plan.left)
        right = self.execute(plan.right)
        shared, schema = left.schema.join_split(right.schema)
        if not shared:
            # Degenerate to a cross product.
            rows = [l + r for l in left for r in right]
            return Relation(schema, rows)
        pairs = tuple((n, n) for n in shared)
        return self._hash_join(left, right, pairs, schema)

    def _equi_join(self, plan: EquiJoin) -> Relation:
        left = self.execute(plan.left)
        right = self.execute(plan.right)
        schema = self._equi_schema(left.schema, right.schema, plan.pairs)
        return self._hash_join(left, right, plan.pairs, schema)

    @staticmethod
    def _equi_schema(
        left_schema: RelationSchema,
        right_schema: RelationSchema,
        pairs: Tuple[Tuple[str, str], ...],
    ) -> RelationSchema:
        for l_name, r_name in pairs:
            left_schema.index_of(l_name)
            right_schema.index_of(r_name)
        combined = list(left_schema.attributes) + [
            a for a in right_schema.attributes if a.name not in left_schema
        ]
        return RelationSchema(combined)

    @staticmethod
    def _join_key(value: Any) -> Any:
        """Normalize join keys so 25 and "25" and 25.0 meet (REST payloads
        stringify numbers inconsistently across API versions)."""
        if isinstance(value, bool):
            return ("b", value)
        if isinstance(value, (int, float)):
            return ("n", float(value))
        if isinstance(value, str):
            stripped = value.strip()
            try:
                return ("n", float(stripped))
            except ValueError:
                return ("s", value)
        return ("x", value)

    def _hash_join(
        self,
        left: Relation,
        right: Relation,
        pairs: Tuple[Tuple[str, str], ...],
        schema: RelationSchema,
    ) -> Relation:
        left_indices = [left.schema.index_of(l) for l, _ in pairs]
        right_indices = [right.schema.index_of(r) for _, r in pairs]
        keep_right = [
            i
            for i, attr in enumerate(right.schema.attributes)
            if attr.name not in left.schema
        ]
        # Build on the smaller side.
        build_left = len(left) <= len(right)
        table: Dict[Tuple, List[Tuple]] = {}
        if build_left:
            for row in left:
                key = tuple(self._join_key(row[i]) for i in left_indices)
                if any(row[i] is None for i in left_indices):
                    continue
                table.setdefault(key, []).append(row)
            rows = []
            for row in right:
                if any(row[i] is None for i in right_indices):
                    continue
                key = tuple(self._join_key(row[i]) for i in right_indices)
                for match in table.get(key, ()):
                    rows.append(match + tuple(row[i] for i in keep_right))
        else:
            for row in right:
                if any(row[i] is None for i in right_indices):
                    continue
                key = tuple(self._join_key(row[i]) for i in right_indices)
                table.setdefault(key, []).append(row)
            rows = []
            for row in left:
                if any(row[i] is None for i in left_indices):
                    continue
                key = tuple(self._join_key(row[i]) for i in left_indices)
                for match in table.get(key, ()):
                    rows.append(row + tuple(match[i] for i in keep_right))
        return Relation(schema, rows)

    def _rename(self, plan: Rename) -> Relation:
        child = self.execute(plan.child)
        return Relation(child.schema.rename(plan.mapping_dict()), child.rows)

    def _union(self, plan: Union) -> Relation:
        left = self.execute(plan.left)
        right = self.execute(plan.right)
        if not left.schema.union_compatible(right.schema):
            raise ExecutionError(
                "union of incompatible schemas: "
                f"{list(left.schema.names)} vs {list(right.schema.names)}"
            )
        widened = left.schema.widen(right.schema)
        left_rows = left.coerced(widened).rows
        right_rows = right.coerced(widened).rows
        # Sort the merged branches so union output (and the downstream
        # first-occurrence dedupe) is identical regardless of which CQ
        # branch's wrapper fetch finished first under concurrency.  The
        # key is one flat interleaved tuple per row — same total order as
        # a tuple of per-cell (not-null, str) pairs, without allocating a
        # nested tuple per cell.
        rows = sorted(left_rows + right_rows, key=_union_sort_key)
        return Relation(widened, rows)
