"""Scalar and predicate expressions for selections in the relational algebra.

Expressions evaluate against a row dict (attribute name → value).  NULL
follows SQL three-valued logic collapsed to two values: any comparison
with NULL is false, so selections never keep rows on unknowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "Expr",
    "Col",
    "Const",
    "Cmp",
    "And",
    "Or",
    "NotExpr",
    "IsNull",
    "conjuncts",
    "conjoin",
    "rename_columns",
]

RowDict = Dict[str, Any]


class Expr:
    """Base class for row expressions."""

    __slots__ = ()

    def evaluate(self, row: RowDict) -> Any:
        raise NotImplementedError

    def references(self) -> Tuple[str, ...]:
        """Attribute names this expression reads."""
        raise NotImplementedError

    def sql(self) -> str:
        """SQL rendering of this expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Col(Expr):
    """A column reference."""

    name: str

    def evaluate(self, row: RowDict) -> Any:
        return row.get(self.name)

    def references(self) -> Tuple[str, ...]:
        return (self.name,)

    def sql(self) -> str:
        return f'"{self.name}"'

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A constant value."""

    value: Any

    def evaluate(self, row: RowDict) -> Any:
        return self.value

    def references(self) -> Tuple[str, ...]:
        return ()

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)

    def __str__(self) -> str:
        return repr(self.value)


_CMP_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Cmp(Expr):
    """A binary comparison; NULL on either side yields False."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: RowDict) -> bool:
        a = self.left.evaluate(row)
        b = self.right.evaluate(row)
        if a is None or b is None:
            return False
        try:
            return bool(_CMP_OPS[self.op](a, b))
        except TypeError:
            # Mixed types: compare textually for equality, false otherwise.
            if self.op == "=":
                return str(a) == str(b)
            if self.op == "!=":
                return str(a) != str(b)
            return False

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()

    def sql(self) -> str:
        op = "<>" if self.op == "!=" else self.op
        return f"{self.left.sql()} {op} {self.right.sql()}"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction."""

    left: Expr
    right: Expr

    def evaluate(self, row: RowDict) -> bool:
        return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()

    def sql(self) -> str:
        return f"({self.left.sql()} AND {self.right.sql()})"

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction."""

    left: Expr
    right: Expr

    def evaluate(self, row: RowDict) -> bool:
        return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()

    def sql(self) -> str:
        return f"({self.left.sql()} OR {self.right.sql()})"

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class NotExpr(Expr):
    """Logical negation."""

    operand: Expr

    def evaluate(self, row: RowDict) -> bool:
        return not bool(self.operand.evaluate(row))

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def sql(self) -> str:
        return f"NOT ({self.operand.sql()})"

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def evaluate(self, row: RowDict) -> bool:
        is_null = self.operand.evaluate(row) is None
        return is_null != self.negated

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.sql()} {suffix}"

    def __str__(self) -> str:
        suffix = "≠ NULL" if self.negated else "= NULL"
        return f"{self.operand} {suffix}"


def conjuncts(expr: Expr) -> List[Expr]:
    """The top-level AND-factors of ``expr`` (itself, if not an And)."""
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(factors: List[Expr]) -> Expr:
    """Rebuild a left-deep conjunction from factors (raises on empty)."""
    if not factors:
        raise ValueError("conjoin needs at least one factor")
    result = factors[0]
    for factor in factors[1:]:
        result = And(result, factor)
    return result


def rename_columns(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """A copy of ``expr`` with column references renamed per ``mapping``.

    Used by the optimizer to push a selection below a ρ: the predicate
    speaks the *renamed* attribute names, so translating it through the
    inverse mapping makes it speak the child's names.
    """
    if isinstance(expr, Col):
        new_name = mapping.get(expr.name, expr.name)
        return expr if new_name == expr.name else Col(new_name)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Cmp):
        return Cmp(
            expr.op,
            rename_columns(expr.left, mapping),
            rename_columns(expr.right, mapping),
        )
    if isinstance(expr, And):
        return And(
            rename_columns(expr.left, mapping),
            rename_columns(expr.right, mapping),
        )
    if isinstance(expr, Or):
        return Or(
            rename_columns(expr.left, mapping),
            rename_columns(expr.right, mapping),
        )
    if isinstance(expr, NotExpr):
        return NotExpr(rename_columns(expr.operand, mapping))
    if isinstance(expr, IsNull):
        return IsNull(rename_columns(expr.operand, mapping), expr.negated)
    raise TypeError(f"cannot rename columns of {type(expr).__name__}")
