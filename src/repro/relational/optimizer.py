"""Rule-based logical optimization of UCQ plans.

The LAV rewriting (paper §2.4, Figure 8) emits a union of conjunctive
queries whose size grows multiplicatively with the wrappers per concept.
The emitted trees are *correct* but naive: selections sit at the top,
every wrapper column survives to the union even when the walk projects
it away, and join order is whatever the walk traversal produced.  This
module closes that gap with a classic three-stage logical optimizer:

1. **Fixpoint rewriting** — local algebraic rules applied bottom-up until
   none fires: selection-conjunction splitting, selection pushdown
   through π/ρ/∪/δ/ε/γ and into the matching join side, rename fusion,
   project fusion, noop elimination, and Distinct/Union flattening with
   duplicate-branch elimination at the UCQ root.
2. **Join reordering** — maximal natural-join clusters are flattened and
   greedily reordered (smallest estimated relation first, always
   preferring a joinable leaf over a cross product) using a
   :class:`CardinalityEstimator` fed from registered base-relation row
   counts.  Reordering is gated by a value-provenance check so the bag
   of *byte-identical* rows is preserved (the lenient join equates 25
   with ``"25"``, and shared columns take the first provider's raw
   value — see :meth:`PlanOptimizer._reorder_acceptable`).
3. **Projection pruning** — a top-down pass that narrows every subtree
   to the columns its ancestors actually consume, so unused wrapper
   columns are cut at the Scan instead of being carried through joins.

All rewrites preserve the result as a bag of rows up to row order (and
byte-identically after the canonical UCQ-root sort that
``MDM.execute`` applies).  :func:`plan_key` is the canonical structural
hash the Executor uses to memoize shared subplans across CQ branches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..obs import get_metrics
from .algebra import (
    Aggregate,
    Catalog,
    Distinct,
    EquiJoin,
    Extend,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    union_all,
)
from .expressions import Expr, conjuncts, rename_columns
from .schema import SchemaError
from .types import AttrType

__all__ = [
    "CardinalityEstimator",
    "OptimizationStats",
    "PlanOptimizer",
    "flatten_union",
    "plan_key",
]


# --------------------------------------------------------------------- #
# canonical structural hashing
# --------------------------------------------------------------------- #


def plan_key(plan: PlanNode, cache: Optional[Dict[int, str]] = None) -> str:
    """Canonical structural key of a plan subtree.

    Two subtrees get the same key iff they are structurally identical
    (same operators, same parameters, same scans), which for immutable
    base relations means they evaluate to the same result — the property
    the Executor's shared-subplan memo relies on.  ``cache`` (id → key)
    makes repeated hashing of a DAG-shaped UCQ linear instead of
    quadratic.
    """
    if cache is not None:
        hit = cache.get(id(plan))
        if hit is not None:
            return hit
    if isinstance(plan, Scan):
        if plan.is_pushed():
            key = (
                f"S({plan.relation_name!r};{plan.filters!r};"
                f"{plan.columns!r};{plan.limit!r})"
            )
        else:
            key = f"S({plan.relation_name!r})"
    elif isinstance(plan, Project):
        key = f"P({plan_key(plan.child, cache)};{plan.names!r})"
    elif isinstance(plan, Select):
        key = f"F({plan_key(plan.child, cache)};{plan.predicate!r})"
    elif isinstance(plan, NaturalJoin):
        key = f"J({plan_key(plan.left, cache)};{plan_key(plan.right, cache)})"
    elif isinstance(plan, EquiJoin):
        key = (
            f"E({plan_key(plan.left, cache)};"
            f"{plan_key(plan.right, cache)};{plan.pairs!r})"
        )
    elif isinstance(plan, Rename):
        key = f"R({plan_key(plan.child, cache)};{plan.mapping!r})"
    elif isinstance(plan, Union):
        key = f"U({plan_key(plan.left, cache)};{plan_key(plan.right, cache)})"
    elif isinstance(plan, Distinct):
        key = f"D({plan_key(plan.child, cache)})"
    elif isinstance(plan, Extend):
        key = f"X({plan_key(plan.child, cache)};{plan.column!r};{plan.value!r})"
    elif isinstance(plan, Aggregate):
        key = (
            f"G({plan_key(plan.child, cache)};"
            f"{plan.group_by!r};{plan.metrics!r})"
        )
    else:  # future operators: fall back to repr (frozen dataclasses)
        key = repr(plan)
    if cache is not None:
        cache[id(plan)] = key
    return key


def flatten_union(plan: PlanNode) -> List[PlanNode]:
    """The non-Union leaves of a (possibly nested) union tree, in order."""
    if isinstance(plan, Union):
        return flatten_union(plan.left) + flatten_union(plan.right)
    return [plan]


def _with_children(plan: PlanNode, kids: Sequence[PlanNode]) -> PlanNode:
    """A copy of ``plan`` with its children replaced, parameters kept."""
    if isinstance(plan, Project):
        return Project(kids[0], plan.names)
    if isinstance(plan, Select):
        return Select(kids[0], plan.predicate)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(kids[0], kids[1])
    if isinstance(plan, EquiJoin):
        return EquiJoin(kids[0], kids[1], plan.pairs)
    if isinstance(plan, Rename):
        return Rename(kids[0], plan.mapping)
    if isinstance(plan, Union):
        return Union(kids[0], kids[1])
    if isinstance(plan, Distinct):
        return Distinct(kids[0])
    if isinstance(plan, Extend):
        return Extend(kids[0], plan.column, plan.value)
    if isinstance(plan, Aggregate):
        return Aggregate(kids[0], plan.group_by, plan.metrics)
    raise TypeError(f"cannot rebuild {type(plan).__name__} with new children")


# --------------------------------------------------------------------- #
# cardinality estimation
# --------------------------------------------------------------------- #


class CardinalityEstimator:
    """Textbook selectivity-based row estimates for plan costing.

    ``row_counts`` maps scan names to known base cardinalities (the MDM
    feeds these from the relations it registers); unknown scans get
    ``default_rows``.  The estimates only need to *rank* join orders, so
    the selectivity constants are the classic System-R style guesses.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        row_counts: Optional[Mapping[str, int]] = None,
        default_rows: float = 1000.0,
    ):
        self.catalog: Catalog = dict(catalog or {})
        self.row_counts: Dict[str, float] = {
            name: float(count) for name, count in (row_counts or {}).items()
        }
        self.default_rows = float(default_rows)

    def rows(self, plan: PlanNode) -> float:
        """Estimated output cardinality of ``plan``."""
        if isinstance(plan, Scan):
            if plan.is_pushed():
                bound = self.row_counts.get(plan.binding_name())
                if bound is not None:
                    return bound
            base = self.row_counts.get(plan.relation_name, self.default_rows)
            for _column, op, _value in plan.filters:
                base *= 0.1 if op == "=" else (0.9 if op == "!=" else 0.3)
            return base
        if isinstance(plan, Select):
            return self.rows(plan.child) * self.selectivity(plan.predicate)
        if isinstance(plan, (Project, Rename, Extend)):
            return self.rows(plan.child)
        if isinstance(plan, Distinct):
            return self.rows(plan.child)
        if isinstance(plan, Union):
            return self.rows(plan.left) + self.rows(plan.right)
        if isinstance(plan, NaturalJoin):
            left = self.rows(plan.left)
            right = self.rows(plan.right)
            if self._is_cross(plan):
                return left * right
            return left * right / max(left, right, 1.0)
        if isinstance(plan, EquiJoin):
            left = self.rows(plan.left)
            right = self.rows(plan.right)
            return left * right / max(left, right, 1.0)
        if isinstance(plan, Aggregate):
            return max(1.0, self.rows(plan.child) * 0.5)
        kids = plan.children()
        return self.rows(kids[0]) if kids else self.default_rows

    def _is_cross(self, plan: NaturalJoin) -> bool:
        """True when the natural join has no shared columns (cartesian)."""
        try:
            left_names = set(plan.left.output_schema(self.catalog).names)
            right_names = set(plan.right.output_schema(self.catalog).names)
        except SchemaError:
            return False
        return not (left_names & right_names)

    def selectivity(self, expr: Expr) -> float:
        """Estimated fraction of rows a predicate keeps."""
        from .expressions import And, Cmp, Col, Const, IsNull, NotExpr, Or

        if isinstance(expr, And):
            return self.selectivity(expr.left) * self.selectivity(expr.right)
        if isinstance(expr, Or):
            a = self.selectivity(expr.left)
            b = self.selectivity(expr.right)
            return min(1.0, a + b - a * b)
        if isinstance(expr, NotExpr):
            return max(0.0, 1.0 - self.selectivity(expr.operand))
        if isinstance(expr, IsNull):
            return 0.9 if expr.negated else 0.1
        if isinstance(expr, Cmp):
            const_side = isinstance(expr.left, Const) or isinstance(
                expr.right, Const
            )
            if expr.op == "=":
                return 0.1 if const_side else 0.25
            if expr.op == "!=":
                return 0.9
            return 0.3
        if isinstance(expr, (Col, Const)):
            return 0.5
        return 0.25


# --------------------------------------------------------------------- #
# optimization statistics
# --------------------------------------------------------------------- #


@dataclass
class OptimizationStats:
    """What the optimizer did to one plan (for EXPLAIN and metrics)."""

    rules: Dict[str, int] = field(default_factory=dict)
    passes: int = 0
    elapsed_s: float = 0.0
    estimated_rows_before: float = 0.0
    estimated_rows_after: float = 0.0

    def count(self, rule: str, n: int = 1) -> None:
        """Record ``n`` applications of ``rule``."""
        self.rules[rule] = self.rules.get(rule, 0) + n

    @property
    def total(self) -> int:
        """Total rule applications across the whole optimization."""
        return sum(self.rules.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-shaped summary."""
        return {
            "rules": dict(sorted(self.rules.items())),
            "total_rules_applied": self.total,
            "passes": self.passes,
            "elapsed_ms": round(self.elapsed_s * 1000.0, 6),
            "estimated_rows_before": round(self.estimated_rows_before, 3),
            "estimated_rows_after": round(self.estimated_rows_after, 3),
        }


# --------------------------------------------------------------------- #
# the optimizer
# --------------------------------------------------------------------- #

#: Join-key types whose raw values are guaranteed identical whenever the
#: lenient join equates them — the only types for which swapping the
#: "first provider" of a shared column cannot change output bytes.
_EXACT_TYPES = (AttrType.INTEGER, AttrType.BOOLEAN)


class PlanOptimizer:
    """Fixpoint rewriter + join reorderer + projection pruner.

    ``catalog`` gives scan schemas (needed for pushdown side tests and
    pruning); ``row_counts`` feeds the cardinality estimator.  The
    optimizer never raises on a plan it cannot improve — any rule whose
    precondition fails (e.g. a schema lookup error on a malformed tree)
    simply does not fire, and the pruning pass bails out wholesale on
    :class:`SchemaError`, returning the unpruned plan.
    """

    MAX_PASSES = 50

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        row_counts: Optional[Mapping[str, int]] = None,
        *,
        pushdown_capabilities: Optional[Mapping[str, frozenset]] = None,
        type_aware: bool = True,
    ):
        self.catalog: Catalog = dict(catalog or {})
        self.estimator = CardinalityEstimator(self.catalog, row_counts)
        #: scan name → wrapper capability set ("filters"/"projection"/
        #: "limit").  When set, σ/π nodes sitting on a capable Scan fold
        #: into the scan itself (the pushdown-extraction rules).
        self.pushdown_capabilities: Optional[Dict[str, frozenset]] = (
            None
            if pushdown_capabilities is None
            else {k: frozenset(v) for k, v in pushdown_capabilities.items()}
        )
        #: False when the catalog carries placeholder (ANY) types — e.g.
        #: the pre-fetch pushdown pass built from wrapper signatures.
        #: Disables the one rewrite whose safety test inspects attribute
        #: types (σ-through-∪), which would vacuously pass on ANY.
        self.type_aware = type_aware

    # -- public entry points ------------------------------------------- #

    def optimize(self, plan: PlanNode) -> Tuple[PlanNode, OptimizationStats]:
        """Optimized plan plus a record of every rule that fired."""
        stats = OptimizationStats()
        started = time.perf_counter()
        stats.estimated_rows_before = self.estimator.rows(plan)
        plan = self._fixpoint(plan, stats)
        plan = self._reorder_everywhere(plan, stats)
        pruned = self._try_prune(plan, stats)
        if pruned is not None:
            plan = pruned
            # Pruning inserts Projects that may now fuse or be noops.
            plan = self._fixpoint(plan, stats)
        stats.estimated_rows_after = self.estimator.rows(plan)
        stats.elapsed_s = time.perf_counter() - started
        self._emit_metrics(stats)
        return plan, stats

    def extract_pushdown(
        self, plan: PlanNode
    ) -> Tuple[PlanNode, OptimizationStats]:
        """The pre-fetch pushdown pass: fold σ/π into capable scans.

        Runs the fixpoint rules (with the fold rules armed via
        ``pushdown_capabilities``) plus projection pruning — but *not*
        join reordering, which needs real row counts that do not exist
        before the fetch.  Meant to be called with a signature-derived
        (ANY-typed) catalog and ``type_aware=False``; every rule that
        fires under those settings is name-based and result-preserving.
        """
        stats = OptimizationStats()
        started = time.perf_counter()
        plan = self._fixpoint(plan, stats)
        pruned = self._try_prune(plan, stats)
        if pruned is not None:
            plan = self._fixpoint(pruned, stats)
        stats.elapsed_s = time.perf_counter() - started
        self._emit_metrics(stats)
        return plan, stats

    @staticmethod
    def _emit_metrics(stats: OptimizationStats) -> None:
        counter = get_metrics().counter(
            "mdm_optimizer_rules_applied_total",
            "Logical-optimizer rule applications, by rule name.",
            labelnames=("rule",),
        )
        for rule, count in stats.rules.items():
            counter.inc(count, rule=rule)

    # -- stage 1: fixpoint rewriting ----------------------------------- #

    def _fixpoint(self, plan: PlanNode, stats: OptimizationStats) -> PlanNode:
        for _ in range(self.MAX_PASSES):
            stats.passes += 1
            plan, changed = self._rewrite(plan, stats)
            if not changed:
                break
        return plan

    def _rewrite(
        self, plan: PlanNode, stats: OptimizationStats
    ) -> Tuple[PlanNode, bool]:
        """One bottom-up pass: rewrite children, then this node."""
        changed = False
        kids = plan.children()
        if kids:
            new_kids = []
            for kid in kids:
                new_kid, kid_changed = self._rewrite(kid, stats)
                changed = changed or kid_changed
                new_kids.append(new_kid)
            if changed:
                plan = _with_children(plan, new_kids)
        rewritten = self._apply_local(plan, stats)
        if rewritten is not None:
            return rewritten, True
        return plan, changed

    def _apply_local(
        self, plan: PlanNode, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        """The first local rule that fires on ``plan``, or None."""
        if isinstance(plan, Select):
            return self._rewrite_select(plan, stats)
        if isinstance(plan, Rename):
            return self._rewrite_rename(plan, stats)
        if isinstance(plan, Project):
            return self._rewrite_project(plan, stats)
        if isinstance(plan, Distinct):
            return self._rewrite_distinct(plan, stats)
        return None

    # Select rules ----------------------------------------------------- #

    def _rewrite_select(
        self, plan: Select, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        factors = conjuncts(plan.predicate)
        if len(factors) > 1:
            # σ_{a∧b}(c) → σ_a(σ_b(c)): each conjunct then pushes on its own.
            node = plan.child
            for factor in reversed(factors):
                node = Select(node, factor)
            stats.count("select_split", len(factors) - 1)
            return node
        child = plan.child
        refs = set(plan.predicate.references())
        if isinstance(child, Scan):
            return self._fold_select_scan(plan, child, stats)
        # A predicate on a column absent from the child's output evaluates
        # to NULL→False rather than erroring, so pushing it somewhere the
        # column *does* exist would change results: every pushdown below
        # requires the referenced columns to be visible at this level.
        if isinstance(child, Project):
            if refs <= set(child.names):
                stats.count("select_pushdown_project")
                return Project(
                    Select(child.child, plan.predicate), child.names
                )
            return None
        if isinstance(child, Rename):
            try:
                visible = set(child.output_schema(self.catalog).names)
            except SchemaError:
                return None
            if not refs <= visible:
                return None
            inverse = {new: old for old, new in child.mapping}
            stats.count("select_pushdown_rename")
            return Rename(
                Select(child.child, rename_columns(plan.predicate, inverse)),
                child.mapping,
            )
        if isinstance(child, Distinct):
            stats.count("select_pushdown_distinct")
            return Distinct(Select(child.child, plan.predicate))
        if isinstance(child, Extend) and child.column not in refs:
            stats.count("select_pushdown_extend")
            return Extend(
                Select(child.child, plan.predicate), child.column, child.value
            )
        if isinstance(child, Union):
            return self._push_select_union(plan, child, stats)
        if isinstance(child, (NaturalJoin, EquiJoin)):
            return self._push_select_join(plan, child, refs, stats)
        if isinstance(child, Aggregate):
            if child.group_by and refs and refs <= set(child.group_by):
                stats.count("select_pushdown_aggregate")
                return Aggregate(
                    Select(child.child, plan.predicate),
                    child.group_by,
                    child.metrics,
                )
        return None

    # Pushdown-extraction rules (armed via ``pushdown_capabilities``) --- #

    #: Mirror ops for flipping ``Const op Col`` into ``Col op Const``.
    _FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}

    #: Constant types a pushed filter may carry across the boundary.
    _PUSHABLE_VALUE_TYPES = (str, int, float, bool, type(None))

    @classmethod
    def _pushable_conjunct(cls, expr: Expr) -> Optional[Tuple[str, str, object]]:
        """``(column, op, value)`` if ``expr`` is a pushable comparison."""
        from .expressions import Cmp, Col, Const

        if not isinstance(expr, Cmp):
            return None
        op = expr.op
        if isinstance(expr.left, Col) and isinstance(expr.right, Const):
            column, value = expr.left.name, expr.right.value
        elif isinstance(expr.left, Const) and isinstance(expr.right, Col):
            column, value = expr.right.name, expr.left.value
            op = cls._FLIPPED_OPS[op]
        else:
            return None
        if not isinstance(value, cls._PUSHABLE_VALUE_TYPES):
            return None
        return (column, op, value)

    def _fold_select_scan(
        self, plan: Select, child: Scan, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        """σ(Scan) → Scan with the conjunct folded into pushed filters.

        Only fires when the wrapper declared the ``filters`` capability
        and the conjunct is a simple column/constant comparison over a
        column visible in the scan's *output* (a pushed filter evaluates
        against the base row, where a projected-away column would wrongly
        come back to life).
        """
        if self.pushdown_capabilities is None:
            return None
        caps = self.pushdown_capabilities.get(child.relation_name)
        if not caps or "filters" not in caps:
            return None
        if child.limit is not None:
            # The pushed limit truncates *after* the scan's own filters;
            # folding a further filter underneath it would change which
            # rows the cap keeps.
            return None
        conjunct = self._pushable_conjunct(plan.predicate)
        if conjunct is None:
            return None
        try:
            visible = set(child.output_schema(self.catalog).names)
        except SchemaError:
            return None
        if conjunct[0] not in visible:
            return None
        from .algebra import canonical_scan_filters

        folded = canonical_scan_filters(child.filters + (conjunct,))
        stats.count("select_pushed_into_scan")
        return Scan(child.relation_name, folded, child.columns)

    def _fold_project_scan(
        self, plan: Project, child: Scan, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        """π(Scan) → Scan with the needed-column list pushed down."""
        if self.pushdown_capabilities is None:
            return None
        caps = self.pushdown_capabilities.get(child.relation_name)
        if not caps or "projection" not in caps:
            return None
        try:
            current = child.output_schema(self.catalog).names
        except SchemaError:
            return None
        if plan.names == current:
            return None  # the noop rule drops this Project instead
        if not set(plan.names) <= set(current):
            return None
        stats.count("project_pushed_into_scan")
        return Scan(
            child.relation_name, child.filters, tuple(plan.names), child.limit
        )

    def _push_select_union(
        self, plan: Select, child: Union, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        """σ(l ∪ r) → σ(l) ∪ σ(r), but only when safe under widening.

        The union coerces both branches to a widened common type before
        the predicate would see the rows; below the union the predicate
        sees each branch's raw values.  Only push when every referenced
        column already has the widened type on both sides, so the values
        the predicate evaluates are unchanged.  Requires a type-aware
        catalog: on placeholder (ANY) schemas the test would vacuously
        pass, so a type-blind optimizer never fires this rule.
        """
        if not self.type_aware:
            return None
        refs = plan.predicate.references()
        try:
            left_schema = child.left.output_schema(self.catalog)
            right_schema = child.right.output_schema(self.catalog)
            widened = left_schema.widen(right_schema)
            for name in refs:
                attr = widened.attribute(name)
                if (
                    left_schema.attribute(name).type != attr.type
                    or right_schema.attribute(name).type != attr.type
                ):
                    return None
        except SchemaError:
            return None
        stats.count("select_pushdown_union")
        return Union(
            Select(child.left, plan.predicate),
            Select(child.right, plan.predicate),
        )

    def _push_select_join(
        self,
        plan: Select,
        child: PlanNode,
        refs: Set[str],
        stats: OptimizationStats,
    ) -> Optional[PlanNode]:
        """Push σ into the join side that provides all referenced values.

        Left always wins shared columns in the output, so a predicate
        over left names can always move left; it may only move right when
        every referenced column is provided *exclusively* by the right
        side (otherwise it would filter on right values the output never
        exposes).
        """
        if not refs:
            return None
        try:
            left_names = set(child.left.output_schema(self.catalog).names)
            right_names = set(child.right.output_schema(self.catalog).names)
        except SchemaError:
            return None
        if refs <= left_names:
            stats.count("select_pushdown_join_left")
            return _with_children(
                child, (Select(child.left, plan.predicate), child.right)
            )
        if refs <= (right_names - left_names):
            stats.count("select_pushdown_join_right")
            return _with_children(
                child, (child.left, Select(child.right, plan.predicate))
            )
        return None

    # Rename rules ----------------------------------------------------- #

    def _rewrite_rename(
        self, plan: Rename, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        if all(old == new for old, new in plan.mapping):
            stats.count("rename_noop_dropped")
            return plan.child
        child = plan.child
        if isinstance(child, Rename):
            # ρ_outer(ρ_inner(c)) → one ρ with the composed mapping,
            # computed against the child's actual schema so renames of
            # renamed-away names cannot sneak in.
            try:
                base = child.child.output_schema(self.catalog)
            except SchemaError:
                return None
            inner = child.mapping_dict()
            outer = plan.mapping_dict()
            composed = {}
            for name in base.names:
                mid = inner.get(name, name)
                final = outer.get(mid, mid)
                if final != name:
                    composed[name] = final
            stats.count("rename_fused")
            if not composed:
                return child.child
            return Rename.from_dict(child.child, composed)
        return None

    # Project rules ---------------------------------------------------- #

    def _rewrite_project(
        self, plan: Project, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        child = plan.child
        if isinstance(child, Project):
            stats.count("project_fused")
            return Project(child.child, plan.names)
        if isinstance(child, Scan):
            folded = self._fold_project_scan(plan, child, stats)
            if folded is not None:
                return folded
        try:
            if plan.names == child.output_schema(self.catalog).names:
                stats.count("project_noop_dropped")
                return child
        except SchemaError:
            return None
        if isinstance(child, Rename) and isinstance(child.child, Scan):
            return self._push_project_rename(plan, child, stats)
        return None

    def _push_project_rename(
        self, plan: Project, child: Rename, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        """π(ρ(Scan)) → ρ(π(Scan)), only to expose a pushable Scan.

        As a general rewrite the swap is cosmetic, so it is gated on a
        projection-capable Scan directly under the rename: there it lets
        the inner Project fold into the Scan on the next pass, carrying
        the column list across the wrapper boundary.
        """
        scan = child.child
        if self.pushdown_capabilities is None:
            return None
        caps = self.pushdown_capabilities.get(scan.relation_name)
        if not caps or "projection" not in caps:
            return None
        try:
            renamed_visible = child.output_schema(self.catalog).names
        except SchemaError:
            return None
        if not set(plan.names) <= set(renamed_visible):
            return None
        inverse = {new: old for old, new in child.mapping}
        pre = tuple(inverse.get(name, name) for name in plan.names)
        if len(set(pre)) != len(pre):
            return None
        kept = {
            old: new for old, new in child.mapping if old in set(pre)
        }
        stats.count("project_pushdown_rename")
        projected = Project(scan, pre)
        if not kept:
            return projected
        return Rename.from_dict(projected, kept)

    # Distinct rules --------------------------------------------------- #

    def _rewrite_distinct(
        self, plan: Distinct, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        child = plan.child
        if isinstance(child, Distinct):
            stats.count("distinct_fused")
            return child
        if isinstance(child, Union):
            # δ absorbs branch multiplicity: flatten the union and drop
            # structurally identical CQ branches (the UCQ-root rule).
            branches = flatten_union(child)
            cache: Dict[int, str] = {}
            seen: Set[str] = set()
            unique: List[PlanNode] = []
            for branch in branches:
                key = plan_key(branch, cache)
                if key not in seen:
                    seen.add(key)
                    unique.append(branch)
            rebuilt = Distinct(union_all(unique))
            if len(unique) < len(branches):
                stats.count(
                    "union_branch_deduped", len(branches) - len(unique)
                )
                return rebuilt
            if rebuilt != plan:
                # Same branches, non-canonical nesting: normalize to the
                # left-deep shape so structural memo keys line up.
                stats.count("union_flattened")
                return rebuilt
        return None

    # -- stage 2: join reordering -------------------------------------- #

    def _reorder_everywhere(
        self, plan: PlanNode, stats: OptimizationStats
    ) -> PlanNode:
        """Reorder every maximal NaturalJoin cluster, bottom-up."""
        kids = plan.children()
        if kids:
            new_kids = [self._reorder_everywhere(k, stats) for k in kids]
            if any(n is not o for n, o in zip(new_kids, kids)):
                plan = _with_children(plan, new_kids)
        if isinstance(plan, NaturalJoin):
            return self._reorder_cluster(plan, stats)
        return plan

    def _join_leaves(self, plan: PlanNode) -> List[PlanNode]:
        """Leaves of a natural-join cluster, in original left-to-right order."""
        if isinstance(plan, NaturalJoin):
            return self._join_leaves(plan.left) + self._join_leaves(plan.right)
        return [plan]

    def _reorder_cluster(
        self, cluster: NaturalJoin, stats: OptimizationStats
    ) -> PlanNode:
        leaves = self._join_leaves(cluster)
        if len(leaves) < 3:
            return cluster
        try:
            original_names = cluster.output_schema(self.catalog).names
            leaf_names = [
                tuple(leaf.output_schema(self.catalog).names) for leaf in leaves
            ]
            leaf_types = [
                {a.name: a.type for a in leaf.output_schema(self.catalog)}
                for leaf in leaves
            ]
        except SchemaError:
            return cluster
        order = self._greedy_order(leaves, leaf_names)
        if order == list(range(len(leaves))):
            return cluster
        if not self._reorder_acceptable(order, leaf_names, leaf_types):
            return cluster
        new_tree: PlanNode = leaves[order[0]]
        for index in order[1:]:
            new_tree = NaturalJoin(new_tree, leaves[index])
        if self._chain_cost(new_tree) >= self._chain_cost(cluster):
            return cluster
        stats.count("joins_reordered")
        # Restore the original column order so parents see the same schema.
        return Project(new_tree, original_names)

    def _greedy_order(
        self,
        leaves: Sequence[PlanNode],
        leaf_names: Sequence[Tuple[str, ...]],
    ) -> List[int]:
        """Greedy join order: smallest first, joinable before cross."""
        sizes = [self.estimator.rows(leaf) for leaf in leaves]
        remaining = list(range(len(leaves)))
        start = min(remaining, key=lambda i: (sizes[i], i))
        order = [start]
        remaining.remove(start)
        bound: Set[str] = set(leaf_names[start])
        while remaining:
            joinable = [
                i for i in remaining if bound & set(leaf_names[i])
            ]
            pool = joinable if joinable else remaining
            nxt = min(pool, key=lambda i: (sizes[i], i))
            order.append(nxt)
            remaining.remove(nxt)
            bound |= set(leaf_names[nxt])
        return order

    @staticmethod
    def _reorder_acceptable(
        order: Sequence[int],
        leaf_names: Sequence[Tuple[str, ...]],
        leaf_types: Sequence[Dict[str, "AttrType"]],
    ) -> bool:
        """Can this reorder change output bytes?  Reject if it might.

        In a left-deep chain a column shared by several leaves takes the
        *first* provider's raw value.  The reorder is value-preserving
        for a multi-provider column when either (a) all providers carry
        an exact-representation type (INTEGER/BOOLEAN, where lenient join
        equality implies identical raw values), or (b) the first provider
        is the same leaf before and after.
        """
        providers: Dict[str, List[int]] = {}
        for index, names in enumerate(leaf_names):
            for name in names:
                providers.setdefault(name, []).append(index)
        for name, owner_list in providers.items():
            if len(owner_list) < 2:
                continue
            types = {leaf_types[i].get(name) for i in owner_list}
            if len(types) == 1 and next(iter(types)) in _EXACT_TYPES:
                continue
            original_first = min(owner_list)
            new_first = min(owner_list, key=order.index)
            if new_first != original_first:
                return False
        return True

    def _chain_cost(self, plan: PlanNode) -> float:
        """Sum of estimated intermediate sizes across a join chain."""
        if not isinstance(plan, NaturalJoin):
            return self.estimator.rows(plan)
        return self._chain_cost(plan.left) + self.estimator.rows(plan)

    # -- stage 3: projection pruning ----------------------------------- #

    def _try_prune(
        self, plan: PlanNode, stats: OptimizationStats
    ) -> Optional[PlanNode]:
        try:
            return self._prune(plan, None, stats)
        except SchemaError:
            return None

    def _prune(
        self,
        plan: PlanNode,
        needed: Optional[Set[str]],
        stats: OptimizationStats,
    ) -> PlanNode:
        """Narrow ``plan`` to (a superset of) the ``needed`` columns.

        Contract: with ``needed=None`` the output schema is exactly the
        original; with a set, the output keeps original column order and
        satisfies ``needed ∩ original ⊆ output ⊆ original``.  Values of
        surviving columns are byte-identical to the naive plan's.
        """
        if isinstance(plan, Scan):
            if needed is None:
                return plan
            names = plan.output_schema(self.catalog).names
            keep = tuple(n for n in names if n in needed)
            if not keep or keep == names:
                return plan
            stats.count("scan_columns_pruned", len(names) - len(keep))
            return Project(plan, keep)
        if isinstance(plan, Project):
            if needed is None:
                keep = plan.names
            else:
                keep = tuple(n for n in plan.names if n in needed)
                if not keep:
                    keep = plan.names
            child = self._prune(plan.child, set(keep), stats)
            if len(keep) < len(plan.names):
                stats.count("project_narrowed")
            return Project(child, keep)
        if isinstance(plan, Select):
            child_needed = (
                None
                if needed is None
                else needed | set(plan.predicate.references())
            )
            return Select(
                self._prune(plan.child, child_needed, stats), plan.predicate
            )
        if isinstance(plan, Rename):
            mapping = plan.mapping_dict()
            if needed is None:
                child_needed = None
            else:
                inverse = {new: old for old, new in plan.mapping}
                child_needed = {inverse.get(n, n) for n in needed}
            child = self._prune(plan.child, child_needed, stats)
            surviving = set(child.output_schema(self.catalog).names)
            kept_mapping = {
                old: new for old, new in mapping.items() if old in surviving
            }
            if not kept_mapping:
                return child
            return Rename.from_dict(child, kept_mapping)
        if isinstance(plan, Extend):
            if needed is not None and plan.column not in needed:
                stats.count("extend_dropped")
                return self._prune(plan.child, needed, stats)
            child_needed = None if needed is None else needed - {plan.column}
            return Extend(
                self._prune(plan.child, child_needed, stats),
                plan.column,
                plan.value,
            )
        if isinstance(plan, Distinct):
            # δ dedupes on the full row; pruning below it would change
            # multiplicities, so the subtree keeps its full width.
            return Distinct(self._prune(plan.child, None, stats))
        if isinstance(plan, Union):
            left = self._prune(plan.left, needed, stats)
            right = self._prune(plan.right, needed, stats)
            left_names = left.output_schema(self.catalog).names
            right_names = right.output_schema(self.catalog).names
            if left_names == right_names:
                return Union(left, right)
            # Realign independently pruned branches on their common columns.
            common = set(left_names) & set(right_names)
            target = tuple(n for n in left_names if n in common)
            if not target:
                return plan
            if left_names != target:
                left = Project(left, target)
            if right_names != target:
                right = Project(right, target)
            return Union(left, right)
        if isinstance(plan, NaturalJoin):
            left_names = plan.left.output_schema(self.catalog).names
            right_names = plan.right.output_schema(self.catalog).names
            shared = set(left_names) & set(right_names)
            if needed is None:
                left_needed = None
                right_needed = None
            else:
                left_needed = (needed & set(left_names)) | shared
                right_needed = (needed & set(right_names)) | shared
            return NaturalJoin(
                self._prune(plan.left, left_needed, stats),
                self._prune(plan.right, right_needed, stats),
            )
        if isinstance(plan, EquiJoin):
            left_names = plan.left.output_schema(self.catalog).names
            right_names = plan.right.output_schema(self.catalog).names
            collisions = set(left_names) & set(right_names)
            if needed is None:
                left_needed = None
                right_needed = None
            else:
                # Both sides keep the join keys; the left additionally
                # keeps every colliding name so the "right column dropped
                # on collision" mask — and with it value provenance —
                # stays exactly as in the naive plan.
                left_needed = (
                    (needed & set(left_names))
                    | {l for l, _ in plan.pairs}
                    | collisions
                )
                right_needed = (
                    (needed & set(right_names))
                    | {r for _, r in plan.pairs}
                    | collisions
                )
            return EquiJoin(
                self._prune(plan.left, left_needed, stats),
                self._prune(plan.right, right_needed, stats),
                plan.pairs,
            )
        if isinstance(plan, Aggregate):
            child_needed = set(plan.group_by) | {
                column for _, column, _ in plan.metrics if column != "*"
            }
            return Aggregate(
                self._prune(plan.child, child_needed, stats),
                plan.group_by,
                plan.metrics,
            )
        return plan
