"""Relations: immutable bags of typed tuples under a schema.

A :class:`Relation` is the unit of data exchanged between wrappers and the
federated executor (the stand-in for the paper's "temporal SQLite tables",
§2.5).  Rows are plain tuples aligned with the schema; helper constructors
build relations from dict rows (wrapper output) with type inference.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .schema import Attribute, RelationSchema, SchemaError
from .types import AttrType, coerce, common_type, infer_type

__all__ = ["Relation"]

Row = Tuple[Any, ...]


class Relation:
    """A named bag of rows with a :class:`RelationSchema`."""

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any]] = (),
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.name = name
        width = len(schema)
        checked: List[Row] = []
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise SchemaError(
                    f"row width {len(row_tuple)} != schema width {width}: {row_tuple!r}"
                )
            checked.append(row_tuple)
        # Frozen after validation: relations are shared across caches and
        # concurrent queries, so the row store must be immutable.
        self._rows: Tuple[Row, ...] = tuple(checked)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dicts(
        cls,
        records: Sequence[Dict[str, Any]],
        attribute_order: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from dict rows, inferring column types.

        ``attribute_order`` fixes the column order (and the full column
        set — missing keys become NULL); without it, columns appear in
        first-seen order across the records.
        """
        if attribute_order is None:
            seen: List[str] = []
            seen_set = set()
            for record in records:
                for key in record:
                    if key not in seen_set:
                        seen_set.add(key)
                        seen.append(key)
            attribute_order = seen
        names = list(attribute_order)
        # Single pass over the records: track each column's running
        # common type, and which columns ever saw two different concrete
        # types.  A column with one concrete type needs no coercion at
        # all — coerce(v, T) is the identity whenever infer_type(v) is T
        # (and None passes through) — which is the overwhelmingly common
        # case on the wrapper-fetch hot path.
        types: Dict[str, AttrType] = {n: AttrType.ANY for n in names}
        mixed: set = set()
        for record in records:
            for key in names:
                inferred = infer_type(record.get(key))
                if inferred is AttrType.ANY:
                    continue  # NULL observes nothing
                current = types[key]
                if current is AttrType.ANY:
                    types[key] = inferred
                elif inferred is not current:
                    types[key] = common_type(current, inferred)
                    mixed.add(key)
        schema = RelationSchema(Attribute(n, types[n]) for n in names)
        if not mixed:
            rows = [tuple(record.get(n) for n in names) for record in records]
            return cls(schema, rows, name=name)
        # Coerce only the mixed columns so a relation's rows always
        # conform to its schema (a mixed int/str column becomes
        # all-string, exactly as a widening union would make it).
        mixed_at = [(i, types[n]) for i, n in enumerate(names) if n in mixed]
        rows = []
        for record in records:
            cells = [record.get(n) for n in names]
            for index, target in mixed_at:
                cells[index] = coerce(cells[index], target)
            rows.append(tuple(cells))
        return cls(schema, rows, name=name)

    @classmethod
    def empty(cls, schema: RelationSchema, name: Optional[str] = None) -> "Relation":
        """An empty relation over ``schema``."""
        return cls(schema, (), name=name)

    # ------------------------------------------------------------------ #
    # row access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def rows(self) -> Tuple[Row, ...]:
        """The rows as an immutable tuple of tuples.

        Immutability is load-bearing: cached relations (result cache,
        wrapper cache, executor memo) are handed to multiple queries
        concurrently, and a caller-side ``append`` on a shared list
        would silently corrupt every later read.
        """
        return self._rows

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by attribute name."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self._rows]

    def distinct(self) -> "Relation":
        """A duplicate-free copy preserving first-occurrence order."""
        seen = set()
        unique: List[Row] = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Relation(self.schema, unique, name=self.name)

    def without_subsumed(self, optional_columns: Sequence[str]) -> "Relation":
        """Drop rows subsumed by a more-informative row.

        Row ``r`` is subsumed by ``r'`` when they agree on every column
        outside ``optional_columns`` and, on the optional columns, ``r``
        is NULL wherever it differs from ``r'`` (and strictly less
        informative overall).  This is the minimal-union semantics for
        incomplete information — what makes NULL-padded OPTIONAL branches
        of a UCQ behave like SPARQL OPTIONAL.
        """
        optional_indices = [self.schema.index_of(n) for n in optional_columns]
        if not optional_indices:
            return self
        mandatory_indices = [
            i for i in range(len(self.schema)) if i not in optional_indices
        ]
        groups: Dict[Tuple, List[Row]] = {}
        order: List[Tuple] = []
        for row in self._rows:
            key = tuple(row[i] for i in mandatory_indices)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        def subsumes(better: Row, worse: Row) -> bool:
            strictly = False
            for i in optional_indices:
                if worse[i] is None:
                    if better[i] is not None:
                        strictly = True
                elif worse[i] != better[i]:
                    return False
            return strictly

        kept: List[Row] = []
        for key in order:
            members = groups[key]
            for row in members:
                if not any(
                    other is not row and subsumes(other, row)
                    for other in members
                ):
                    kept.append(row)
        return Relation(self.schema, kept, name=self.name)

    def sorted(self) -> "Relation":
        """Rows sorted canonically (None first) — for stable display/tests."""

        def key(row: Row):
            return tuple((value is not None, str(value)) for value in row)

        return Relation(self.schema, sorted(self._rows, key=key), name=self.name)

    def coerced(self, target: RelationSchema) -> "Relation":
        """Rows coerced cell-by-cell to ``target``'s types (same names)."""
        if self.schema.names != target.names:
            raise SchemaError(
                f"cannot coerce {list(self.schema.names)} to {list(target.names)}"
            )
        coerced_rows = [
            tuple(
                coerce(value, attr.type)
                for value, attr in zip(row, target.attributes)
            )
            for row in self._rows
        ]
        return Relation(target, coerced_rows, name=self.name)

    def equal_as_set(self, other: "Relation") -> bool:
        """Set equality over rows (schema names must match)."""
        return (
            self.schema.names == other.schema.names
            and set(self._rows) == set(other._rows)
        )

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #

    def to_table(self, max_width: int = 40) -> str:
        """Aligned text rendering (MDM's tabular query output, Table 1)."""
        headers = list(self.schema.names)
        body: List[List[str]] = []
        for row in self._rows:
            rendered = []
            for cell in row:
                text = "NULL" if cell is None else str(cell)
                if len(text) > max_width:
                    text = text[: max_width - 1] + "…"
                rendered.append(text)
            body.append(rendered)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

        lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in body)
        return "\n".join(lines)

    def __repr__(self) -> str:
        label = self.name or "?"
        return f"<Relation {label}({', '.join(self.schema.names)}) with {len(self)} rows>"
