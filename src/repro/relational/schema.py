"""Relation schemas: ordered, typed attribute lists.

A :class:`RelationSchema` is an ordered sequence of ``(name, type)`` pairs
with unique names.  Schemas support the operations the algebra needs:
projection, renaming, union compatibility and natural-join splitting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from .types import AttrType, common_type

__all__ = ["Attribute", "RelationSchema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for malformed schemas or incompatible schema operations."""


class Attribute:
    """A named, typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: AttrType = AttrType.ANY):
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string: {name!r}")
        self.name = name
        self.type = type

    def renamed(self, new_name: str) -> "Attribute":
        """A copy with a different name."""
        return Attribute(new_name, self.type)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and other.name == self.name
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.type})"


class RelationSchema:
    """An ordered list of uniquely named attributes."""

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        names = [a.name for a in self._attributes]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(self._attributes)}

    @classmethod
    def of(cls, *names: str) -> "RelationSchema":
        """Shorthand: a schema of untyped attributes from names."""
        return cls(Attribute(n) for n in names)

    @classmethod
    def typed(cls, pairs: Sequence[Tuple[str, AttrType]]) -> "RelationSchema":
        """A schema from ``(name, type)`` pairs."""
        return cls(Attribute(n, t) for n, t in pairs)

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in order."""
        return tuple(a.name for a in self._attributes)

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes in order."""
        return self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self.names)}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """The attribute called ``name``."""
        return self._attributes[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "RelationSchema":
        """Schema restricted (and reordered) to ``names``."""
        return RelationSchema(self.attribute(n) for n in names)

    def rename(self, mapping: Dict[str, str]) -> "RelationSchema":
        """Schema with attributes renamed per ``mapping`` (others kept)."""
        missing = set(mapping) - set(self.names)
        if missing:
            raise SchemaError(f"cannot rename unknown attributes: {sorted(missing)}")
        renamed = [
            a.renamed(mapping[a.name]) if a.name in mapping else a
            for a in self._attributes
        ]
        return RelationSchema(renamed)

    def union_compatible(self, other: "RelationSchema") -> bool:
        """Same attribute names in the same order (types may widen)."""
        return self.names == other.names

    def widen(self, other: "RelationSchema") -> "RelationSchema":
        """Positionally widen the types against a union-compatible schema."""
        if not self.union_compatible(other):
            raise SchemaError(
                f"schemas not union-compatible: {list(self.names)} vs {list(other.names)}"
            )
        return RelationSchema(
            Attribute(a.name, common_type(a.type, b.type))
            for a, b in zip(self._attributes, other._attributes)
        )

    def join_split(
        self, other: "RelationSchema"
    ) -> Tuple[List[str], "RelationSchema"]:
        """For a natural join: (shared names, combined result schema).

        The result keeps this schema's attributes in order, then the
        non-shared attributes of ``other``.
        """
        shared = [n for n in self.names if n in other]
        combined = list(self._attributes) + [
            a for a in other._attributes if a.name not in self._index
        ]
        return shared, RelationSchema(combined)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and other._attributes == self._attributes
        )

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.type}" for a in self._attributes)
        return f"RelationSchema({cols})"
