"""Rendering algebra plans as SQL.

MDM's backend loads wrapper fragments into temporal SQLite tables and runs
the federated query there (paper §2.5).  This module renders an operator
tree into the SQL that *would* be shipped to SQLite, both for
documentation (the demo shows the generated expression to the analyst)
and for tests asserting plan shape.
"""

from __future__ import annotations


from .algebra import (
    Aggregate,
    Extend,
    Distinct,
    EquiJoin,
    NaturalJoin,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)

__all__ = ["to_sql"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class _SqlBuilder:
    """Builds a SELECT statement per plan subtree, nesting as needed."""

    def __init__(self):
        self._alias_counter = 0

    def _alias(self) -> str:
        self._alias_counter += 1
        return f"t{self._alias_counter}"

    def render(self, plan: PlanNode) -> str:
        if isinstance(plan, Scan):
            return f"SELECT * FROM {_quote(plan.relation_name)}"
        if isinstance(plan, Project):
            inner = self.render(plan.child)
            cols = ", ".join(_quote(n) for n in plan.names)
            return f"SELECT {cols} FROM ({inner}) AS {self._alias()}"
        if isinstance(plan, Select):
            inner = self.render(plan.child)
            return (
                f"SELECT * FROM ({inner}) AS {self._alias()} "
                f"WHERE {plan.predicate.sql()}"
            )
        if isinstance(plan, Distinct):
            inner = self.render(plan.child)
            return f"SELECT DISTINCT * FROM ({inner}) AS {self._alias()}"
        if isinstance(plan, Rename):
            inner = self.render(plan.child)
            mapping = plan.mapping_dict()
            # Without child schema knowledge we select renamed columns
            # explicitly plus everything else via *; SQLite tolerates this
            # only when names are unique, so emit only the renames when the
            # child is a Scan whose schema we cannot see.  To stay
            # deterministic we render the renames and rely on the executor
            # for faithful semantics.
            cols = ", ".join(
                f"{_quote(old)} AS {_quote(new)}" for old, new in sorted(mapping.items())
            )
            return f"SELECT {cols} FROM ({inner}) AS {self._alias()}"
        if isinstance(plan, NaturalJoin):
            left = self.render(plan.left)
            right = self.render(plan.right)
            return (
                f"SELECT * FROM ({left}) AS {self._alias()} "
                f"NATURAL JOIN ({right}) AS {self._alias()}"
            )
        if isinstance(plan, EquiJoin):
            left = self.render(plan.left)
            right = self.render(plan.right)
            left_alias = self._alias()
            right_alias = self._alias()
            conditions = " AND ".join(
                f"{left_alias}.{_quote(l)} = {right_alias}.{_quote(r)}"
                for l, r in plan.pairs
            )
            return (
                f"SELECT * FROM ({left}) AS {left_alias} "
                f"JOIN ({right}) AS {right_alias} ON {conditions}"
            )
        if isinstance(plan, Union):
            left = self.render(plan.left)
            right = self.render(plan.right)
            return f"{left} UNION ALL {right}"
        if isinstance(plan, Aggregate):
            inner = self.render(plan.child)
            select_parts = [_quote(n) for n in plan.group_by]
            for function, column, alias in plan.metrics:
                operand = "*" if column == "*" else _quote(column)
                select_parts.append(
                    f"{function.upper()}({operand}) AS {_quote(alias)}"
                )
            sql = (
                f"SELECT {', '.join(select_parts)} FROM ({inner}) "
                f"AS {self._alias()}"
            )
            if plan.group_by:
                sql += " GROUP BY " + ", ".join(_quote(n) for n in plan.group_by)
            return sql
        if isinstance(plan, Extend):
            inner = self.render(plan.child)
            from .expressions import Const

            value_sql = Const(plan.value).sql()
            return (
                f"SELECT *, {value_sql} AS {_quote(plan.column)} "
                f"FROM ({inner}) AS {self._alias()}"
            )
        raise TypeError(f"unknown plan node {plan!r}")


def to_sql(plan: PlanNode) -> str:
    """The SQL text equivalent of ``plan`` (SQLite dialect)."""
    return _SqlBuilder().render(plan)
