"""Attribute types for the relational engine.

Wrapper outputs (paper §2.2) are flat, first-normal-form tuples whose cells
are strings, numbers, booleans or NULL.  The small type lattice here
supports schema inference from sample rows and safe coercion when loading
heterogeneous wrapper payloads into relations.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

__all__ = ["AttrType", "infer_type", "coerce", "common_type"]


class AttrType(enum.Enum):
    """The cell types a relation column may carry."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    #: Unknown/any — a column with no non-null observations.
    ANY = "any"

    def __str__(self) -> str:
        return self.value


def infer_type(value: Any) -> AttrType:
    """The :class:`AttrType` of a single Python value (None → ANY)."""
    if value is None:
        return AttrType.ANY
    if isinstance(value, bool):
        return AttrType.BOOLEAN
    if isinstance(value, int):
        return AttrType.INTEGER
    if isinstance(value, float):
        return AttrType.FLOAT
    if isinstance(value, str):
        return AttrType.STRING
    raise TypeError(f"unsupported relational value: {value!r} ({type(value).__name__})")


#: Numeric widening order used by :func:`common_type`.
_WIDEN = {
    (AttrType.INTEGER, AttrType.FLOAT): AttrType.FLOAT,
    (AttrType.FLOAT, AttrType.INTEGER): AttrType.FLOAT,
}


def common_type(a: AttrType, b: AttrType) -> AttrType:
    """The least common type of two cell types (STRING is the top)."""
    if a == b:
        return a
    if a == AttrType.ANY:
        return b
    if b == AttrType.ANY:
        return a
    widened = _WIDEN.get((a, b))
    if widened is not None:
        return widened
    return AttrType.STRING


def coerce(value: Any, target: AttrType) -> Optional[Any]:
    """Coerce ``value`` to ``target``; None passes through.

    Raises :class:`ValueError` when the coercion loses meaning (e.g.
    ``"abc"`` to INTEGER); numeric strings convert cleanly since REST
    payloads frequently stringify numbers.
    """
    if value is None:
        return None
    if target == AttrType.ANY:
        return value
    if target == AttrType.STRING:
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    if target == AttrType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            return int(value.strip())
        raise ValueError(f"cannot coerce {value!r} to integer")
    if target == AttrType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            return float(value.strip())
        raise ValueError(f"cannot coerce {value!r} to float")
    if target == AttrType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no"):
                return False
        raise ValueError(f"cannot coerce {value!r} to boolean")
    raise ValueError(f"unknown target type {target!r}")
