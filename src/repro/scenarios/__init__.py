"""Ready-made end-to-end scenarios used by examples, tests and benchmarks."""

from .football import (
    COUNTRY,
    FEATURES,
    LEAGUE,
    PLAYER,
    RELATIONS,
    TEAM,
    FootballScenario,
    football_uml,
)
from .supersede import SUP, SupersedeScenario

__all__ = [
    "FootballScenario",
    "football_uml",
    "PLAYER",
    "TEAM",
    "LEAGUE",
    "COUNTRY",
    "FEATURES",
    "RELATIONS",
    "SupersedeScenario",
    "SUP",
]
