"""A deliberately mis-governed MDM instance for exercising ``mdm lint``.

:func:`broken_mdm` builds a small but *valid* deployment, then corrupts
it by mutating the graphs directly — the same damage an out-of-band
TDB edit, a partial migration, or a buggy import script would cause.
Every corruption is one lint rule's triggering fixture; the expected
codes are listed in :data:`EXPECTED_CODES` so tests and the CLI demo can
assert each rule demonstrably fires.

The registration-time guards in :mod:`repro.core` would reject all of
this — which is exactly the point: lint is the safety net for state
those guards never saw.
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.mdm import MDM
from ..rdf.namespaces import EX, OWL, RDF, RDFS
from ..rdf.terms import Triple
from ..sources.wrappers import StaticWrapper

__all__ = ["broken_mdm", "EXPECTED_CODES"]

#: Rule codes the seeded-broken instance is guaranteed to trigger.
EXPECTED_CODES: FrozenSet[str] = frozenset(
    {
        "MDM001",  # foreign triple in a named graph
        "MDM002",  # sameAs target outside the named graph
        "MDM003",  # unmapped wrapper attribute
        "MDM004",  # concept without an identifier feature
        "MDM005",  # concept covered by no mapping
        "MDM006",  # feature belonging to no concept
        "MDM007",  # subClassOf cycle between concepts
        "MDM008",  # one attribute sameAs-linked to two features
        "MDM009",  # registered wrapper without a mapping
        "MDM010",  # saved query that no longer rewrites
        "MDM011",  # mapped wrapper without a runtime object
        "MDM014",  # disconnected named graph
        "MDM019",  # mapped wrapper whose named graph touches no concept
        "MDM020",  # saved query pinned to a superseded release
    }
)


def broken_mdm() -> MDM:
    """An MDM instance seeded with one violation per lint rule."""
    mdm = MDM()

    # -- a minimal healthy core: Person and Account, one wrapper each -- #
    person = EX.Person
    account = EX.Account
    mdm.add_concept(person, "Person")
    mdm.add_identifier(EX.personId, person, "personId")
    mdm.add_feature(EX.personName, person, "personName")
    mdm.add_concept(account, "Account")
    mdm.add_identifier(EX.accountId, account, "accountId")
    mdm.relate(person, EX.owns, account)

    mdm.register_source("people")
    # MDM003: "legacy" stays unmapped ("extra" gets a corrupt link below).
    people = StaticWrapper("wPeople", ["id", "name", "extra", "legacy"], [])
    mdm.register_wrapper("people", people)
    mdm.define_mapping(
        "wPeople", {"id": EX.personId, "name": EX.personName}
    )

    mdm.register_source("accounts")
    accounts = StaticWrapper("wAccounts", ["aid"], [])
    mdm.register_wrapper("accounts", accounts)
    mdm.define_mapping("wAccounts", {"aid": EX.accountId})

    # MDM009: registered, never mapped.
    mdm.register_wrapper("people", StaticWrapper("wOrphan", ["id"], []))

    # MDM011: mapped, but its runtime object goes missing.
    ledger = StaticWrapper("wLedger", ["aid"], [])
    mdm.register_wrapper("accounts", ledger)
    mdm.define_mapping("wLedger", {"aid": EX.accountId})
    del mdm.wrappers["wLedger"]

    # MDM010: a saved query over a concept whose coverage then vanishes.
    mdm.add_concept(EX.Orphaned, "Orphaned")
    mdm.add_identifier(EX.orphanId, EX.Orphaned, "orphanId")
    walk = mdm.walk_from_nodes([EX.Orphaned, EX.orphanId])
    mdm.saved_queries.save("orphan-report", walk, "breaks after corruption")

    # MDM020: a saved query over Person, pinned once wPeopleV2 ships.
    directory = mdm.walk_from_nodes([person, EX.personName])
    mdm.saved_queries.save("person-directory", directory, "pinned to wPeople")
    # wPeopleV2 supersedes wPeople (same source, later release, superset
    # signature) but is never mapped, so person-directory keeps rewriting
    # over wPeople alone.
    mdm.register_wrapper(
        "people",
        StaticWrapper("wPeopleV2", ["id", "name", "extra", "legacy", "email"], []),
    )

    # ---- corruption phase: direct graph surgery, bypassing the guards ---- #
    from ..core.vocabulary import G

    gg = mdm.global_graph.graph
    sg = mdm.source_graph.graph

    # MDM004 + MDM005: a concept with a feature but no identifier, and
    # (like EX.Orphaned) covered by no mapping.
    gg.add((EX.Ghost, RDF.type, G.Concept))
    gg.add((EX.ghostField, RDF.type, G.Feature))
    gg.add((EX.Ghost, G.hasFeature, EX.ghostField))

    # MDM006: a declared feature attached to no concept.
    gg.add((EX.lostField, RDF.type, G.Feature))

    # MDM007: a taxonomy cycle Alpha ⊑ Beta ⊑ Alpha.
    gg.add((EX.Alpha, RDF.type, G.Concept))
    gg.add((EX.Beta, RDF.type, G.Concept))
    gg.add((EX.Alpha, G.hasFeature, EX.alphaId))
    gg.add((EX.alphaId, RDF.type, G.Feature))
    gg.add((EX.Alpha, RDFS.subClassOf, EX.Beta))
    gg.add((EX.Beta, RDFS.subClassOf, EX.Alpha))

    # MDM001: smuggle a foreign triple into wPeople's named graph.
    w_people = mdm.wrapper_iri("wPeople")
    mdm.mappings.named_graph(w_people).add(
        Triple(EX.Person, EX.invented, EX.Nowhere)
    )

    # MDM014: disconnect wAccounts' named graph with a global-graph
    # triple that shares no node with the Account contour.
    w_accounts = mdm.wrapper_iri("wAccounts")
    mdm.mappings.named_graph(w_accounts).add(
        Triple(EX.Ghost, G.hasFeature, EX.ghostField)
    )

    # MDM008 (+ a second MDM002): wAccounts.aid now also claims to
    # populate personName.
    aid = mdm.source_graph.attributes_of(w_accounts)[0]
    sg.add((aid, OWL.sameAs, EX.personName))

    # MDM002: wPeople.extra gets a single link to a feature outside its
    # named graph.
    w_people_attrs = {
        mdm.source_graph.attribute_name(a): a
        for a in mdm.source_graph.attributes_of(w_people)
    }
    sg.add((w_people_attrs["extra"], OWL.sameAs, EX.ghostField))

    # MDM010 trigger: drop the only mapping that covered EX.Orphaned.
    # (It never had one — the saved query above rewrites to no cover.)

    # MDM019: wAdrift gets a hand-made named graph holding a lone feature
    # triple — subgraph of the global graph (no MDM001), connected (no
    # MDM014), but touching no concept.  define_mapping would reject it
    # (MDM016: unpopulated feature), hence the direct surgery.
    mdm.register_wrapper("people", StaticWrapper("wAdrift", ["x1"], []))
    w_adrift = mdm.wrapper_iri("wAdrift")
    mdm.dataset.graph(w_adrift).add((EX.lostField, RDF.type, G.Feature))

    mdm.bump_generation()
    return mdm
