"""The paper's motivational use case, fully wired (paper §1, Figures 1-8).

"We aim to ingest data from four data sources, in the form of REST APIs,
respectively providing information about players, teams, leagues and
countries."

:class:`FootballScenario` builds the complete stack:

- the synthetic football data (:mod:`repro.sources.datagen`) served by a
  mock REST server — Players API in JSON, Teams API in XML (Figure 2),
  Leagues in JSON, Countries in CSV;
- the global graph compiled from the Figure 1 UML (reusing
  ``sc:SportsTeam`` and ``sc:Country`` per the Linked-Data guidance of
  §2.1);
- the wrappers, with the exact signatures of Figure 6 —
  ``w1(id, pName, height, weight, score, foot, teamId)`` and
  ``w2(id, name, shortName)`` — plus membership/nationality wrappers
  showing multiple wrappers per source;
- the LAV mappings of Figure 7, intersecting at ``sc:SportsTeam`` and its
  identifier;
- the evolution machinery for demo scenario 3 (Players API v2 with
  breaking changes) and a GAV twin system for the comparison benches.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from ..core.gav_baseline import GavSystem
from ..core.global_graph import UmlAssociation, UmlClass, UmlModel
from ..core.mdm import MDM
from ..core.releases import KIND_EVOLUTION
from ..core.walks import Walk
from ..rdf.namespaces import EX, SC
from ..rdf.terms import IRI, Triple
from ..sources.datagen import FootballDataset
from ..sources.evolution import (
    ChangeType,
    EndpointVersion,
    NestFields,
    RenameField,
    release_version,
)
from ..sources.restapi import MockRestServer
from ..sources.wrappers import RestWrapper

__all__ = [
    "FootballScenario",
    "PLAYER",
    "TEAM",
    "LEAGUE",
    "COUNTRY",
    "FEATURES",
    "RELATIONS",
]

# --------------------------------------------------------------------- #
# ontology terms (Figure 5)
# --------------------------------------------------------------------- #

PLAYER = EX.Player
#: Reused from schema.org, as in the paper: "the concept Team is reused
#: from http://schema.org/SportsTeam".
TEAM = SC.SportsTeam
LEAGUE = EX.League
COUNTRY = SC.Country

#: feature name → (IRI, concept, is_identifier)
FEATURES: Dict[str, Tuple[IRI, IRI, bool]] = {
    "playerId": (EX.playerId, PLAYER, True),
    "playerName": (EX.playerName, PLAYER, False),
    "height": (EX.height, PLAYER, False),
    "weight": (EX.weight, PLAYER, False),
    "rating": (EX.rating, PLAYER, False),
    "preferredFoot": (EX.preferredFoot, PLAYER, False),
    "teamId": (EX.teamId, TEAM, True),
    "teamName": (EX.teamName, TEAM, False),
    "shortName": (EX.shortName, TEAM, False),
    "leagueId": (EX.leagueId, LEAGUE, True),
    "leagueName": (EX.leagueName, LEAGUE, False),
    "countryId": (EX.countryId, COUNTRY, True),
    "countryName": (EX.countryName, COUNTRY, False),
    "countryCode": (EX.countryCode, COUNTRY, False),
}

#: relation name → (subject concept, property IRI, object concept)
RELATIONS: Dict[str, Tuple[IRI, IRI, IRI]] = {
    "hasTeam": (PLAYER, EX.hasTeam, TEAM),
    "inLeague": (TEAM, EX.inLeague, LEAGUE),
    "inCountry": (LEAGUE, EX.inCountry, COUNTRY),
    "hasNationality": (PLAYER, EX.hasNationality, COUNTRY),
}


def football_uml() -> UmlModel:
    """The Figure 1 UML class diagram as a :class:`UmlModel`."""
    return UmlModel(
        classes=[
            UmlClass(
                name="Player",
                iri=PLAYER,
                attributes=(
                    ("playerId", EX.playerId),
                    ("playerName", EX.playerName),
                    ("height", EX.height),
                    ("weight", EX.weight),
                    ("rating", EX.rating),
                    ("preferredFoot", EX.preferredFoot),
                ),
                identifier="playerId",
            ),
            UmlClass(
                name="Team",
                iri=TEAM,
                attributes=(
                    ("teamId", EX.teamId),
                    ("teamName", EX.teamName),
                    ("shortName", EX.shortName),
                ),
                identifier="teamId",
            ),
            UmlClass(
                name="League",
                iri=LEAGUE,
                attributes=(
                    ("leagueId", EX.leagueId),
                    ("leagueName", EX.leagueName),
                ),
                identifier="leagueId",
            ),
            UmlClass(
                name="Country",
                iri=COUNTRY,
                attributes=(
                    ("countryId", EX.countryId),
                    ("countryName", EX.countryName),
                    ("countryCode", EX.countryCode),
                ),
                identifier="countryId",
            ),
        ],
        associations=[
            UmlAssociation("Player", EX.hasTeam, "Team"),
            UmlAssociation("Team", EX.inLeague, "League"),
            UmlAssociation("League", EX.inCountry, "Country"),
            UmlAssociation("Player", EX.hasNationality, "Country"),
        ],
    )


@dataclass
class FootballScenario:
    """The assembled use case: data, server, MDM, wrappers."""

    data: FootballDataset
    server: MockRestServer
    mdm: MDM
    players_v1: EndpointVersion
    #: Wrapper names in registration order.
    wrapper_names: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        seed: int = 2018,
        anchors_only: bool = False,
        with_membership_wrappers: bool = True,
    ) -> "FootballScenario":
        """Assemble the full scenario.

        ``anchors_only`` restricts the data to exactly the paper's
        entities (used by the figure/table benches);
        ``with_membership_wrappers`` adds the extra wrappers (team→league,
        player→nationality) needed by the multi-concept queries.
        """
        data = (
            FootballDataset.anchors_only()
            if anchors_only
            else FootballDataset.generate(seed=seed)
        )
        server = MockRestServer()
        players_v1 = EndpointVersion(
            "players",
            1,
            "json",
            lambda: [asdict(p) for p in data.players],
        )
        release_version(server, players_v1)
        teams_v1 = EndpointVersion(
            "teams",
            1,
            "xml",
            lambda: [
                {
                    "id": t.id,
                    "name": t.name,
                    "shortName": t.short_name,
                    "leagueId": t.league_id,
                }
                for t in data.teams
            ],
        )
        release_version(server, teams_v1, item_tag="team", root_tag="teams")
        leagues_v1 = EndpointVersion(
            "leagues",
            1,
            "json",
            lambda: [asdict(l) for l in data.leagues],
        )
        release_version(server, leagues_v1)
        countries_v1 = EndpointVersion(
            "countries",
            1,
            "csv",
            lambda: [asdict(c) for c in data.countries],
        )
        release_version(server, countries_v1)

        mdm = MDM()
        mdm.load_uml(football_uml())
        for subject, prop, obj in RELATIONS.values():
            # load_uml already added these; relate() is idempotent.
            mdm.relate(subject, prop, obj)

        scenario = cls(
            data=data, server=server, mdm=mdm, players_v1=players_v1
        )
        scenario._register_sources(with_membership_wrappers)
        return scenario

    def _register_sources(self, with_membership_wrappers: bool) -> None:
        mdm, server = self.mdm, self.server
        mdm.register_source("players", "Players API")
        mdm.register_source("teams", "Teams API")
        mdm.register_source("leagues", "Leagues API")
        mdm.register_source("countries", "Countries API")

        # w1(id, pName, height, weight, score, foot, teamId) — Figure 6.
        w1 = RestWrapper(
            "w1",
            ["id", "pName", "height", "weight", "score", "foot", "teamId"],
            server,
            "/v1/players",
            attribute_map={
                "pName": "name",
                "score": "rating",
                "foot": "preferred_foot",
                "teamId": "team_id",
            },
        )
        mdm.register_wrapper("players", w1)
        mdm.define_mapping(
            "w1",
            {
                "id": EX.playerId,
                "pName": EX.playerName,
                "height": EX.height,
                "weight": EX.weight,
                "score": EX.rating,
                "foot": EX.preferredFoot,
                "teamId": EX.teamId,
            },
            edges=[RELATIONS["hasTeam"]],
        )
        self.wrapper_names.append("w1")

        # w2(id, name, shortName) — Figure 6.
        w2 = RestWrapper(
            "w2",
            ["id", "name", "shortName"],
            server,
            "/v1/teams",
        )
        mdm.register_wrapper("teams", w2)
        mdm.define_mapping(
            "w2",
            {"id": EX.teamId, "name": EX.teamName, "shortName": EX.shortName},
        )
        self.wrapper_names.append("w2")

        if with_membership_wrappers:
            # A second wrapper on the Teams source: league membership.
            w2m = RestWrapper(
                "w2m",
                ["id", "leagueId"],
                server,
                "/v1/teams",
            )
            mdm.register_wrapper("teams", w2m)
            mdm.define_mapping(
                "w2m",
                {"id": EX.teamId, "leagueId": EX.leagueId},
                edges=[RELATIONS["inLeague"]],
            )
            self.wrapper_names.append("w2m")

            # A second wrapper on the Players source: nationality.
            w1n = RestWrapper(
                "w1n",
                ["id", "nationalityId"],
                server,
                "/v1/players",
                attribute_map={"nationalityId": "nationality_id"},
            )
            mdm.register_wrapper("players", w1n)
            mdm.define_mapping(
                "w1n",
                {"id": EX.playerId, "nationalityId": EX.countryId},
                edges=[RELATIONS["hasNationality"]],
            )
            self.wrapper_names.append("w1n")

        w3 = RestWrapper(
            "w3",
            ["id", "name", "countryId"],
            server,
            "/v1/leagues",
            attribute_map={"countryId": "country_id"},
        )
        mdm.register_wrapper("leagues", w3)
        mdm.define_mapping(
            "w3",
            {"id": EX.leagueId, "name": EX.leagueName, "countryId": EX.countryId},
            edges=[RELATIONS["inCountry"]],
        )
        self.wrapper_names.append("w3")

        w4 = RestWrapper(
            "w4",
            ["id", "name", "code"],
            server,
            "/v1/countries",
        )
        mdm.register_wrapper("countries", w4)
        mdm.define_mapping(
            "w4",
            {"id": EX.countryId, "name": EX.countryName, "code": EX.countryCode},
        )
        self.wrapper_names.append("w4")

    # ------------------------------------------------------------------ #
    # canonical walks
    # ------------------------------------------------------------------ #

    def walk_player_team_names(self) -> Walk:
        """The Figure 8 OMQ: player names and their team names."""
        return self.mdm.walk_from_nodes(
            [PLAYER, EX.playerName, TEAM, EX.teamName]
        )

    def walk_league_nationality(self) -> Walk:
        """The intro query: "who are the players that play in a league of
        their nationality?" — a four-concept cycle."""
        return self.mdm.walk_from_nodes(
            [PLAYER, EX.playerName, TEAM, LEAGUE, COUNTRY]
        )

    def walk_single_concept(self) -> Walk:
        """All Player features (a one-concept walk)."""
        return self.mdm.walk_from_nodes(
            [
                PLAYER,
                EX.playerName,
                EX.height,
                EX.weight,
                EX.rating,
                EX.preferredFoot,
            ]
        )

    # ------------------------------------------------------------------ #
    # evolution (demo scenario 3)
    # ------------------------------------------------------------------ #

    #: The breaking changes shipped by Players API v2.
    V2_CHANGES = (
        RenameField("name", "fullName"),
        NestFields(("height", "weight"), "physique"),
        ChangeType("team_id", str),
    )

    def release_players_v2(self, retire_v1: bool = False) -> RestWrapper:
        """Ship Players API v2 (breaking) and register wrapper ``w1v2``.

        Registers the new wrapper on the source graph (reusing attribute
        IRIs), applies the semi-automatic mapping suggestion, and records
        the evolution release.  Returns the new wrapper.
        """
        players_v2 = self.players_v1.successor(list(self.V2_CHANGES))
        release_version(self.server, players_v2, retire_previous=retire_v1)
        w1v2 = RestWrapper(
            "w1v2",
            ["id", "pName", "height", "weight", "score", "foot", "teamId"],
            self.server,
            "/v2/players",
            attribute_map={
                "pName": "fullName",
                "height": "physique_height",
                "weight": "physique_weight",
                "score": "rating",
                "foot": "preferred_foot",
                "teamId": "team_id",
            },
        )
        self.mdm.register_wrapper(
            "players",
            w1v2,
            kind=KIND_EVOLUTION,
            changes=[c.describe() for c in self.V2_CHANGES],
        )
        suggestion = self.mdm.suggest_mapping("w1v2")
        self.mdm.apply_suggestion(
            suggestion,
            extra_edges=[RELATIONS["hasTeam"]],
        )
        self.wrapper_names.append("w1v2")
        return w1v2

    # ------------------------------------------------------------------ #
    # GAV twin (baseline for the comparison benches)
    # ------------------------------------------------------------------ #

    def build_gav(self) -> GavSystem:
        """A GAV system over the same wrappers with fixed unfoldings."""
        gav = GavSystem(self.mdm.global_graph)
        for name in self.wrapper_names:
            gav.register_wrapper(self.mdm.wrappers[name])
        gav.define_feature(EX.playerId, "w1", "id")
        gav.define_feature(EX.playerName, "w1", "pName")
        gav.define_feature(EX.height, "w1", "height")
        gav.define_feature(EX.weight, "w1", "weight")
        gav.define_feature(EX.rating, "w1", "score")
        gav.define_feature(EX.preferredFoot, "w1", "foot")
        gav.define_feature(EX.teamId, "w2", "id")
        gav.define_feature(EX.teamName, "w2", "name")
        gav.define_feature(EX.shortName, "w2", "shortName")
        gav.define_edge(
            Triple(*RELATIONS["hasTeam"]), "w1", "teamId", "w2", "id"
        )
        if "w2m" in self.wrapper_names:
            gav.define_feature(EX.leagueId, "w3", "id")
            gav.define_feature(EX.leagueName, "w3", "name")
            gav.define_feature(EX.countryId, "w4", "id")
            gav.define_feature(EX.countryName, "w4", "name")
            gav.define_feature(EX.countryCode, "w4", "code")
            gav.define_edge(
                Triple(*RELATIONS["inLeague"]), "w2m", "id", "w3", "id"
            )
            gav.define_edge(
                Triple(*RELATIONS["inCountry"]), "w3", "countryId", "w4", "id"
            )
            gav.define_edge(
                Triple(*RELATIONS["hasNationality"]), "w1n", "nationalityId", "w4", "id"
            )
        return gav
