"""A SUPERSEDE-style scenario: the paper's second, real-world demo case.

MDM "is the cornerstone of the Big Data architecture supporting the
[SUPERSEDE] project" (§2.5), which integrates *user feedback* and
*runtime monitoring* data about software products to drive evolution
decisions.  The proprietary project data is not available, so this module
synthesizes an equivalent ecosystem (same shape, same integration
challenges):

- **Twitter feedback API** (JSON, nested ``user`` objects) — tweets
  mentioning a software product;
- **App-review API** (JSON) — store reviews with ratings;
- **Monitoring platform** (CSV) — QoS metrics per product deployment;
- **Product catalog** (XML) — the software products under analysis.

The ontology: Feedback / Review / SoftwareProduct / Monitor(Metric)
concepts with identifier features; feedback and metrics link to products.
Two evolution rounds are scripted: the Twitter API nests author data
(v2), and the monitoring platform renames its metric fields (v2) — both
breaking, both accommodated through new wrappers and carried-over
mappings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from ..core.mdm import MDM
from ..core.walks import Walk
from ..obs import timed
from ..rdf.namespaces import Namespace
from ..sources.evolution import (
    EndpointVersion,
    NestFields,
    RenameField,
    release_version,
)
from ..sources.restapi import MockRestServer
from ..sources.wrappers import RestWrapper

__all__ = ["SupersedeScenario", "SUP"]

#: Vocabulary for the SUPERSEDE-style domain.
SUP = Namespace("http://www.essi.upc.edu/supersede/")

FEEDBACK = SUP.Feedback
REVIEW = SUP.Review
PRODUCT = SUP.SoftwareProduct
METRIC = SUP.QoSMetric

_PRODUCTS = [
    (1, "SmartTV-Player", "media"),
    (2, "CityWatch", "civic"),
    (3, "FeedbackHub", "devtools"),
    (4, "EnergyBoard", "iot"),
]

_SENTIMENTS = ["positive", "negative", "neutral"]
_METRIC_KINDS = ["latency_ms", "error_rate", "throughput_rps"]


def _generate_records(seed: int, n_feedback: int, n_reviews: int, n_metrics: int):
    rng = random.Random(seed)
    feedback = [
        {
            "id": 100 + i,
            "text": f"feedback item {100 + i}",
            "sentiment": rng.choice(_SENTIMENTS),
            "product_id": rng.choice(_PRODUCTS)[0],
            "user": {"id": 9000 + rng.randint(0, 40), "followers": rng.randint(0, 5000)},
        }
        for i in range(n_feedback)
    ]
    reviews = [
        {
            "id": 5000 + i,
            "stars": rng.randint(1, 5),
            "title": f"review {5000 + i}",
            "product_id": rng.choice(_PRODUCTS)[0],
        }
        for i in range(n_reviews)
    ]
    metrics = [
        {
            "id": 70000 + i,
            "kind": rng.choice(_METRIC_KINDS),
            "value": round(rng.uniform(0.1, 900.0), 3),
            "product_id": rng.choice(_PRODUCTS)[0],
        }
        for i in range(n_metrics)
    ]
    return feedback, reviews, metrics


@dataclass
class SupersedeScenario:
    """The assembled SUPERSEDE-style ecosystem."""

    server: MockRestServer
    mdm: MDM
    feedback_v1: EndpointVersion
    metrics_v1: EndpointVersion
    records: Dict[str, list] = field(default_factory=dict)

    @classmethod
    @timed("mdm_scenario_step_seconds", "Latency of scenario build/release steps.",
           step="supersede_build")
    def build(
        cls,
        seed: int = 7,
        n_feedback: int = 60,
        n_reviews: int = 40,
        n_metrics: int = 80,
    ) -> "SupersedeScenario":
        """Assemble ontology, sources, wrappers and mappings."""
        feedback, reviews, metrics = _generate_records(
            seed, n_feedback, n_reviews, n_metrics
        )
        server = MockRestServer(base_url="http://supersede.local")
        feedback_v1 = EndpointVersion("feedback", 1, "json", lambda: feedback)
        release_version(server, feedback_v1)
        reviews_v1 = EndpointVersion("reviews", 1, "json", lambda: reviews)
        release_version(server, reviews_v1)
        metrics_v1 = EndpointVersion("metrics", 1, "csv", lambda: metrics)
        release_version(server, metrics_v1)
        products_v1 = EndpointVersion(
            "products",
            1,
            "xml",
            lambda: [
                {"id": pid, "name": name, "category": category}
                for pid, name, category in _PRODUCTS
            ],
        )
        release_version(server, products_v1, item_tag="product", root_tag="products")

        mdm = MDM()
        mdm.dataset.namespaces.bind("sup", SUP)
        for concept, label in (
            (FEEDBACK, "Feedback"),
            (REVIEW, "Review"),
            (PRODUCT, "SoftwareProduct"),
            (METRIC, "QoSMetric"),
        ):
            mdm.add_concept(concept, label)
        mdm.add_identifier(SUP.feedbackId, FEEDBACK)
        mdm.add_feature(SUP.text, FEEDBACK)
        mdm.add_feature(SUP.sentiment, FEEDBACK)
        mdm.add_feature(SUP.authorFollowers, FEEDBACK)
        mdm.add_identifier(SUP.reviewId, REVIEW)
        mdm.add_feature(SUP.stars, REVIEW)
        mdm.add_feature(SUP.reviewTitle, REVIEW)
        mdm.add_identifier(SUP.productId, PRODUCT)
        mdm.add_feature(SUP.productName, PRODUCT)
        mdm.add_feature(SUP.category, PRODUCT)
        mdm.add_identifier(SUP.metricId, METRIC)
        mdm.add_feature(SUP.metricKind, METRIC)
        mdm.add_feature(SUP.metricValue, METRIC)
        mdm.relate(FEEDBACK, SUP.about, PRODUCT)
        mdm.relate(REVIEW, SUP.reviews, PRODUCT)
        mdm.relate(METRIC, SUP.measures, PRODUCT)

        scenario = cls(
            server=server,
            mdm=mdm,
            feedback_v1=feedback_v1,
            metrics_v1=metrics_v1,
            records={"feedback": feedback, "reviews": reviews, "metrics": metrics},
        )
        scenario._register()
        return scenario

    def _register(self) -> None:
        mdm, server = self.mdm, self.server
        mdm.register_source("twitter", "Twitter feedback API")
        mdm.register_source("appstore", "App review API")
        mdm.register_source("monitoring", "Monitoring platform")
        mdm.register_source("catalog", "Product catalog")

        wf = RestWrapper(
            "wFeedback",
            ["id", "text", "sentiment", "followers", "productId"],
            server,
            "/v1/feedback",
            attribute_map={"followers": "user_followers", "productId": "product_id"},
        )
        mdm.register_wrapper("twitter", wf)
        mdm.define_mapping(
            "wFeedback",
            {
                "id": SUP.feedbackId,
                "text": SUP.text,
                "sentiment": SUP.sentiment,
                "followers": SUP.authorFollowers,
                "productId": SUP.productId,
            },
            edges=[(FEEDBACK, SUP.about, PRODUCT)],
        )

        wr = RestWrapper(
            "wReviews",
            ["id", "stars", "title", "productId"],
            server,
            "/v1/reviews",
            attribute_map={"productId": "product_id"},
        )
        mdm.register_wrapper("appstore", wr)
        mdm.define_mapping(
            "wReviews",
            {
                "id": SUP.reviewId,
                "stars": SUP.stars,
                "title": SUP.reviewTitle,
                "productId": SUP.productId,
            },
            edges=[(REVIEW, SUP.reviews, PRODUCT)],
        )

        wm = RestWrapper(
            "wMetrics",
            ["id", "kind", "value", "productId"],
            server,
            "/v1/metrics",
            attribute_map={"productId": "product_id"},
        )
        mdm.register_wrapper("monitoring", wm)
        mdm.define_mapping(
            "wMetrics",
            {
                "id": SUP.metricId,
                "kind": SUP.metricKind,
                "value": SUP.metricValue,
                "productId": SUP.productId,
            },
            edges=[(METRIC, SUP.measures, PRODUCT)],
        )

        wp = RestWrapper(
            "wProducts",
            ["id", "name", "category"],
            server,
            "/v1/products",
        )
        mdm.register_wrapper("catalog", wp)
        mdm.define_mapping(
            "wProducts",
            {"id": SUP.productId, "name": SUP.productName, "category": SUP.category},
        )

    # ------------------------------------------------------------------ #
    # canonical analytics walks
    # ------------------------------------------------------------------ #

    def walk_feedback_by_product(self) -> Walk:
        """Feedback sentiment alongside product names."""
        return self.mdm.walk_from_nodes(
            [FEEDBACK, SUP.sentiment, SUP.text, PRODUCT, SUP.productName]
        )

    def walk_metrics_by_product(self) -> Walk:
        """QoS metrics alongside product names."""
        return self.mdm.walk_from_nodes(
            [METRIC, SUP.metricKind, SUP.metricValue, PRODUCT, SUP.productName]
        )

    def walk_reviews(self) -> Walk:
        """Review stars per product category."""
        return self.mdm.walk_from_nodes(
            [REVIEW, SUP.stars, PRODUCT, SUP.category]
        )

    # ------------------------------------------------------------------ #
    # evolution rounds
    # ------------------------------------------------------------------ #

    TWITTER_V2_CHANGES = (
        RenameField("text", "body"),
        NestFields(("sentiment",), "analysis"),
    )

    @timed("mdm_scenario_step_seconds", "Latency of scenario build/release steps.",
           step="release_twitter_v2")
    def release_twitter_v2(self, retire_v1: bool = False) -> RestWrapper:
        """Twitter API v2: renames ``text`` and nests the sentiment."""
        v2 = self.feedback_v1.successor(list(self.TWITTER_V2_CHANGES))
        release_version(self.server, v2, retire_previous=retire_v1)
        wf2 = RestWrapper(
            "wFeedback2",
            ["id", "text", "sentiment", "followers", "productId"],
            self.server,
            "/v2/feedback",
            attribute_map={
                "text": "body",
                "sentiment": "analysis_sentiment",
                "followers": "user_followers",
                "productId": "product_id",
            },
        )
        self.mdm.register_wrapper(
            "twitter",
            wf2,
            changes=[c.describe() for c in self.TWITTER_V2_CHANGES],
        )
        suggestion = self.mdm.suggest_mapping("wFeedback2")
        self.mdm.apply_suggestion(
            suggestion, extra_edges=[(FEEDBACK, SUP.about, PRODUCT)]
        )
        return wf2

    MONITORING_V2_CHANGES = (
        RenameField("kind", "metric_type"),
        RenameField("value", "reading"),
    )

    @timed("mdm_scenario_step_seconds", "Latency of scenario build/release steps.",
           step="release_monitoring_v2")
    def release_monitoring_v2(self, retire_v1: bool = False) -> RestWrapper:
        """Monitoring v2: renames the metric fields."""
        v2 = self.metrics_v1.successor(list(self.MONITORING_V2_CHANGES))
        release_version(self.server, v2, retire_previous=retire_v1)
        wm2 = RestWrapper(
            "wMetrics2",
            ["id", "kind", "value", "productId"],
            self.server,
            "/v2/metrics",
            attribute_map={
                "kind": "metric_type",
                "value": "reading",
                "productId": "product_id",
            },
        )
        self.mdm.register_wrapper(
            "monitoring",
            wm2,
            changes=[c.describe() for c in self.MONITORING_V2_CHANGES],
        )
        suggestion = self.mdm.suggest_mapping("wMetrics2")
        self.mdm.apply_suggestion(
            suggestion, extra_edges=[(METRIC, SUP.measures, PRODUCT)]
        )
        return wm2
