"""Synthetic MDM ecosystems for scalability benchmarks and stress tests.

Two generators:

``chain_mdm``
    a chain-shaped ontology ``C0 → C1 → … → C(n-1)`` with one source and
    (optionally several versioned) wrappers per concept, plus consistent
    synthetic rows — scales the *walk size* dimension;

``versioned_concept_mdm``
    a single concept whose source has accumulated ``n_versions`` wrapper
    releases (all serving the same logical data through different
    signatures) — scales the *wrappers per source* dimension the paper
    calls out ("regardless of the number of wrappers per source").

Both are deterministic in their ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..core.mdm import MDM
from ..rdf.namespaces import Namespace
from ..rdf.terms import IRI
from ..sources.wrappers import StaticWrapper

__all__ = ["SYN", "chain_mdm", "versioned_concept_mdm", "chain_ground_truth"]

SYN = Namespace("http://synthetic.mdm/")


def chain_mdm(
    n_concepts: int,
    rows_per_concept: int = 20,
    seed: int = 42,
) -> Tuple[MDM, List[IRI], Dict[int, List[dict]], Dict[int, Dict[int, int]]]:
    """A chain ontology with one wrapper per concept and consistent rows.

    Returns ``(mdm, concepts, ground_rows, links)`` where ``links[i]``
    maps a C(i) entity id to its C(i+1) neighbour id.
    """
    if n_concepts < 1:
        raise ValueError("need at least one concept")
    rng = random.Random(seed)
    mdm = MDM()
    concepts: List[IRI] = []
    for i in range(n_concepts):
        concept = SYN[f"C{i}"]
        mdm.add_concept(concept)
        mdm.add_identifier(SYN[f"id{i}"], concept)
        mdm.add_feature(SYN[f"val{i}"], concept)
        concepts.append(concept)
    edges = []
    for i in range(n_concepts - 1):
        prop = SYN[f"r{i}"]
        mdm.relate(concepts[i], prop, concepts[i + 1])
        edges.append((concepts[i], prop, concepts[i + 1]))
    ground: Dict[int, List[dict]] = {
        i: [{"id": k, "val": f"c{i}v{k}"} for k in range(rows_per_concept)]
        for i in range(n_concepts)
    }
    links: Dict[int, Dict[int, int]] = {
        i: {k: rng.randrange(rows_per_concept) for k in range(rows_per_concept)}
        for i in range(n_concepts - 1)
    }
    for i in range(n_concepts):
        mdm.register_source(f"s{i}")
        rows = []
        for record in ground[i]:
            row = dict(record)
            if i < n_concepts - 1:
                row["next"] = links[i][record["id"]]
            rows.append(row)
        attributes = ["id", "val"] + (["next"] if i < n_concepts - 1 else [])
        mdm.register_wrapper(f"s{i}", StaticWrapper(f"w{i}", attributes, rows))
        mapping = {"id": SYN[f"id{i}"], "val": SYN[f"val{i}"]}
        mapping_edges = []
        if i < n_concepts - 1:
            mapping["next"] = SYN[f"id{i+1}"]
            mapping_edges.append(edges[i])
        mdm.define_mapping(f"w{i}", mapping, edges=mapping_edges)
    return mdm, concepts, ground, links


def chain_ground_truth(
    ground: Dict[int, List[dict]],
    links: Dict[int, Dict[int, int]],
    n_concepts: int,
) -> set:
    """Expected (val0, …, valN) tuples over the chain joins."""
    rows = set()
    for record in ground[0]:
        chain = [record]
        ok = True
        for i in range(n_concepts - 1):
            nxt_id = links[i][chain[-1]["id"]]
            nxt = next((r for r in ground[i + 1] if r["id"] == nxt_id), None)
            if nxt is None:
                ok = False
                break
            chain.append(nxt)
        if ok:
            rows.add(tuple(c["val"] for c in chain))
    return rows


def versioned_concept_mdm(
    n_versions: int,
    rows: int = 50,
    seed: int = 42,
) -> Tuple[MDM, IRI]:
    """One concept whose source shipped ``n_versions`` wrapper releases.

    Every version serves the same logical rows; version k renames its
    value attribute to ``valK`` in the signature (accommodated through
    sameAs), so the rewriting sees ``n_versions`` interchangeable covers
    and must union them — the UCQ grows linearly with versions.
    """
    if n_versions < 1:
        raise ValueError("need at least one version")
    rng = random.Random(seed)
    mdm = MDM()
    concept = SYN.Entity
    mdm.add_concept(concept)
    mdm.add_identifier(SYN.entityId, concept)
    mdm.add_feature(SYN.entityVal, concept)
    mdm.register_source("entities")
    base_rows = [{"id": k, "val": f"v{rng.randrange(10**6)}"} for k in range(rows)]
    for version in range(1, n_versions + 1):
        attr = "val" if version == 1 else f"val{version}"
        wrapper_rows = [{"id": r["id"], attr: r["val"]} for r in base_rows]
        name = f"wv{version}"
        mdm.register_wrapper(
            "entities", StaticWrapper(name, ["id", attr], wrapper_rows)
        )
        mdm.define_mapping(name, {"id": SYN.entityId, attr: SYN.entityVal})
    return mdm, concept
