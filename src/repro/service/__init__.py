"""Service layer: REST-style API and persistence for the MDM facade."""

from .api import MdmService
from .http import JsonRequest, JsonResponse, Router, ServiceError
from .persistence import attach_wrappers, load_mdm, save_mdm
from .server import MdmHttpServer, serve

__all__ = [
    "MdmService",
    "MdmHttpServer",
    "serve",
    "Router",
    "JsonRequest",
    "JsonResponse",
    "ServiceError",
    "save_mdm",
    "load_mdm",
    "attach_wrappers",
]
