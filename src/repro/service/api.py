"""The MDM REST-style service: the four interaction kinds over HTTP shapes.

Endpoints (JSON in / JSON out, see :mod:`repro.service.http`):

Global graph (steward):
    ``POST /globalGraph/concepts``       {"iri", "label"?}
    ``POST /globalGraph/features``       {"iri", "concept", "label"?, "identifier"?}
    ``POST /globalGraph/relations``      {"source", "property", "target"}
    ``GET  /globalGraph``                summary with concepts/features/relations

Sources & wrappers (steward):
    ``POST /sources``                    {"name", "label"?}
    ``GET  /sources``
    ``POST /sources/:name/wrappers``     {"name", "attributes": [...], "rows": [...]?, "changes": [...]?}
    ``GET  /releases``

LAV mappings (steward):
    ``POST /wrappers/:name/mapping``     {"features": {attr: featureIRI}, "edges": [[s,p,o], ...]}
    ``GET  /wrappers/:name/suggestion``  semi-automatic accommodation

Querying (analyst):
    ``POST /query``                      {"nodes": [iri, ...], "execute"?: bool, "on_wrapper_error"?: "raise"|"skip"|"partial"}
    ``GET  /metadata/trig``              the TriG snapshot
    ``GET  /lint``                       static diagnostics (?saved=false, ?plans=false)

Impact analysis (steward):
    ``POST /impact``                     what-if over a proposed change:
                                         {"retire": name} | {"release": {...}} | {"mutation": {...}}
    ``GET  /impact/recent``              recent what-if reports (?limit=N)
    ``GET  /impact/:source``             descriptive impact of one source

Observability (operator):
    ``GET  /metrics``                    Prometheus text exposition
    ``GET  /metrics/summary``            per-histogram count/mean/p50/p95/p99
    ``GET  /traces/recent``              recent root spans (?limit=N)
    ``GET  /traces/:trace_id``           one buffered trace by id
    ``GET  /querylog/recent``            recent query-log records (?limit=N)
    ``POST /obs/tracing``                {"enabled"?: bool, "sample_rate"?: float,
                                          "slow_threshold_ms"?: float|null}
    ``GET  /config/execution``           fetch-pool size, retry policy, optimizer, cache stats
    ``POST /config/execution``           {"max_fetch_workers"?: int, "optimize"?: bool, "retry"?: {...}}

Wrapper rows posted through the service back a
:class:`repro.sources.wrappers.StaticWrapper`; programmatic embedders
attach live :class:`RestWrapper` objects through the facade instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..core.mdm import MDM
from ..core.errors import MdmError
from ..rdf.terms import IRI
from ..sources.wrappers import StaticWrapper
from .http import JsonRequest, JsonResponse, Router, ServiceError

__all__ = ["MdmService"]


def _iri(value: Any, what: str) -> IRI:
    if not isinstance(value, str) or not value:
        raise ServiceError(400, f"{what} must be a non-empty IRI string")
    try:
        return IRI(value)
    except ValueError as exc:
        raise ServiceError(400, f"invalid {what}: {exc}") from exc


class MdmService:
    """Binds an :class:`MDM` facade to a :class:`Router`."""

    def __init__(self, mdm: Optional[MDM] = None):
        self.mdm = mdm if mdm is not None else MDM()
        self.router = Router()
        self._bind()

    # Convenience passthrough. ------------------------------------------ #

    def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: Optional[Mapping[str, str]] = None,
    ) -> JsonResponse:
        """Dispatch one request against this service."""
        return self.router.dispatch(method, path, body, query)

    # Handlers. ---------------------------------------------------------- #

    def _bind(self) -> None:
        add = self.router.add
        add("POST", "/globalGraph/concepts", self._post_concept)
        add("POST", "/globalGraph/features", self._post_feature)
        add("POST", "/globalGraph/relations", self._post_relation)
        add("GET", "/globalGraph", self._get_global_graph)
        add("POST", "/sources", self._post_source)
        add("GET", "/sources", self._get_sources)
        add("POST", "/sources/:name/wrappers", self._post_wrapper)
        add("GET", "/releases", self._get_releases)
        add("POST", "/wrappers/:name/mapping", self._post_mapping)
        add("GET", "/wrappers/:name/suggestion", self._get_suggestion)
        add("POST", "/query", self._post_query)
        add("POST", "/query/sparql", self._post_sparql_query)
        add("POST", "/queries/saved", self._post_saved_query)
        add("GET", "/queries/saved", self._get_saved_queries)
        add("POST", "/queries/saved/:name/run", self._run_saved_query)
        add("DELETE", "/queries/saved/:name", self._delete_saved_query)
        add("GET", "/queries/revalidate", self._revalidate_saved)
        # literal /impact/recent must register before the :source pattern.
        add("POST", "/impact", self._post_impact)
        add("GET", "/impact/recent", self._get_recent_impact)
        add("GET", "/impact/:source", self._get_impact)
        add("GET", "/lint", self._get_lint)
        add("GET", "/report", self._get_report)
        add("GET", "/metadata/trig", self._get_trig)
        add("GET", "/summary", self._get_summary)
        add("GET", "/metrics", self._get_metrics)
        add("GET", "/metrics/summary", self._get_metrics_summary)
        # /traces/recent must bind before the :trace_id pattern so the
        # literal path wins (routes match in registration order).
        add("GET", "/traces/recent", self._get_recent_traces)
        add("GET", "/traces/:trace_id", self._get_trace)
        add("GET", "/querylog/recent", self._get_recent_querylog)
        add("POST", "/obs/tracing", self._post_tracing)
        add("GET", "/config/execution", self._get_execution_config)
        add("POST", "/config/execution", self._post_execution_config)
        add("GET", "/failpoints", self._get_failpoints)
        add("POST", "/failpoints", self._post_failpoints)

    def _post_concept(self, request: JsonRequest) -> Dict[str, Any]:
        (iri_text,) = request.require("iri")
        label = request.body.get("label") if isinstance(request.body, dict) else None
        concept = self.mdm.add_concept(_iri(iri_text, "concept IRI"), label)
        return {"iri": concept.value}

    def _post_feature(self, request: JsonRequest) -> Dict[str, Any]:
        iri_text, concept_text = request.require("iri", "concept")
        body = request.body
        label = body.get("label")
        identifier = bool(body.get("identifier", False))
        feature = _iri(iri_text, "feature IRI")
        concept = _iri(concept_text, "concept IRI")
        if identifier:
            self.mdm.add_identifier(feature, concept, label)
        else:
            self.mdm.add_feature(feature, concept, label)
        return {"iri": feature.value, "concept": concept.value, "identifier": identifier}

    def _post_relation(self, request: JsonRequest) -> Dict[str, Any]:
        source, prop, target = request.require("source", "property", "target")
        triple = self.mdm.relate(
            _iri(source, "source concept"),
            _iri(prop, "property"),
            _iri(target, "target concept"),
        )
        return {"triple": triple.n3()}

    def _get_global_graph(self, request: JsonRequest) -> Dict[str, Any]:
        gg = self.mdm.global_graph
        return {
            "concepts": [c.value for c in gg.concepts()],
            "features": [
                {
                    "iri": f.value,
                    "concept": (gg.concept_of(f) or f).value,
                    "identifier": gg.is_identifier(f),
                }
                for f in gg.features()
            ],
            "relations": [t.n3() for t in gg.relations()],
            "issues": gg.validate(),
        }

    def _post_source(self, request: JsonRequest) -> Dict[str, Any]:
        (name,) = request.require("name")
        label = request.body.get("label")
        iri = self.mdm.register_source(name, label)
        return {"name": name, "iri": iri.value}

    def _get_sources(self, request: JsonRequest) -> List[Dict[str, Any]]:
        sg = self.mdm.source_graph
        return [
            {
                "iri": source.value,
                "wrappers": [
                    {
                        "iri": w.value,
                        "name": sg.wrapper_name(w),
                        "signature": sg.signature_of(w),
                    }
                    for w in sg.wrappers_of(source)
                ],
            }
            for source in sg.data_sources()
        ]

    def _post_wrapper(self, request: JsonRequest) -> Dict[str, Any]:
        name, attributes = request.require("name", "attributes")
        source_name = request.path_params["name"]
        rows = request.body.get("rows", [])
        changes = request.body.get("changes", [])
        if not isinstance(attributes, list) or not all(
            isinstance(a, str) for a in attributes
        ):
            raise ServiceError(400, "attributes must be a list of strings")
        wrapper = StaticWrapper(name, attributes, rows)
        try:
            registration = self.mdm.register_wrapper(
                source_name, wrapper, changes=changes
            )
        except MdmError as exc:
            raise ServiceError(409, str(exc)) from exc
        return {
            "wrapper": registration.wrapper.value,
            "signature": registration.signature,
            "reused_attributes": list(registration.reused_attributes),
        }

    def _get_releases(self, request: JsonRequest) -> List[Dict[str, Any]]:
        return [
            {
                "sequence": r.sequence,
                "source": r.source_name,
                "wrapper": r.wrapper_name,
                "kind": r.kind,
                "breaking": r.is_breaking,
                "changes": list(r.changes),
            }
            for r in self.mdm.governance.history()
        ]

    def _post_mapping(self, request: JsonRequest) -> Dict[str, Any]:
        (features,) = request.require("features")
        wrapper_name = request.path_params["name"]
        edges_raw = request.body.get("edges", [])
        if not isinstance(features, Mapping):
            raise ServiceError(400, "features must map attribute names to feature IRIs")
        features_by_attribute = {
            attr: _iri(feature, f"feature for attribute {attr!r}")
            for attr, feature in features.items()
        }
        edges = []
        for edge in edges_raw:
            if not (isinstance(edge, list) and len(edge) == 3):
                raise ServiceError(400, "each edge must be [subject, property, object]")
            edges.append(tuple(_iri(part, "edge term") for part in edge))
        try:
            view = self.mdm.define_mapping(wrapper_name, features_by_attribute, edges)
        except MdmError as exc:
            raise ServiceError(422, str(exc)) from exc
        return {
            "wrapper": view.wrapper.value,
            "concepts": sorted(c.value for c in view.concepts),
            "features": sorted(f.value for f in view.features),
        }

    def _get_suggestion(self, request: JsonRequest) -> Dict[str, Any]:
        wrapper_name = request.path_params["name"]
        try:
            suggestion = self.mdm.suggest_mapping(wrapper_name)
        except MdmError as exc:
            raise ServiceError(404, str(exc)) from exc
        return {
            "wrapper": suggestion.wrapper.value,
            "carried_links": {
                a.value: f.value for a, f in suggestion.same_as.items()
            },
            "unmapped_attributes": list(suggestion.unmapped_attributes),
            "complete": suggestion.is_complete,
        }

    def _post_query(self, request: JsonRequest) -> Dict[str, Any]:
        (nodes,) = request.require("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ServiceError(400, "nodes must be a non-empty list of IRIs")
        walk = self.mdm.walk_from_nodes([_iri(n, "walk node") for n in nodes])
        execute = bool(request.body.get("execute", True))
        on_error = request.body.get("on_wrapper_error", "raise")
        use_cache = bool(request.body.get("use_cache", True))
        outcome = None
        try:
            if execute:
                outcome = self.mdm.execute(
                    walk, on_wrapper_error=on_error, use_cache=use_cache
                )
                rewrite = outcome.rewrite
                rows = [list(r) for r in outcome.relation.rows]
                columns = list(outcome.relation.schema.names)
            else:
                rewrite = self.mdm.rewrite(walk)
                rows, columns = None, list(rewrite.projection)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from exc
        except MdmError as exc:
            raise ServiceError(422, str(exc)) from exc
        payload: Dict[str, Any] = {
            "sparql": rewrite.sparql,
            "algebra": rewrite.pretty(),
            "ucq_size": rewrite.ucq_size,
            "columns": columns,
        }
        if rows is not None:
            payload["rows"] = rows
        if outcome is not None:
            payload["partial"] = outcome.partial
            payload["generation"] = outcome.generation
            payload["result_cache"] = outcome.result_cache
            if outcome.pushdown is not None:
                payload["pushdown"] = outcome.pushdown
            if outcome.partial:
                payload["skipped_wrappers"] = list(outcome.skipped_wrappers)
        return payload

    def _post_sparql_query(self, request: JsonRequest) -> Dict[str, Any]:
        """Pose an OMQ as SPARQL text: ``{"sparql": "...", "execute"?: bool}``."""
        (text,) = request.require("sparql")
        from ..core.sparql_frontend import walk_from_sparql

        try:
            walk = walk_from_sparql(self.mdm.global_graph, text)
            if bool(request.body.get("execute", True)):
                outcome = self.mdm.execute(walk)
                return {
                    "sparql": outcome.rewrite.sparql,
                    "algebra": outcome.rewrite.pretty(),
                    "ucq_size": outcome.rewrite.ucq_size,
                    "columns": list(outcome.relation.schema.names),
                    "rows": [list(r) for r in outcome.relation.rows],
                }
            rewrite = self.mdm.rewrite(walk)
            return {
                "sparql": rewrite.sparql,
                "algebra": rewrite.pretty(),
                "ucq_size": rewrite.ucq_size,
                "columns": list(rewrite.projection),
            }
        except MdmError as exc:
            raise ServiceError(422, str(exc)) from exc

    def _post_saved_query(self, request: JsonRequest) -> Dict[str, Any]:
        """Save a named query: ``{"name", "nodes": [...], "description"?}``."""
        name, nodes = request.require("name", "nodes")
        description = request.body.get("description", "")
        if not isinstance(nodes, list) or not nodes:
            raise ServiceError(400, "nodes must be a non-empty list of IRIs")
        try:
            walk = self.mdm.walk_from_nodes([_iri(n, "walk node") for n in nodes])
            saved = self.mdm.saved_queries.save(name, walk, description)
        except MdmError as exc:
            raise ServiceError(422, str(exc)) from exc
        return {"name": saved.name, "walk": saved.walk.to_json_dict()}

    def _get_saved_queries(self, request: JsonRequest) -> List[Dict[str, Any]]:
        out = []
        for name in self.mdm.saved_queries.names():
            saved = self.mdm.saved_queries.get(name)
            out.append(
                {
                    "name": saved.name,
                    "description": saved.description,
                    "walk": saved.walk.to_json_dict(),
                }
            )
        return out

    def _run_saved_query(self, request: JsonRequest) -> Dict[str, Any]:
        name = request.path_params["name"]
        try:
            outcome = self.mdm.saved_queries.run(name, on_wrapper_error="skip")
        except KeyError as exc:
            raise ServiceError(404, str(exc)) from exc
        except MdmError as exc:
            raise ServiceError(422, str(exc)) from exc
        return {
            "columns": list(outcome.relation.schema.names),
            "rows": [list(r) for r in outcome.relation.rows],
            "ucq_size": outcome.rewrite.ucq_size,
            "skipped_wrappers": list(outcome.skipped_wrappers),
        }

    def _delete_saved_query(self, request: JsonRequest) -> Dict[str, Any]:
        name = request.path_params["name"]
        removed = self.mdm.saved_queries.delete(name)
        if not removed:
            raise ServiceError(404, f"no saved query named {name!r}")
        return {"deleted": name}

    def _revalidate_saved(self, request: JsonRequest) -> List[Dict[str, Any]]:
        execute = request.query.get("execute", "false").lower() == "true"
        return [
            {
                "name": entry.name,
                "ok": entry.ok,
                "ucq_size": entry.ucq_size,
                "rows": entry.rows,
                "error": entry.error,
            }
            for entry in self.mdm.saved_queries.revalidate(execute=execute)
        ]

    def _get_impact(self, request: JsonRequest) -> Dict[str, Any]:
        """Release impact analysis for one source."""
        try:
            return dict(self.mdm.impact_of_source(request.path_params["source"]))
        except MdmError as exc:
            raise ServiceError(404, str(exc)) from exc

    def _post_impact(self, request: JsonRequest) -> Dict[str, Any]:
        """Static what-if analysis of a proposed change.

        Body: the proposed-change JSON — ``{"retire": "w1"}``,
        ``{"release": {"source", "wrapper", "attributes"? | "base_wrapper"?
        + "changes"?, ...}}`` or ``{"mutation": {"method", "args"?,
        "kwargs"?}}`` (see :func:`repro.analysis.impact.change_from_json`).
        Runs against a shadow copy of the metadata graph: no source rows
        are fetched and the generation counter does not move.
        """
        from ..analysis.impact import change_from_json

        body = request.body
        if not isinstance(body, Mapping):
            raise ServiceError(400, "body must be a proposed-change object")
        try:
            change = change_from_json(body)
        except (TypeError, ValueError, KeyError) as exc:
            raise ServiceError(400, f"invalid proposed change: {exc}") from exc
        report = self.mdm.analyze_impact(change)
        return report.to_json_dict()

    def _get_recent_impact(self, request: JsonRequest) -> Dict[str, Any]:
        """The most recent impact analyses (``?limit=N``, default 20)."""
        try:
            limit = int(request.query.get("limit", "20"))
        except ValueError:
            raise ServiceError(400, "limit must be an integer") from None
        reports = self.mdm.recent_impact(limit)
        return {
            "total": len(self.mdm.impact_log),
            "reports": [r.to_json_dict() for r in reports],
        }

    def _get_lint(self, request: JsonRequest) -> Dict[str, Any]:
        """Static diagnostics: metadata rules plus saved-plan schema checks.

        ``?saved=false`` skips replaying saved queries; ``?plans=false``
        skips the relational schema checker.
        """
        from ..analysis import lint_mdm

        replay = request.query.get("saved", "true").lower() != "false"
        plans = request.query.get("plans", "true").lower() != "false"
        report = lint_mdm(self.mdm, replay_saved=replay, check_plans=plans)
        return report.to_json_dict()

    def _get_report(self, request: JsonRequest) -> Dict[str, Any]:
        """The full governance report (see repro.core.reporting)."""
        from ..core.reporting import governance_report

        execute = request.query.get("execute", "false").lower() == "true"
        metrics = request.query.get("metrics", "false").lower() == "true"
        return dict(
            governance_report(
                self.mdm, execute_queries=execute, include_metrics=metrics
            )
        )

    def _get_metrics(self, request: JsonRequest) -> str:
        """Prometheus text exposition of the process metrics registry."""
        from ..obs import get_metrics

        return get_metrics().render_prometheus()

    def _get_recent_traces(self, request: JsonRequest) -> Dict[str, Any]:
        """The most recent completed root spans (``?limit=N``, default 10)."""
        from ..obs import get_tracer

        try:
            limit = int(request.query.get("limit", "10"))
        except ValueError:
            raise ServiceError(400, "limit must be an integer") from None
        tracer = get_tracer()
        return {
            "enabled": tracer.enabled,
            "traces": [span.to_dict() for span in tracer.recent(limit)],
        }

    def _get_metrics_summary(self, request: JsonRequest) -> Dict[str, Any]:
        """Histogram percentile summary (p50/p95/p99 per series)."""
        from ..obs import get_metrics

        return get_metrics().summary()

    def _get_trace(self, request: JsonRequest) -> Dict[str, Any]:
        """One buffered trace by id: the full span tree, or 404.

        Only sampled (or kept-as-slow) traces live in the ring; a
        correlation id from the query log may legitimately miss here
        when its trace was dropped by the sampler.
        """
        from ..obs import get_tracer

        trace_id = request.path_params["trace_id"]
        span = get_tracer().find_trace(trace_id)
        if span is None:
            raise ServiceError(404, f"no buffered trace with id {trace_id!r}")
        return span.to_dict()

    def _get_recent_querylog(self, request: JsonRequest) -> Dict[str, Any]:
        """The most recent query-log records (``?limit=N``, default 20)."""
        from ..obs import get_query_log

        try:
            limit = int(request.query.get("limit", "20"))
        except ValueError:
            raise ServiceError(400, "limit must be an integer") from None
        log = get_query_log()
        return {
            "total": log.total,
            "records": [r.to_dict() for r in log.recent(limit)],
        }

    def _post_tracing(self, request: JsonRequest) -> Dict[str, Any]:
        """Configure tracing for this process.

        Body: ``{"enabled"?: bool, "sample_rate"?: float,
        "slow_threshold_ms"?: float|null}`` — omitted knobs keep their
        current value.  Changes apply to the *current* tracer in place so
        the recent-span ring and any attached sinks survive the toggle.
        """
        from ..obs import get_tracer

        body = request.body
        if not isinstance(body, Mapping) or not (
            set(body) & {"enabled", "sample_rate", "slow_threshold_ms"}
        ):
            raise ServiceError(
                400,
                "body must set at least one of enabled / sample_rate / "
                "slow_threshold_ms",
            )
        tracer = get_tracer()
        if "enabled" in body:
            tracer.enabled = bool(body["enabled"])
        try:
            tracer.configure_sampling(
                sample_rate=body.get("sample_rate"),
                slow_threshold_ms=(
                    body["slow_threshold_ms"]
                    if "slow_threshold_ms" in body
                    else "keep"
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return tracer.sampling_config()

    def _get_execution_config(self, request: JsonRequest) -> Dict[str, Any]:
        return self.mdm.execution_config()

    def _post_execution_config(self, request: JsonRequest) -> Dict[str, Any]:
        """Tune the fetch pool and retry policy at runtime.

        Body: ``{"max_fetch_workers"?: int, "optimize"?: bool,
        "result_cache_size"?: int, "pushdown"?: bool,
        "wrapper_cache_size"?: int,
        "impact_gate"?: "off"|"advisory"|"blocking",
        "retry"?: {"attempts"?, "timeout_s"?, "backoff_base_s"?,
        "backoff_multiplier"?, "max_backoff_s"?}}`` — omitted parts keep
        their current value.
        """
        from ..sources.wrappers import RetryPolicy

        body = request.body
        policy = None
        retry = body.get("retry")
        if retry is not None:
            if not isinstance(retry, dict):
                raise ServiceError(400, "retry must be an object")
            current = self.mdm.retry_policy
            try:
                timeout = retry.get("timeout_s", current.timeout_s)
                policy = RetryPolicy(
                    attempts=int(retry.get("attempts", current.attempts)),
                    timeout_s=None if timeout is None else float(timeout),
                    backoff_base_s=float(
                        retry.get("backoff_base_s", current.backoff_base_s)
                    ),
                    backoff_multiplier=float(
                        retry.get(
                            "backoff_multiplier", current.backoff_multiplier
                        )
                    ),
                    max_backoff_s=float(
                        retry.get("max_backoff_s", current.max_backoff_s)
                    ),
                )
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, f"invalid retry policy: {exc}") from exc
        try:
            optimize = body.get("optimize")
            rc_size = body.get("result_cache_size")
            pushdown = body.get("pushdown")
            wc_size = body.get("wrapper_cache_size")
            self.mdm.configure_execution(
                max_fetch_workers=body.get("max_fetch_workers"),
                retry_policy=policy,
                optimize=None if optimize is None else bool(optimize),
                result_cache_size=None if rc_size is None else int(rc_size),
                pushdown=None if pushdown is None else bool(pushdown),
                wrapper_cache_size=None if wc_size is None else int(wc_size),
                impact_gate=body.get("impact_gate"),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return self.mdm.execution_config()

    def _get_failpoints(self, request: JsonRequest) -> Dict[str, Any]:
        """Armed failpoints, trigger counts and the recent trigger log."""
        from ..chaos.failpoints import get_failpoints

        return get_failpoints().state()

    def _post_failpoints(self, request: JsonRequest) -> Dict[str, Any]:
        """Operate the process failpoint registry (chaos testing surface).

        Body (any combination; applied in this order):
        ``{"clear"?: true, "spec"?: "site=mode:cond;…",
        "disarm"?: "site", "release"?: "site" | true}`` — ``release``
        frees threads blocked on ``hang`` failpoints.  Returns the
        registry state, like ``GET /failpoints``.
        """
        from ..chaos.failpoints import get_failpoints

        body = request.body
        if not isinstance(body, dict) or not body:
            raise ServiceError(
                400, "body must be an object with spec/disarm/release/clear"
            )
        registry = get_failpoints()
        if body.get("clear"):
            registry.clear()
        spec = body.get("spec")
        if spec is not None:
            if not isinstance(spec, str):
                raise ServiceError(400, "spec must be a failpoint spec string")
            try:
                registry.arm_spec(spec)
            except ValueError as exc:
                raise ServiceError(400, str(exc)) from exc
        disarm = body.get("disarm")
        if disarm is not None:
            registry.disarm(str(disarm))
        release = body.get("release")
        if release is not None:
            registry.release(None if release is True else str(release))
        return registry.state()

    def _get_trig(self, request: JsonRequest) -> Dict[str, Any]:
        return {"trig": self.mdm.to_trig()}

    def _get_summary(self, request: JsonRequest) -> Dict[str, Any]:
        return dict(self.mdm.summary())
