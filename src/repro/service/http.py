"""A minimal in-process HTTP-style router (the Jersey substitute).

MDM's backend "is implemented as a set of REST APIs ... thus the frontend
interacts with the backend by means of HTTP REST calls" (paper §2.5).
Offline we keep the exact interaction shape — method + path + JSON body
in, status + JSON body out — without sockets: handlers are called
directly, so the service layer is deterministic and unit-testable.

Routes use ``:name`` segments for path parameters::

    router.add("POST", "/sources/:name/wrappers", handler)
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..obs import get_metrics, get_tracer

__all__ = ["JsonRequest", "JsonResponse", "Router", "ServiceError"]


class ServiceError(Exception):
    """Raised by handlers to produce a non-200 response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class JsonRequest:
    """One request: method, path, path params, query params, JSON body."""

    method: str
    path: str
    path_params: Mapping[str, str] = field(default_factory=dict)
    query: Mapping[str, str] = field(default_factory=dict)
    body: Any = None

    def require(self, *keys: str) -> Tuple[Any, ...]:
        """Fetch required body keys; raises 400 if any is missing."""
        if not isinstance(self.body, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        missing = [k for k in keys if k not in self.body]
        if missing:
            raise ServiceError(400, f"missing body fields: {missing}")
        return tuple(self.body[k] for k in keys)


@dataclass(frozen=True)
class JsonResponse:
    """One response: status and a JSON-serializable body."""

    status: int
    body: Any

    @property
    def ok(self) -> bool:
        """Whether the status is 2xx."""
        return 200 <= self.status < 300

    def json(self) -> str:
        """The body serialized as JSON text."""
        return json.dumps(self.body, indent=2, sort_keys=True)


Handler = Callable[[JsonRequest], Any]


class _Route:
    def __init__(self, method: str, pattern: str, handler: Handler):
        self.method = method.upper()
        #: The original pattern (e.g. ``/sources/:name/wrappers``) — the
        #: low-cardinality label value for per-route metrics.
        self.pattern = pattern
        self.handler = handler
        self.param_names: List[str] = []
        regex_parts: List[str] = []
        for segment in pattern.strip("/").split("/"):
            if segment.startswith(":"):
                self.param_names.append(segment[1:])
                regex_parts.append(r"([^/]+)")
            else:
                regex_parts.append(re.escape(segment))
        self.regex = re.compile("^/" + "/".join(regex_parts) + "$")

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method.upper() != self.method:
            return None
        m = self.regex.match(path)
        if m is None:
            return None
        return dict(zip(self.param_names, m.groups()))


class Router:
    """Dispatches requests to registered handlers."""

    def __init__(self):
        self._routes: List[_Route] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register a handler for ``method pattern``."""
        self._routes.append(_Route(method, pattern, handler))

    def dispatch(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: Optional[Mapping[str, str]] = None,
    ) -> JsonResponse:
        """Route one request; returns a :class:`JsonResponse` always.

        Handler return values become 200 bodies; :class:`ServiceError`
        maps to its status; other exceptions map to 500 with the message.

        Every dispatch feeds the per-route request counter and latency
        histogram (``mdm_http_requests_total`` /
        ``mdm_http_request_seconds``, labeled by the route *pattern*, not
        the raw path, to keep cardinality bounded) and runs under an
        ``http:<METHOD> <pattern>`` span when tracing is enabled.
        """
        metrics = get_metrics()
        requests_total = metrics.counter(
            "mdm_http_requests_total",
            "HTTP-style requests dispatched, by route and status.",
            labelnames=("method", "route", "status"),
        )
        for route in self._routes:
            params = route.match(method, path)
            if params is None:
                continue
            request = JsonRequest(
                method=method.upper(),
                path=path,
                path_params=params,
                query=dict(query or {}),
                body=body,
            )
            started = time.perf_counter()
            with get_tracer().span(
                f"http:{route.method} {route.pattern}"
            ) as span:
                try:
                    result = route.handler(request)
                    response = JsonResponse(200, result)
                except ServiceError as exc:
                    response = JsonResponse(exc.status, {"error": exc.message})
                except Exception as exc:  # noqa: BLE001 — service boundary
                    response = JsonResponse(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                span.set_tag("status", response.status)
            requests_total.inc(
                method=route.method,
                route=route.pattern,
                status=str(response.status),
            )
            metrics.histogram(
                "mdm_http_request_seconds",
                "Latency of HTTP-style request handling.",
                labelnames=("route",),
            ).observe(time.perf_counter() - started, route=route.pattern)
            return response
        requests_total.inc(
            method=method.upper(), route="<unmatched>", status="404"
        )
        return JsonResponse(404, {"error": f"no route for {method} {path}"})

    def routes(self) -> List[Tuple[str, str]]:
        """The registered (method, pattern-regex) pairs for introspection."""
        return [(r.method, r.regex.pattern) for r in self._routes]
