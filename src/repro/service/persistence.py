"""Durability for MDM state (the Jena TDB substitute).

One MDM instance's metadata lives in two stores:

- the RDF dataset (global graph, source graph, LAV named graphs), saved
  as a TriG document;
- the document store (releases, sources, query log), saved as JSONL.

``save`` writes both under a directory; ``load`` reconstructs an
:class:`~repro.core.mdm.MDM` from them.  Runtime wrapper objects (live
fetch functions) cannot be serialized — callers re-attach them by name
with :func:`attach_wrappers` after loading, mirroring how the real system
re-establishes connections on restart.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List

from ..core.mdm import MDM
from ..core.vocabulary import M
from ..docstore.store import DocumentStore
from ..rdf.trig import parse_trig, serialize_trig
from ..sources.wrappers import Wrapper

__all__ = ["save_mdm", "load_mdm", "attach_wrappers", "DATASET_FILE", "METADATA_FILE"]

DATASET_FILE = "mdm-dataset.trig"
METADATA_FILE = "mdm-metadata.jsonl"


def save_mdm(mdm: MDM, directory: os.PathLike) -> Path:
    """Persist ``mdm``'s dataset and metadata under ``directory``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / DATASET_FILE).write_text(serialize_trig(mdm.dataset))
    mdm.metadata.save(target / METADATA_FILE)
    return target


def load_mdm(directory: os.PathLike) -> MDM:
    """Reconstruct an MDM from a saved directory.

    The source-name index is rebuilt from the source graph's labels;
    runtime wrappers must be re-attached (see :func:`attach_wrappers`).
    """
    source = Path(directory)
    dataset_path = source / DATASET_FILE
    metadata_path = source / METADATA_FILE
    if not dataset_path.exists():
        raise FileNotFoundError(f"no dataset snapshot at {dataset_path}")
    mdm = MDM()
    parse_trig(dataset_path.read_text(), mdm.dataset)
    if metadata_path.exists():
        mdm.metadata = DocumentStore(metadata_path)
        from ..core.releases import GovernanceLog

        mdm.governance = GovernanceLog(mdm.metadata)
    _rebuild_source_index(mdm)
    return mdm


def _rebuild_source_index(mdm: MDM) -> None:

    graph = mdm.source_graph.graph
    for source in mdm.source_graph.data_sources():
        # Source IRIs are minted as mdm:dataSource/<name>; recover <name>.
        local = source.value[len(M.base):]
        if local.startswith("dataSource/"):
            name = local[len("dataSource/"):]
            mdm._sources_by_name[name] = source  # noqa: SLF001


def attach_wrappers(mdm: MDM, wrappers: Iterable[Wrapper]) -> List[str]:
    """Re-attach runtime wrappers by name; returns the attached names.

    Raises :class:`KeyError` if a wrapper's name is not registered in the
    source graph — attaching an unknown wrapper almost certainly means
    the snapshot and the code have drifted.
    """
    attached: List[str] = []
    for wrapper in wrappers:
        if mdm.source_graph.wrapper_by_name(wrapper.name) is None:
            raise KeyError(
                f"wrapper {wrapper.name!r} is not registered in the loaded "
                "source graph"
            )
        mdm.wrappers[wrapper.name] = wrapper
        attached.append(wrapper.name)
    return attached
