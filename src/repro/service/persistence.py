"""Durability for MDM state (the Jena TDB substitute).

One MDM instance's metadata lives in two stores:

- the RDF dataset (global graph, source graph, LAV named graphs), saved
  as a TriG document;
- the document store (releases, sources, query log), saved as JSONL.

``save`` writes both under a directory; ``load`` reconstructs an
:class:`~repro.core.mdm.MDM` from them.  Runtime wrapper objects (live
fetch functions) cannot be serialized — callers re-attach them by name
with :func:`attach_wrappers` after loading, mirroring how the real system
re-establishes connections on restart.

**Crash safety.**  Both files are written to temporaries in the target
directory and published with ``os.replace``, and the two replaces happen
back-to-back after *both* temporaries are fully staged — a crash at any
injectable point before the commit leaves the previous snapshot exactly
as it was, and a reader never observes a truncated file.  The chaos
harness drives this through the ``persistence.save.*`` failpoints (see
:data:`repro.chaos.failpoints.SITES`); the only residual window is
between the two ``os.replace`` calls themselves, where a crash leaves
the *new* dataset next to the *old* metadata — both individually intact,
never truncated.  The ``persistence.save.metadata`` failpoint sits in
that window deliberately, so tests can pin down exactly what it costs.

Loading raises the typed :class:`~repro.core.errors.SnapshotMissingError`
/ :class:`~repro.core.errors.SnapshotCorruptError` instead of bare
parser exceptions, so the service layer can distinguish "nothing saved
yet" from "the snapshot is damaged".
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterable, List

from ..chaos.failpoints import fire as _failpoint
from ..core.errors import SnapshotCorruptError, SnapshotMissingError
from ..core.mdm import MDM
from ..core.vocabulary import M
from ..docstore.store import DocumentStore
from ..rdf.trig import parse_trig, serialize_trig
from ..sources.wrappers import Wrapper

__all__ = ["save_mdm", "load_mdm", "attach_wrappers", "DATASET_FILE", "METADATA_FILE"]

DATASET_FILE = "mdm-dataset.trig"
METADATA_FILE = "mdm-metadata.jsonl"


def _stage_text(target_dir: Path, text: str, mid_site: str) -> str:
    """Write ``text`` to a temp file in ``target_dir``; return its name.

    The write happens in two halves with a failpoint between them so the
    chaos harness can kill the process "mid-write" — the target file is
    untouched either way.
    """
    fd, temp_name = tempfile.mkstemp(dir=str(target_dir), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            half = len(text) // 2
            handle.write(text[:half])
            _failpoint(mid_site)
            handle.write(text[half:])
        return temp_name
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise


def save_mdm(mdm: MDM, directory: os.PathLike) -> Path:
    """Persist ``mdm``'s dataset and metadata under ``directory``.

    Atomic per file (temp + ``os.replace``), with both temporaries fully
    staged before either replace — an injected crash anywhere up to the
    commit leaves the previous snapshot intact.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    _failpoint("persistence.save")
    dataset_tmp = _stage_text(
        target, serialize_trig(mdm.dataset), "persistence.save.dataset.mid"
    )
    metadata_tmp = None
    try:
        _failpoint("persistence.save.dataset")
        fd, metadata_tmp = tempfile.mkstemp(dir=str(target), suffix=".tmp")
        os.close(fd)
        mdm.metadata.save(metadata_tmp)
        _failpoint("persistence.save.commit")
        os.replace(dataset_tmp, target / DATASET_FILE)
        dataset_tmp = None
        _failpoint("persistence.save.metadata")
        os.replace(metadata_tmp, target / METADATA_FILE)
        metadata_tmp = None
    finally:
        for leftover in (dataset_tmp, metadata_tmp):
            if leftover is not None and os.path.exists(leftover):
                os.unlink(leftover)
    return target


def load_mdm(directory: os.PathLike) -> MDM:
    """Reconstruct an MDM from a saved directory.

    The source-name index is rebuilt from the source graph's labels;
    runtime wrappers must be re-attached (see :func:`attach_wrappers`).

    Raises :class:`SnapshotMissingError` when the dataset file is absent
    and :class:`SnapshotCorruptError` when either file fails to parse.
    """
    source = Path(directory)
    dataset_path = source / DATASET_FILE
    metadata_path = source / METADATA_FILE
    _failpoint("persistence.load")
    if not dataset_path.exists():
        raise SnapshotMissingError(dataset_path, "no dataset snapshot")
    mdm = MDM()
    text = _failpoint("persistence.load.dataset", payload=dataset_path.read_text())
    try:
        parse_trig(text, mdm.dataset)
    except Exception as exc:
        raise SnapshotCorruptError(dataset_path, exc) from exc
    if metadata_path.exists():
        _failpoint("persistence.load.metadata")
        try:
            mdm.metadata = DocumentStore(metadata_path)
        except Exception as exc:
            raise SnapshotCorruptError(metadata_path, exc) from exc
        from ..core.releases import GovernanceLog

        mdm.governance = GovernanceLog(mdm.metadata)
    _rebuild_source_index(mdm)
    return mdm


def _rebuild_source_index(mdm: MDM) -> None:

    graph = mdm.source_graph.graph
    for source in mdm.source_graph.data_sources():
        # Source IRIs are minted as mdm:dataSource/<name>; recover <name>.
        local = source.value[len(M.base):]
        if local.startswith("dataSource/"):
            name = local[len("dataSource/"):]
            mdm._sources_by_name[name] = source  # noqa: SLF001


def attach_wrappers(mdm: MDM, wrappers: Iterable[Wrapper]) -> List[str]:
    """Re-attach runtime wrappers by name; returns the attached names.

    Raises :class:`KeyError` if a wrapper's name is not registered in the
    source graph — attaching an unknown wrapper almost certainly means
    the snapshot and the code have drifted.
    """
    attached: List[str] = []
    for wrapper in wrappers:
        if mdm.source_graph.wrapper_by_name(wrapper.name) is None:
            raise KeyError(
                f"wrapper {wrapper.name!r} is not registered in the loaded "
                "source graph"
            )
        mdm.wrappers[wrapper.name] = wrapper
        attached.append(wrapper.name)
    return attached
