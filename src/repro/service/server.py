"""The socket front end: a real HTTP server over the in-process router.

The paper's backend is "a set of REST APIs" consumed by a web frontend
over HTTP (§2.5).  :mod:`repro.service.http` keeps that interaction
shape in-process for deterministic unit tests; this module puts actual
sockets in front of the same :class:`~repro.service.api.MdmService` so
many OS-level clients can hit one MDM concurrently:

- :class:`MdmHttpServer` is a ``ThreadingHTTPServer`` whose handler
  adapts each socket request (method, path, query string, JSON body)
  onto ``Router.dispatch`` — one handler thread per connection, JSON in
  / JSON out, ``str`` bodies passed through as ``text/plain`` so
  ``GET /metrics`` stays scrapeable by Prometheus.
- **Admission control**: a bounded in-flight-request semaphore.  When
  ``max_in_flight`` requests are already executing, new ones are turned
  away immediately with ``429 Too Many Requests`` + a ``Retry-After``
  header instead of queueing unboundedly; rejections are counted in
  ``mdm_requests_rejected_total``.
- **Graceful shutdown**: :meth:`MdmHttpServer.stop` stops accepting,
  joins every handler thread (``block_on_close``), and closes the
  listening socket — no stray threads survive it.

The in-process router remains the unit-test surface; this wrapper adds
only transport and back-pressure, never routing logic.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qsl, urlparse

from ..chaos.failpoints import FailpointError
from ..chaos.failpoints import fire as _failpoint
from ..obs import get_metrics
from .api import MdmService

__all__ = ["MdmHttpServer", "serve"]

#: Requests already executing before new ones are bounced with a 429.
DEFAULT_MAX_IN_FLIGHT = 32
#: Seconds suggested to rejected clients via the ``Retry-After`` header.
DEFAULT_RETRY_AFTER_S = 1


class _MdmRequestHandler(BaseHTTPRequestHandler):
    """Adapts one socket request onto the service's router."""

    # HTTP/1.0: the connection closes after each response, so handler
    # threads never linger on keep-alive sockets and stop() can join
    # them all.  Clients pay a reconnect per request, which is the right
    # trade for a governance service (queries dominate, not chatter).
    protocol_version = "HTTP/1.0"
    server_version = "repro-mdm"
    sys_version = ""

    # The driving server (typed for readers; set by socketserver).
    server: "MdmHttpServer"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence the default per-request stderr line.

        The router already feeds ``mdm_http_requests_total`` and the
        request-latency histogram; a second, unstructured log stream
        would just interleave garbage under concurrency.
        """

    # One implementation for every verb the router understands.
    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _read_body(self) -> Tuple[bool, Any]:
        """(ok, parsed JSON body or None) — draining the socket either way."""
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return True, None
        raw = self.rfile.read(length)
        try:
            return True, json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return False, None

    def _handle(self, method: str) -> None:
        server = self.server
        try:
            # Chaos hook: delay/hang simulate a slow accept loop, error
            # turns into a 503 the way a dying front end would answer.
            _failpoint("service.admission")
        except FailpointError as exc:
            self._read_body()
            self._send(503, {"error": str(exc)})
            return
        if not server.admission.acquire(blocking=False):
            # Saturated: drain the request so the client can read the
            # response, then bounce with back-pressure advice.
            self._read_body()
            get_metrics().counter(
                "mdm_requests_rejected_total",
                "Requests refused by admission control (HTTP 429).",
            ).inc()
            self._send(
                429,
                {"error": "server saturated; retry later"},
                extra_headers={"Retry-After": str(server.retry_after_s)},
            )
            return
        try:
            ok, body = self._read_body()
            if not ok:
                self._send(400, {"error": "request body is not valid JSON"})
                return
            parsed = urlparse(self.path)
            query = dict(parse_qsl(parsed.query))
            response = server.service.request(method, parsed.path, body, query)
            self._send(response.status, response.body)
        finally:
            server.admission.release()

    def _send(
        self,
        status: int,
        body: Any,
        extra_headers: Optional[dict] = None,
    ) -> None:
        if isinstance(body, str):
            # Plain-text passthrough — the Prometheus exposition format
            # of GET /metrics must not be JSON-wrapped.
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up mid-response; nothing left to salvage


class MdmHttpServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MdmService`.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    resolved address.  Use :meth:`start`/:meth:`stop` for a background
    server or :meth:`serve_forever` to block the calling thread (the
    CLI path).
    """

    daemon_threads = True
    # block_on_close stays at the ThreadingMixIn default (True):
    # server_close() joins every handler thread, which is exactly the
    # "graceful shutdown leaves no stray threads" guarantee.

    def __init__(
        self,
        service: MdmService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        retry_after_s: int = DEFAULT_RETRY_AFTER_S,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        super().__init__((host, port), _MdmRequestHandler)
        self.service = service
        self.max_in_flight = max_in_flight
        self.retry_after_s = retry_after_s
        self.admission = threading.BoundedSemaphore(max_in_flight)
        self._serve_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def url(self) -> str:
        """The server's base URL (resolved even for ephemeral ports)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MdmHttpServer":
        """Serve on a background thread; returns self for chaining."""
        if self._serve_thread is not None:
            raise RuntimeError("server is already running")
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="mdm-http-serve", daemon=True
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, join all handler threads, close the socket."""
        self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None
        self.server_close()

    def __enter__(self) -> "MdmHttpServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(
    service: MdmService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    retry_after_s: int = DEFAULT_RETRY_AFTER_S,
) -> MdmHttpServer:
    """Start a background :class:`MdmHttpServer`; caller owns ``stop()``."""
    return MdmHttpServer(
        service,
        host=host,
        port=port,
        max_in_flight=max_in_flight,
        retry_after_s=retry_after_s,
    ).start()
