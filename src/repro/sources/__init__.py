"""Simulated REST sources, formats, schema evolution and wrappers."""

from .datagen import Country, FootballDataset, League, Player, Team
from .evolution import (
    AddField,
    ChangeType,
    EndpointVersion,
    FlattenField,
    NestFields,
    RemoveField,
    RenameField,
    SchemaChange,
    release_version,
)
from .formats import (
    decode_csv,
    decode_json,
    decode_xml,
    encode_csv,
    encode_json,
    encode_xml,
    flatten_record,
    flatten_records,
)
from .restapi import Endpoint, HttpError, MockRestServer, Request, Response
from .wrappers import (
    AttributeSpec,
    RestWrapper,
    StaticWrapper,
    Wrapper,
    WrapperSchemaError,
)

__all__ = [
    "FootballDataset",
    "Country",
    "League",
    "Team",
    "Player",
    "MockRestServer",
    "Endpoint",
    "Request",
    "Response",
    "HttpError",
    "SchemaChange",
    "RenameField",
    "RemoveField",
    "AddField",
    "ChangeType",
    "NestFields",
    "FlattenField",
    "EndpointVersion",
    "release_version",
    "Wrapper",
    "RestWrapper",
    "StaticWrapper",
    "WrapperSchemaError",
    "AttributeSpec",
    "encode_json",
    "decode_json",
    "encode_xml",
    "decode_xml",
    "encode_csv",
    "decode_csv",
    "flatten_record",
    "flatten_records",
]
