"""Deterministic synthetic football data (the paper's motivational domain).

The EDBT demo integrates four REST APIs about european football — players,
teams, leagues and countries (paper §1, Figure 1).  This module generates
that data deterministically:

- a fixed set of *anchor* entities reproducing every value the paper
  prints (Lionel Messi #6176 at FC Barcelona #25 with height 170.18,
  weight 159, rating 94, preferred foot "left"; Robert Lewandowski at
  Bayern Munich; Zlatan Ibrahimovic at Manchester United — Figure 2 and
  Table 1), plus players whose nationality matches their league's country
  so the intro query "players that play in a league of their nationality"
  has a non-empty answer;
- optionally, seeded pseudo-random extras to scale workloads for the
  benchmarks.

All generation is pure-Python ``random.Random(seed)``, so a given seed
always produces byte-identical datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Country", "League", "Team", "Player", "FootballDataset"]


@dataclass(frozen=True)
class Country:
    """A national association."""

    id: int
    name: str
    code: str


@dataclass(frozen=True)
class League:
    """A national league competition."""

    id: int
    name: str
    country_id: int


@dataclass(frozen=True)
class Team:
    """A football club."""

    id: int
    name: str
    short_name: str
    league_id: int


@dataclass(frozen=True)
class Player:
    """A player with the attributes shown in the paper's Figure 2."""

    id: int
    name: str
    height: float
    weight: int
    rating: int
    preferred_foot: str
    team_id: int
    nationality_id: int


_ANCHOR_COUNTRIES = [
    Country(1, "Spain", "ESP"),
    Country(2, "Germany", "GER"),
    Country(3, "England", "ENG"),
    Country(4, "Argentina", "ARG"),
    Country(5, "Poland", "POL"),
    Country(6, "Sweden", "SWE"),
]

_ANCHOR_LEAGUES = [
    League(100, "La Liga", 1),
    League(101, "Bundesliga", 2),
    League(102, "Premier League", 3),
]

_ANCHOR_TEAMS = [
    Team(25, "FC Barcelona", "FCB", 100),
    Team(26, "Bayern Munich", "BAY", 101),
    Team(27, "Manchester United", "MUN", 102),
    Team(28, "Real Madrid", "RMA", 100),
]

_ANCHOR_PLAYERS = [
    # The exact record from Figure 2.
    Player(6176, "Lionel Messi", 170.18, 159, 94, "left", 25, 4),
    Player(6300, "Robert Lewandowski", 184.0, 176, 92, "right", 26, 5),
    Player(6400, "Zlatan Ibrahimovic", 195.0, 209, 90, "right", 27, 6),
    # Nationality == league country (for the intro query).
    Player(6500, "Sergio Ramos", 183.0, 181, 90, "right", 28, 1),
    Player(6600, "Thomas Muller", 185.0, 165, 87, "right", 26, 2),
    Player(6700, "Marcus Rashford", 180.0, 154, 84, "right", 27, 3),
]

_FIRST_NAMES = [
    "Marco", "Luis", "Karim", "Pedro", "Jan", "Erik", "Nils", "Hugo",
    "Iker", "Dani", "Samu", "Oscar", "Pau", "Leo", "Bruno", "Andre",
]
_LAST_NAMES = [
    "Garcia", "Muller", "Smith", "Rossi", "Kovacs", "Nowak", "Jansen",
    "Silva", "Costa", "Weber", "Moreau", "Novak", "Berg", "Lund",
]


@dataclass
class FootballDataset:
    """The four entity collections plus lookup helpers."""

    countries: List[Country] = field(default_factory=list)
    leagues: List[League] = field(default_factory=list)
    teams: List[Team] = field(default_factory=list)
    players: List[Player] = field(default_factory=list)

    @classmethod
    def anchors_only(cls) -> "FootballDataset":
        """Exactly the paper's entities, nothing synthetic."""
        return cls(
            countries=list(_ANCHOR_COUNTRIES),
            leagues=list(_ANCHOR_LEAGUES),
            teams=list(_ANCHOR_TEAMS),
            players=list(_ANCHOR_PLAYERS),
        )

    @classmethod
    def generate(
        cls,
        seed: int = 2018,
        extra_teams: int = 12,
        extra_players_per_team: int = 4,
    ) -> "FootballDataset":
        """Anchors plus seeded synthetic teams and players.

        Synthetic teams are spread round-robin over the anchor leagues;
        synthetic players get plausible physique values and a nationality
        that equals the league's country for roughly one in three players
        (keeping the intro query interesting at scale).
        """
        rng = random.Random(seed)
        dataset = cls.anchors_only()
        next_team_id = 1000
        next_player_id = 10000
        for i in range(extra_teams):
            league = dataset.leagues[i % len(dataset.leagues)]
            first = rng.choice(_LAST_NAMES)
            team = Team(
                next_team_id,
                f"{first} FC {next_team_id}",
                f"T{next_team_id % 1000:03d}",
                league.id,
            )
            next_team_id += 1
            dataset.teams.append(team)
        for team in dataset.teams:
            if team.id < 1000:
                continue  # anchors already have players
            league = dataset.league_by_id(team.league_id)
            for _ in range(extra_players_per_team):
                if rng.random() < 0.34:
                    nationality = league.country_id
                else:
                    nationality = rng.choice(dataset.countries).id
                player = Player(
                    id=next_player_id,
                    name=f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
                    height=round(rng.uniform(165.0, 200.0), 2),
                    weight=rng.randint(130, 220),
                    rating=rng.randint(55, 93),
                    preferred_foot=rng.choice(["left", "right"]),
                    team_id=team.id,
                    nationality_id=nationality,
                )
                next_player_id += 1
                dataset.players.append(player)
        return dataset

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def team_by_id(self, team_id: int) -> Team:
        """The team with that id (raises KeyError if absent)."""
        return self._index(self.teams)[team_id]

    def league_by_id(self, league_id: int) -> League:
        """The league with that id."""
        return self._index(self.leagues)[league_id]

    def country_by_id(self, country_id: int) -> Country:
        """The country with that id."""
        return self._index(self.countries)[country_id]

    def player_by_id(self, player_id: int) -> Player:
        """The player with that id."""
        return self._index(self.players)[player_id]

    @staticmethod
    def _index(items) -> Dict[int, object]:
        return {item.id: item for item in items}

    def players_in_national_league(self) -> List[Player]:
        """Ground truth for "players that play in a league of their
        nationality" — used to check the rewritten OMQ end-to-end."""
        result = []
        team_index = self._index(self.teams)
        league_index = self._index(self.leagues)
        for player in self.players:
            team = team_index.get(player.team_id)
            if team is None:
                continue
            league = league_index.get(team.league_id)
            if league is not None and league.country_id == player.nationality_id:
                result.append(player)
        return result
