"""Schema-evolution operators for the simulated REST APIs.

"In the last year Facebook's Graph API released four major versions
affecting more than twenty endpoints each, many of them breaking changes"
(paper §1).  This module reproduces that phenomenon programmatically: a
new :class:`EndpointVersion` is the previous version's record shape pushed
through a list of :class:`SchemaChange` operators.

Operators cover the breaking-change taxonomy of the schema-evolution
literature the paper cites (Caruccio et al. 2016):

``RenameField``   — attribute renamed (breaking for consumers)
``RemoveField``   — attribute dropped (breaking)
``AddField``      — attribute added (non-breaking)
``ChangeType``    — value representation changes, e.g. int → string
``NestFields``    — flat attributes moved under a sub-object (breaking)
``FlattenField``  — a sub-object inlined into the top level
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .restapi import Endpoint, MockRestServer, Record

__all__ = [
    "SchemaChange",
    "RenameField",
    "RemoveField",
    "AddField",
    "ChangeType",
    "NestFields",
    "FlattenField",
    "EndpointVersion",
    "release_version",
    "evolve_signature",
]


class SchemaChange:
    """Base class: a pure record-shape transformation."""

    #: Whether existing consumers break without adaptation.
    breaking: bool = True

    def apply(self, record: Record) -> Record:
        """Return the transformed copy of ``record``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable change description for governance logs."""
        raise NotImplementedError

    def signature_effect(self, names: Sequence[str]) -> List[str]:
        """The attribute-name-level effect of this change on a signature.

        This is the *static* shadow of :meth:`apply`: the impact analyzer
        derives a proposed wrapper's signature from its predecessor's
        without materialising a single record.  Changes that only touch
        values (``ChangeType``) leave the names untouched.
        """
        return list(names)


@dataclass(frozen=True)
class RenameField(SchemaChange):
    """Rename a top-level field."""

    old: str
    new: str
    breaking = True

    def apply(self, record: Record) -> Record:
        out = dict(record)
        if self.old in out:
            out[self.new] = out.pop(self.old)
        return out

    def describe(self) -> str:
        return f"rename {self.old} -> {self.new}"

    def signature_effect(self, names: Sequence[str]) -> List[str]:
        return [self.new if n == self.old else n for n in names]


@dataclass(frozen=True)
class RemoveField(SchemaChange):
    """Drop a field entirely."""

    name: str
    breaking = True

    def apply(self, record: Record) -> Record:
        out = dict(record)
        out.pop(self.name, None)
        return out

    def describe(self) -> str:
        return f"remove {self.name}"

    def signature_effect(self, names: Sequence[str]) -> List[str]:
        return [n for n in names if n != self.name]


@dataclass(frozen=True)
class AddField(SchemaChange):
    """Add a field computed from the record (or a constant)."""

    name: str
    compute: Callable[[Record], Any]
    breaking = False

    def apply(self, record: Record) -> Record:
        out = dict(record)
        out[self.name] = self.compute(record)
        return out

    def describe(self) -> str:
        return f"add {self.name}"

    def signature_effect(self, names: Sequence[str]) -> List[str]:
        out = list(names)
        if self.name not in out:
            out.append(self.name)
        return out


@dataclass(frozen=True)
class ChangeType(SchemaChange):
    """Change a field's value representation (e.g. ``str``)."""

    name: str
    converter: Callable[[Any], Any]
    breaking = True

    def apply(self, record: Record) -> Record:
        out = dict(record)
        if self.name in out and out[self.name] is not None:
            out[self.name] = self.converter(out[self.name])
        return out

    def describe(self) -> str:
        return f"retype {self.name}"


@dataclass(frozen=True)
class NestFields(SchemaChange):
    """Move flat fields under a new sub-object key."""

    names: Sequence[str]
    under: str
    breaking = True

    def apply(self, record: Record) -> Record:
        out = dict(record)
        nested: Dict[str, Any] = {}
        for name in self.names:
            if name in out:
                nested[name] = out.pop(name)
        out[self.under] = nested
        return out

    def describe(self) -> str:
        return f"nest {list(self.names)} under {self.under}"

    def signature_effect(self, names: Sequence[str]) -> List[str]:
        out = [n for n in names if n not in set(self.names)]
        out.append(self.under)
        return out


@dataclass(frozen=True)
class FlattenField(SchemaChange):
    """Inline a sub-object's keys into the top level (prefix optional)."""

    name: str
    prefix: str = ""
    breaking = True

    def apply(self, record: Record) -> Record:
        out = dict(record)
        nested = out.pop(self.name, None)
        if isinstance(nested, Mapping):
            for key, value in nested.items():
                out[f"{self.prefix}{key}"] = value
        return out

    def describe(self) -> str:
        return f"flatten {self.name}"

    def signature_effect(self, names: Sequence[str]) -> List[str]:
        # The sub-object's keys are value-level information; statically we
        # only know the nested container disappears from the signature.
        return [n for n in names if n != self.name]


@dataclass
class EndpointVersion:
    """A concrete API version: base provider + accumulated changes."""

    name: str
    version: int
    payload_format: str
    base_provider: Callable[[], List[Record]]
    changes: List[SchemaChange] = field(default_factory=list)

    def provider(self) -> List[Record]:
        """Records after applying this version's change pipeline."""
        records = [dict(r) for r in self.base_provider()]
        for change in self.changes:
            records = [change.apply(r) for r in records]
        return records

    def successor(
        self,
        changes: Sequence[SchemaChange],
        payload_format: Optional[str] = None,
    ) -> "EndpointVersion":
        """The next version: same base, previous changes plus new ones."""
        return EndpointVersion(
            name=self.name,
            version=self.version + 1,
            payload_format=payload_format or self.payload_format,
            base_provider=self.base_provider,
            changes=list(self.changes) + list(changes),
        )

    @property
    def is_breaking(self) -> bool:
        """Whether this version introduced at least one breaking change."""
        return any(c.breaking for c in self.changes)

    def changelog(self) -> List[str]:
        """Descriptions of every change since the base version."""
        return [c.describe() for c in self.changes]


def evolve_signature(
    names: Sequence[str], changes: Sequence[SchemaChange]
) -> List[str]:
    """Fold a change pipeline over a signature's attribute names.

    The static counterpart of :meth:`EndpointVersion.provider`: what the
    successor wrapper's signature looks like, derived without records.
    """
    out = list(names)
    for change in changes:
        out = change.signature_effect(out)
    return out


def release_version(
    server: MockRestServer,
    version: EndpointVersion,
    retire_previous: bool = False,
    **endpoint_kwargs,
) -> Endpoint:
    """Mount ``version`` on ``server``; optionally retire its predecessor.

    Returns the mounted :class:`Endpoint`.  This is the source-side half of
    the paper's "governance of evolution" demo scenario — the provider
    ships v(N+1); whether v(N) keeps working is the provider's choice.
    """
    endpoint = Endpoint(
        name=version.name,
        version=version.version,
        payload_format=version.payload_format,
        provider=version.provider,
        **endpoint_kwargs,
    )
    server.register(endpoint)
    if retire_previous and version.version > 1:
        try:
            server.retire(version.name, version.version - 1)
        except KeyError:
            pass  # predecessor was never mounted in this simulation
    return endpoint
