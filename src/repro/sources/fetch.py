"""Pushed-down fetch requests across the wrapper boundary.

The optimizer's pushdown pass (``PlanOptimizer.extract_pushdown``) folds
eligible σ/π operators into the :class:`~repro.relational.algebra.Scan`
they sit on; this module is the *transport* form of that folded work: a
:class:`FetchRequest` travels from the mediator to a wrapper, which
answers with only the rows/columns the query needs (OBDA-style source
delegation, cf. arXiv:1801.05161 §5).

The contract is **exactness**, not best effort: a wrapper that declares
the ``filters`` capability must return exactly the rows an executor-side
``Select`` with the same conjunction would keep (NULL comparisons are
False; incomparable types fall back to string comparison for ``=``/``!=``
only).  Wrappers that can only *pre*-filter (e.g. a REST endpoint whose
query parameters compare stringified raw fields) must re-apply the exact
predicate to the typed relation before returning — see
``RestWrapper._fetch_push``.  Uncapable wrappers fall back to a full
fetch with the request applied mediator-side, so pushdown never changes
results, only where the filtering happens.

Requests are canonicalized (filters sorted, columns as fetched order)
so structurally equal scans dedupe to one source round-trip and one
wrapper-cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..relational.algebra import canonical_scan_filters
from ..relational.relation import Relation

__all__ = [
    "CAP_FILTERS",
    "CAP_PROJECTION",
    "CAP_LIMIT",
    "FetchRequest",
    "FetchResult",
    "apply_fetch_request",
    "canonical_filters",
]

#: Capability flags a wrapper may declare (see ``Wrapper.capabilities``).
CAP_FILTERS = "filters"
CAP_PROJECTION = "projection"
CAP_LIMIT = "limit"

#: Comparison operators a pushed filter may use (mirrors walks._FILTER_OPS).
PUSHABLE_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Constant types that may appear in a pushed filter.
PUSHABLE_VALUE_TYPES = (str, int, float, bool, type(None))


#: Canonical filter ordering (re-exported from the algebra layer so
#: wrappers and the optimizer agree on one definition).
canonical_filters = canonical_scan_filters


@dataclass(frozen=True)
class FetchRequest:
    """What a scan needs from a wrapper: filters, columns, optional limit.

    ``filters`` holds ``(column, op, value)`` conjuncts in canonical
    order; ``columns`` is the needed-column tuple or ``None`` for every
    signature column; ``limit`` truncates after filtering.  The default
    instance is a *full* fetch, byte-identical to legacy ``fetch()``.
    """

    filters: Tuple[Tuple[str, str, Any], ...] = field(default=())
    columns: Optional[Tuple[str, ...]] = field(default=None)
    limit: Optional[int] = field(default=None)

    @property
    def is_full(self) -> bool:
        """Whether this request pushes nothing (plain full fetch)."""
        return not self.filters and self.columns is None and self.limit is None

    def canonical(self) -> str:
        """Deterministic key string (wrapper-cache / request dedup)."""
        if self.is_full:
            return "*"
        parts: List[str] = []
        if self.filters:
            rendered = ",".join(f"{c}{op}{v!r}" for c, op, v in self.filters)
            parts.append(f"σ[{rendered}]")
        if self.columns is not None:
            parts.append(f"π[{','.join(self.columns)}]")
        if self.limit is not None:
            parts.append(f"limit[{self.limit}]")
        return "".join(parts)

    def describe(self) -> Dict[str, Any]:
        """JSON-shaped summary for EXPLAIN / query-log payloads."""
        return {
            "filters": [list(f) for f in self.filters],
            "columns": None if self.columns is None else list(self.columns),
            "limit": self.limit,
        }


#: The full-fetch request (shared; FetchRequest is frozen).
FULL_FETCH = FetchRequest()


@dataclass(frozen=True)
class FetchResult:
    """A wrapper's answer to a :class:`FetchRequest`.

    ``rows_transferred`` counts rows that actually crossed the wrapper
    boundary (post source-side filtering); ``rows_source`` is the
    source's full cardinality when the wrapper knows it (``None`` for
    remote sources that never materialized the full payload here).
    """

    relation: Relation
    rows_transferred: int
    rows_source: Optional[int] = None


def apply_fetch_request(relation: Relation, request: FetchRequest) -> Relation:
    """Apply ``request`` to a full relation, mediator-side semantics.

    This is the residual/fallback evaluator: identical to running
    ``Select`` + ``Project`` in the executor, so capable and uncapable
    wrappers agree byte-for-byte.
    """
    from ..chaos.failpoints import fire as _failpoint
    from ..relational.executor import apply_pushdown

    _failpoint("fetch.apply", key=relation.name)
    return apply_pushdown(relation, request.filters, request.columns, request.limit)
