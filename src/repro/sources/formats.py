"""Payload formats for the simulated REST APIs.

The paper's sources differ in format — "the Players API provides data in
JSON format while the Teams API in XML" (Figure 2).  This module encodes
record lists to JSON, XML and CSV and decodes them back, plus the
flattening step wrappers rely on: whatever the transport format, a wrapper
must deliver rows in first normal form (paper §2.2).

XML handling uses only :mod:`xml.etree.ElementTree` from the standard
library; nested JSON objects flatten with underscore-joined paths
(``{"stats": {"goals": 3}}`` → ``stats_goals``).
"""

from __future__ import annotations

import csv
import io
import json
import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "encode_json",
    "decode_json",
    "encode_xml",
    "decode_xml",
    "encode_csv",
    "decode_csv",
    "flatten_record",
    "flatten_records",
    "PayloadFormat",
]

Record = Dict[str, Any]

#: The formats the mock REST layer can serve.
PayloadFormat = str  # "json" | "xml" | "csv"


# --------------------------------------------------------------------- #
# JSON
# --------------------------------------------------------------------- #


def encode_json(records: Sequence[Mapping[str, Any]]) -> str:
    """Serialize records as a JSON array (stable key order)."""
    return json.dumps(list(records), indent=1, sort_keys=True)


def decode_json(payload: str) -> List[Record]:
    """Parse a JSON payload into a record list.

    Accepts a bare array, a single object, or the common REST envelope
    ``{"data": [...]}``.
    """
    parsed = json.loads(payload)
    if isinstance(parsed, list):
        return [dict(item) for item in parsed]
    if isinstance(parsed, dict):
        if isinstance(parsed.get("data"), list):
            return [dict(item) for item in parsed["data"]]
        return [parsed]
    raise ValueError("JSON payload is neither an array nor an object")


# --------------------------------------------------------------------- #
# XML
# --------------------------------------------------------------------- #


def encode_xml(
    records: Sequence[Mapping[str, Any]],
    item_tag: str = "item",
    root_tag: str = "items",
) -> str:
    """Serialize records as ``<items><item><k>v</k>...</item>...</items>``.

    Mirrors the Teams API excerpt in Figure 2 (``<team><id>25</id>...``).
    Nested dicts become nested elements; lists repeat the element.
    """
    root = ET.Element(root_tag)
    for record in records:
        item = ET.SubElement(root, item_tag)
        _dict_to_xml(item, record)
    return ET.tostring(root, encoding="unicode")


def _dict_to_xml(parent: ET.Element, record: Mapping[str, Any]) -> None:
    for key, value in record.items():
        if isinstance(value, Mapping):
            child = ET.SubElement(parent, str(key))
            _dict_to_xml(child, value)
        elif isinstance(value, (list, tuple)):
            for element in value:
                child = ET.SubElement(parent, str(key))
                if isinstance(element, Mapping):
                    _dict_to_xml(child, element)
                else:
                    child.text = _scalar_to_text(element)
        else:
            child = ET.SubElement(parent, str(key))
            child.text = _scalar_to_text(value)


def _scalar_to_text(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def decode_xml(payload: str) -> List[Record]:
    """Parse an XML payload (one level of item elements under the root).

    Leaf text is kept as strings — type recovery is the wrapper's job,
    exactly as with a real XML API.
    """
    root = ET.fromstring(payload)
    records: List[Record] = []
    for item in root:
        records.append(_xml_to_dict(item))
    return records


def _xml_to_dict(element: ET.Element) -> Record:
    record: Record = {}
    for child in element:
        if len(child):
            value: Any = _xml_to_dict(child)
        else:
            value = child.text if child.text is not None else ""
        if child.tag in record:
            existing = record[child.tag]
            if isinstance(existing, list):
                existing.append(value)
            else:
                record[child.tag] = [existing, value]
        else:
            record[child.tag] = value
    return record


# --------------------------------------------------------------------- #
# CSV
# --------------------------------------------------------------------- #


def encode_csv(records: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialize records as CSV with a header row."""
    if columns is None:
        seen: List[str] = []
        seen_set = set()
        for record in records:
            for key in record:
                if key not in seen_set:
                    seen_set.add(key)
                    seen.append(key)
        columns = seen
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(columns))
    for record in records:
        writer.writerow([_scalar_to_text(record.get(c)) for c in columns])
    return buffer.getvalue()


def decode_csv(payload: str) -> List[Record]:
    """Parse CSV into records (all values strings, as on the wire)."""
    reader = csv.reader(io.StringIO(payload))
    rows = list(reader)
    if not rows:
        return []
    header = rows[0]
    return [dict(zip(header, row)) for row in rows[1:]]


# --------------------------------------------------------------------- #
# flattening (1NF)
# --------------------------------------------------------------------- #


def flatten_record(record: Mapping[str, Any], separator: str = "_") -> Record:
    """Flatten nested dicts into one level with joined keys.

    Lists of scalars are joined with ``|``; lists of dicts are indexed
    (``tags_0_name``).  The result satisfies the paper's 1NF assumption
    for wrapper output.
    """
    flat: Record = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, Mapping):
            for key, sub in value.items():
                walk(f"{prefix}{separator}{key}" if prefix else str(key), sub)
        elif isinstance(value, (list, tuple)):
            if all(not isinstance(v, (Mapping, list, tuple)) for v in value):
                flat[prefix] = "|".join(_scalar_to_text(v) for v in value)
            else:
                for index, element in enumerate(value):
                    walk(f"{prefix}{separator}{index}", element)
        else:
            flat[prefix] = value

    walk("", dict(record))
    return flat


def flatten_records(records: Sequence[Mapping[str, Any]], separator: str = "_") -> List[Record]:
    """Flatten every record; see :func:`flatten_record`."""
    return [flatten_record(r, separator) for r in records]
