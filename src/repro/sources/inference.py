"""Signature inference: bootstrap a wrapper from a live endpoint.

"Data stewards must provide the definition of the wrapper, as well as
its signature" (paper §2.2) — but for plain REST collections the
signature is mechanically derivable: fetch a sample, decode whatever
format comes back, flatten to 1NF and take the union of keys.  This
module does exactly that, returning the inferred attribute list together
with per-attribute type/nullability statistics the steward can review.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from ..relational.types import AttrType, common_type, infer_type
from .formats import decode_csv, decode_json, decode_xml, flatten_record
from .restapi import MockRestServer

__all__ = ["AttributeProfile", "SignatureProfile", "infer_signature"]


@dataclass(frozen=True)
class AttributeProfile:
    """What the sample revealed about one flattened payload key."""

    name: str
    inferred_type: AttrType
    present: int
    nulls: int
    examples: Tuple[str, ...]

    @property
    def nullable(self) -> bool:
        """Whether the attribute was ever missing or null in the sample."""
        return self.nulls > 0


@dataclass(frozen=True)
class SignatureProfile:
    """The inferred signature of an endpoint."""

    path: str
    record_count: int
    attributes: Tuple[AttributeProfile, ...]

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The signature attribute names, in first-seen order."""
        return tuple(a.name for a in self.attributes)

    def describe(self) -> str:
        """A steward-facing rendering of the inferred signature."""
        lines = [f"{self.path}: {self.record_count} sample records"]
        for attribute in self.attributes:
            flags = []
            if attribute.nullable:
                flags.append("nullable")
            suffix = f" ({', '.join(flags)})" if flags else ""
            example = f" e.g. {attribute.examples[0]}" if attribute.examples else ""
            lines.append(
                f"  {attribute.name}: {attribute.inferred_type}{suffix}{example}"
            )
        return "\n".join(lines)


def infer_signature(
    server: MockRestServer,
    path: str,
    params: Optional[Mapping[str, str]] = None,
    sample_limit: int = 100,
) -> SignatureProfile:
    """Fetch a sample from ``path`` and infer the wrapper signature.

    Raises :class:`repro.sources.restapi.HttpError` when the endpoint
    fails and :class:`ValueError` when the sample is empty (no schema can
    be inferred from nothing).
    """
    response = server.get_or_raise(path, params)
    if "json" in response.content_type:
        records = decode_json(response.body)
    elif "xml" in response.content_type:
        records = decode_xml(response.body)
    elif "csv" in response.content_type:
        records = decode_csv(response.body)
    else:
        raise ValueError(f"unsupported content type {response.content_type}")
    records = [flatten_record(r) for r in records[:sample_limit]]
    if not records:
        raise ValueError(f"endpoint {path} returned no records to sample")
    order: List[str] = []
    seen = set()
    for record in records:
        for key in record:
            if key not in seen:
                seen.add(key)
                order.append(key)
    profiles: List[AttributeProfile] = []
    for name in order:
        inferred = AttrType.ANY
        present = 0
        nulls = 0
        examples: List[str] = []
        for record in records:
            if name not in record or record[name] is None or record[name] == "":
                nulls += 1
                continue
            present += 1
            inferred = common_type(inferred, infer_type(record[name]))
            if len(examples) < 3:
                rendered = repr(record[name])
                if rendered not in examples:
                    examples.append(rendered)
        profiles.append(
            AttributeProfile(
                name=name,
                inferred_type=inferred,
                present=present,
                nulls=nulls,
                examples=tuple(examples),
            )
        )
    return SignatureProfile(
        path=path, record_count=len(records), attributes=tuple(profiles)
    )
