"""In-process mock REST server with versioned endpoints.

The paper's sources are "external REST APIs … which … continuously apply
changes in their structure" (§1).  Offline, we simulate them faithfully:
a :class:`MockRestServer` hosts versioned routes (``/v1/players``,
``/v2/players``, …), serves JSON/XML/CSV payloads, supports query-string
filtering and pagination, and returns proper status codes (404 unknown
route, 410 retired version).  Wrappers interact with it through the same
request/response shape they would use with ``requests`` against a live
API, so the integration code path is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..chaos.failpoints import FailpointError
from ..chaos.failpoints import fire as _failpoint
from .formats import encode_csv, encode_json, encode_xml

__all__ = [
    "Request",
    "Response",
    "Endpoint",
    "MockRestServer",
    "HttpError",
]

Record = Dict[str, Any]
RecordProvider = Callable[[], List[Record]]


class HttpError(RuntimeError):
    """Raised by :meth:`MockRestServer.get_or_raise` on non-2xx responses."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


@dataclass(frozen=True)
class Request:
    """A GET request: path plus query parameters."""

    path: str
    params: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """The server's answer."""

    status: int
    content_type: str
    body: str

    @property
    def ok(self) -> bool:
        """Whether the status is 2xx."""
        return 200 <= self.status < 300


_MIME = {
    "json": "application/json",
    "xml": "application/xml",
    "csv": "text/csv",
}


@dataclass
class Endpoint:
    """One versioned collection endpoint.

    ``provider`` returns the current record list on every call (so the
    backing data may change between requests, like a live API).
    ``fields`` optionally restricts/falls the record keys served, letting
    schema versions share one provider.
    """

    name: str
    version: int
    payload_format: str
    provider: RecordProvider
    fields: Optional[Sequence[str]] = None
    item_tag: str = "item"
    root_tag: str = "items"
    retired: bool = False
    page_size: Optional[int] = None

    @property
    def path(self) -> str:
        """The route, e.g. ``/v2/players``."""
        return f"/v{self.version}/{self.name}"

    def records(self) -> List[Record]:
        """The records as served (after field restriction)."""
        raw = self.provider()
        if self.fields is None:
            return [dict(r) for r in raw]
        return [{k: r.get(k) for k in self.fields} for r in raw]


class MockRestServer:
    """Hosts endpoints and answers GET requests in-process."""

    def __init__(self, base_url: str = "http://api.local"):
        self.base_url = base_url
        self._endpoints: Dict[str, Endpoint] = {}
        self.request_log: List[Request] = []

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, endpoint: Endpoint) -> None:
        """Mount an endpoint at its versioned path (replacing any old one)."""
        if endpoint.payload_format not in _MIME:
            raise ValueError(f"unknown format {endpoint.payload_format!r}")
        self._endpoints[endpoint.path] = endpoint

    def retire(self, name: str, version: int) -> None:
        """Mark a version as retired — requests will get HTTP 410.

        This simulates a provider sunsetting an old API version, the event
        that breaks GAV-mapped pipelines.
        """
        path = f"/v{version}/{name}"
        endpoint = self._endpoints.get(path)
        if endpoint is None:
            raise KeyError(f"no endpoint at {path}")
        endpoint.retired = True

    def endpoints(self) -> List[Endpoint]:
        """All mounted endpoints, sorted by path."""
        return [self._endpoints[p] for p in sorted(self._endpoints)]

    def latest_version(self, name: str) -> Optional[int]:
        """Highest non-retired version of ``name``, or None."""
        versions = [
            e.version
            for e in self._endpoints.values()
            if e.name == name and not e.retired
        ]
        return max(versions) if versions else None

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def get(self, path: str, params: Optional[Mapping[str, str]] = None) -> Response:
        """Answer a GET request."""
        request = Request(path, dict(params or {}))
        self.request_log.append(request)
        endpoint = self._endpoints.get(path)
        if endpoint is None:
            return Response(404, "text/plain", f"no such endpoint: {path}")
        if endpoint.retired:
            return Response(
                410, "text/plain", f"version v{endpoint.version} of {endpoint.name} is retired"
            )
        records = endpoint.records()
        records = self._apply_filters(records, request.params, endpoint)
        records, page_info = self._apply_pagination(records, request.params, endpoint)
        body = self._encode(records, endpoint)
        try:
            # error → 503 (real REST backends fail with a status code,
            # not a Python exception inside the server); corrupt mangles
            # the encoded body so decode/schema checks trip downstream.
            body = _failpoint("restapi.get", payload=body, key=path)
        except FailpointError as exc:
            return Response(503, "text/plain", str(exc))
        return Response(200, _MIME[endpoint.payload_format], body)

    def get_or_raise(self, path: str, params: Optional[Mapping[str, str]] = None) -> Response:
        """Like :meth:`get` but raising :class:`HttpError` on failure."""
        response = self.get(path, params)
        if not response.ok:
            raise HttpError(response.status, response.body)
        return response

    def get_all_pages(self, path: str, params: Optional[Mapping[str, str]] = None) -> List[Response]:
        """Fetch every page of a paginated endpoint."""
        endpoint = self._endpoints.get(path)
        responses: List[Response] = []
        page = 1
        while True:
            merged = dict(params or {})
            merged["page"] = str(page)
            response = self.get(path, merged)
            responses.append(response)
            if not response.ok:
                break
            if endpoint is None or endpoint.page_size is None:
                break
            # Stop once a short (or empty) page arrives.
            count = self._count_records(response, endpoint)
            if count < endpoint.page_size:
                break
            page += 1
        return responses

    @staticmethod
    def _count_records(response: Response, endpoint: Endpoint) -> int:
        from .formats import decode_csv, decode_json, decode_xml

        if endpoint.payload_format == "json":
            return len(decode_json(response.body))
        if endpoint.payload_format == "xml":
            return len(decode_xml(response.body))
        return len(decode_csv(response.body))

    @staticmethod
    def _apply_filters(
        records: List[Record], params: Mapping[str, str], endpoint: Endpoint
    ) -> List[Record]:
        filtered = records
        for key, value in params.items():
            if key in ("page", "per_page"):
                continue
            filtered = [
                r for r in filtered if str(r.get(key)) == value
            ]
        return filtered

    @staticmethod
    def _apply_pagination(
        records: List[Record], params: Mapping[str, str], endpoint: Endpoint
    ) -> Tuple[List[Record], Optional[Dict[str, int]]]:
        size = endpoint.page_size
        if "per_page" in params:
            size = max(1, int(params["per_page"]))
        if size is None:
            return records, None
        page = max(1, int(params.get("page", "1")))
        start = (page - 1) * size
        return records[start : start + size], {"page": page, "per_page": size}

    @staticmethod
    def _encode(records: List[Record], endpoint: Endpoint) -> str:
        if endpoint.payload_format == "json":
            return encode_json(records)
        if endpoint.payload_format == "xml":
            return encode_xml(records, item_tag=endpoint.item_tag, root_tag=endpoint.root_tag)
        return encode_csv(records, columns=list(endpoint.fields) if endpoint.fields else None)

    def url(self, path: str) -> str:
        """Full URL for a path (documentation/logging only)."""
        return self.base_url + path
