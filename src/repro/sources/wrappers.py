"""Wrappers: the access mechanism from the mediator/wrapper architecture.

A wrapper (paper §2.2) encapsulates how a source is queried — "an API
request or a database query" — and exposes a *signature*
``w(a1, ..., an)``: a flat, first-normal-form relation over named
attributes.  "The query contained in the wrapper might rename (e.g. foot)
or add new attributes (e.g. teamId)", which here is the ``attribute_map``:
each signature attribute is produced from a path into the (flattened)
payload or a computed function.

``RestWrapper.fetch()`` is strict by design: if the payload no longer
contains an expected path — the typical effect of a breaking schema
change hitting a wrapper written for the previous version — it raises
:class:`WrapperSchemaError` rather than silently emitting NULLs.  That
strictness is what makes the GAV baseline "crash" in the evolution
scenario while MDM's LAV rewriting routes around it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs import get_metrics, get_tracer
from ..relational.relation import Relation
from .formats import decode_csv, decode_json, decode_xml, flatten_record
from .restapi import HttpError, MockRestServer, Response

__all__ = [
    "Wrapper",
    "RestWrapper",
    "StaticWrapper",
    "WrapperSchemaError",
    "WrapperFetchError",
    "WrapperTimeoutError",
    "RetryPolicy",
    "AttributeSpec",
]

Record = Dict[str, Any]

#: How a signature attribute is produced from one flattened payload record:
#: a key (str) into the flattened record, or a function of it.
AttributeSpec = Union[str, Callable[[Record], Any]]


class WrapperSchemaError(RuntimeError):
    """The payload no longer matches the wrapper's expectations."""

    def __init__(self, wrapper_name: str, attribute: str, detail: str):
        super().__init__(
            f"wrapper {wrapper_name!r}: cannot produce attribute "
            f"{attribute!r}: {detail}"
        )
        self.wrapper_name = wrapper_name
        self.attribute = attribute


class WrapperFetchError(RuntimeError):
    """A wrapper fetch failed terminally after exhausting its retry policy."""

    def __init__(self, wrapper_name: str, attempts: int, cause: BaseException):
        super().__init__(
            f"wrapper {wrapper_name!r}: fetch failed after {attempts} "
            f"attempt(s): {type(cause).__name__}: {cause}"
        )
        self.wrapper_name = wrapper_name
        self.attempts = attempts
        self.cause = cause


class WrapperTimeoutError(WrapperFetchError):
    """One fetch attempt exceeded the policy's per-attempt timeout."""

    def __init__(self, wrapper_name: str, timeout_s: float, attempt: int):
        RuntimeError.__init__(
            self,
            f"wrapper {wrapper_name!r}: fetch attempt {attempt} exceeded "
            f"{timeout_s:g}s timeout",
        )
        self.wrapper_name = wrapper_name
        self.attempts = attempt
        self.timeout_s = timeout_s
        self.cause = None


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout policy for wrapper fetches.

    Attempts are capped at ``attempts``; each attempt may be bounded by
    ``timeout_s`` (None = unbounded).  Between attempts the policy sleeps
    ``backoff_base_s * backoff_multiplier**(attempt-1)`` capped at
    ``max_backoff_s``, plus ``jitter(attempt)`` when a jitter hook is
    given — the hook keeps backoff deterministic under test (pass e.g.
    ``lambda attempt: 0.0``) while real deployments can plug randomness.
    ``sleep`` is injectable for the same reason.

    The default policy (one attempt, no timeout) is semantically the
    plain ``fetch()`` call: the original exception propagates unwrapped.
    """

    attempts: int = 1
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: Optional[Callable[[int], float]] = None
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("per-attempt timeout must be positive")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Sleep duration after failed attempt number ``attempt`` (1-based)."""
        delay = min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter is not None:
            delay += self.jitter(attempt)
        return max(0.0, delay)

    def describe(self) -> Dict[str, Any]:
        """JSON-shaped view (CLI/service configuration echoes)."""
        return {
            "attempts": self.attempts,
            "timeout_s": self.timeout_s,
            "backoff_base_s": self.backoff_base_s,
            "backoff_multiplier": self.backoff_multiplier,
            "max_backoff_s": self.max_backoff_s,
        }


class Wrapper:
    """Abstract wrapper: a name, a signature, and ``fetch()``."""

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise ValueError("wrapper name must be non-empty")
        if not attributes:
            raise ValueError("wrapper signature needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise ValueError(f"duplicate attributes in signature: {attributes}")
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)

    @property
    def signature(self) -> str:
        """The paper's notation, e.g. ``w1(id, pName, height, ...)``."""
        return f"{self.name}({', '.join(self.attributes)})"

    def fetch(self) -> List[Record]:
        """The current rows as dicts keyed exactly by the signature."""
        raise NotImplementedError

    def _fetch_bounded(self, timeout_s: Optional[float], attempt: int) -> List[Record]:
        """One fetch attempt, bounded by ``timeout_s`` when given.

        The bounded variant runs the fetch in a daemon thread and abandons
        it on timeout (the thread finishes in the background); sources here
        are in-process, so an abandoned attempt holds no scarce resources.
        """
        if timeout_s is None:
            return self.fetch()
        result: Dict[str, Any] = {}

        def attempt_fetch() -> None:
            try:
                result["rows"] = self.fetch()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                result["error"] = exc

        worker = threading.Thread(
            target=attempt_fetch, name=f"fetch-{self.name}", daemon=True
        )
        worker.start()
        worker.join(timeout_s)
        if worker.is_alive():
            raise WrapperTimeoutError(self.name, timeout_s, attempt)
        if "error" in result:
            raise result["error"]
        return result["rows"]

    def fetch_retrying(
        self, policy: Optional["RetryPolicy"] = None
    ) -> Tuple[List[Record], int]:
        """``fetch()`` under a :class:`RetryPolicy`; returns ``(rows, attempts)``.

        Each failed attempt short of the cap increments
        ``mdm_wrapper_retry_total``; exhausting the policy increments
        ``mdm_wrapper_failure_total`` and raises
        :class:`WrapperFetchError` (or the original exception unwrapped
        when the policy allows a single untimed attempt, preserving the
        strict-fetch contract existing callers rely on).
        """
        policy = policy or RetryPolicy()
        metrics = get_metrics()
        if policy.attempts == 1 and policy.timeout_s is None:
            try:
                return self.fetch(), 1
            except Exception:
                metrics.counter(
                    "mdm_wrapper_failure_total",
                    "Wrapper fetches that failed terminally after retries.",
                    labelnames=("wrapper",),
                ).inc(wrapper=self.name)
                raise
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.attempts + 1):
            try:
                return self._fetch_bounded(policy.timeout_s, attempt), attempt
            except Exception as exc:  # noqa: BLE001 — policy decides
                last_error = exc
                if attempt < policy.attempts:
                    metrics.counter(
                        "mdm_wrapper_retry_total",
                        "Wrapper fetch attempts that failed and were retried.",
                        labelnames=("wrapper",),
                    ).inc(wrapper=self.name)
                    policy.sleep(policy.backoff_s(attempt))
        metrics.counter(
            "mdm_wrapper_failure_total",
            "Wrapper fetches that failed terminally after retries.",
            labelnames=("wrapper",),
        ).inc(wrapper=self.name)
        assert last_error is not None
        if isinstance(last_error, WrapperTimeoutError):
            raise last_error
        raise WrapperFetchError(
            self.name, policy.attempts, last_error
        ) from last_error

    def fetch_relation(self, retry: Optional["RetryPolicy"] = None) -> Relation:
        """The current rows as a typed :class:`Relation` named after the wrapper.

        This is the pipeline's access path, so it is the instrumentation
        point: fetch latency and row counts flow into the
        ``mdm_wrapper_fetch_seconds`` / ``mdm_wrapper_rows_total`` series,
        failures into ``mdm_wrapper_errors_total``, and a ``fetch:<name>``
        span is emitted when the process tracer is enabled.  ``retry``
        applies a :class:`RetryPolicy` around the raw ``fetch()``; the
        span is tagged with the attempt count.
        """
        relation, _ = self.fetch_relation_retrying(retry)
        return relation

    def fetch_relation_retrying(
        self, retry: Optional["RetryPolicy"] = None
    ) -> Tuple[Relation, int]:
        """:meth:`fetch_relation` returning ``(relation, attempts_used)``."""
        metrics = get_metrics()
        started = time.perf_counter()
        with get_tracer().span(f"fetch:{self.name}", wrapper=self.name) as span:
            try:
                rows, attempts = self.fetch_retrying(retry)
            except Exception as exc:
                metrics.counter(
                    "mdm_wrapper_errors_total",
                    "Wrapper fetches that raised.",
                    labelnames=("wrapper",),
                ).inc(wrapper=self.name)
                span.set_tag("attempts", getattr(exc, "attempts", 1))
                raise
            metrics.histogram(
                "mdm_wrapper_fetch_seconds",
                "Latency of wrapper fetches.",
                labelnames=("wrapper",),
            ).observe(time.perf_counter() - started, wrapper=self.name)
            metrics.counter(
                "mdm_wrapper_rows_total",
                "Rows delivered by wrapper fetches.",
                labelnames=("wrapper",),
            ).inc(len(rows), wrapper=self.name)
            span.set_tag("rows", len(rows))
            span.set_tag("attempts", attempts)
            return (
                Relation.from_dicts(
                    rows, attribute_order=list(self.attributes), name=self.name
                ),
                attempts,
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.signature}>"


class StaticWrapper(Wrapper):
    """A wrapper over fixed in-memory rows (tests, examples, baselines)."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Sequence[Mapping[str, Any]],
    ):
        super().__init__(name, attributes)
        self._rows = [
            {a: row.get(a) for a in self.attributes} for row in rows
        ]

    def fetch(self) -> List[Record]:
        return [dict(r) for r in self._rows]


class RestWrapper(Wrapper):
    """A wrapper that issues a GET against a (mock) REST endpoint.

    Parameters
    ----------
    name, attributes:
        The signature.
    server, path:
        Where to fetch (e.g. ``/v1/players``).
    attribute_map:
        Signature attribute → :data:`AttributeSpec`.  Attributes absent
        from the map default to their own name as the payload key.
    params:
        Extra query parameters sent with every request.
    strict:
        When True (default), a missing payload key raises
        :class:`WrapperSchemaError`; when False it yields NULL (the
        "silently partial results" failure mode the paper warns about).
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        server: MockRestServer,
        path: str,
        attribute_map: Optional[Mapping[str, AttributeSpec]] = None,
        params: Optional[Mapping[str, str]] = None,
        strict: bool = True,
        paginate: bool = False,
    ):
        super().__init__(name, attributes)
        self.server = server
        self.path = path
        self.attribute_map: Dict[str, AttributeSpec] = dict(attribute_map or {})
        self.params = dict(params or {})
        self.strict = strict
        #: Fetch every page of a paginated endpoint instead of one GET.
        self.paginate = paginate

    def _decode(self, response: Response) -> List[Record]:
        if "json" in response.content_type:
            records = decode_json(response.body)
        elif "xml" in response.content_type:
            records = decode_xml(response.body)
        elif "csv" in response.content_type:
            records = decode_csv(response.body)
        else:
            raise WrapperSchemaError(
                self.name, "*", f"unsupported content type {response.content_type}"
            )
        return [flatten_record(r) for r in records]

    def _responses(self) -> List[Response]:
        if not self.paginate:
            return [self.server.get_or_raise(self.path, self.params)]
        responses = self.server.get_all_pages(self.path, self.params)
        for response in responses:
            if not response.ok:
                raise HttpError(response.status, response.body)
        return responses

    def fetch(self) -> List[Record]:
        try:
            responses = self._responses()
        except HttpError as exc:
            raise WrapperSchemaError(
                self.name, "*", f"endpoint {self.path} failed: {exc}"
            ) from exc
        decoded: List[Record] = []
        for response in responses:
            decoded.extend(self._decode(response))
        rows: List[Record] = []
        for record in decoded:
            row: Record = {}
            for attribute in self.attributes:
                spec = self.attribute_map.get(attribute, attribute)
                if callable(spec):
                    try:
                        row[attribute] = spec(record)
                    except (KeyError, TypeError, ValueError) as exc:
                        if self.strict:
                            raise WrapperSchemaError(
                                self.name, attribute, f"computed spec failed: {exc}"
                            ) from exc
                        row[attribute] = None
                else:
                    if spec in record:
                        row[attribute] = record[spec]
                    elif self.strict:
                        raise WrapperSchemaError(
                            self.name,
                            attribute,
                            f"payload key {spec!r} missing "
                            f"(payload keys: {sorted(record)})",
                        )
                    else:
                        row[attribute] = None
            rows.append(row)
        return rows
